//! Offline stand-in for the `criterion` crate.
//!
//! The build environment of this repository cannot reach a crates.io
//! registry, so the real `criterion` cannot be fetched. This crate keeps the
//! workspace's `benches/` compiling and runnable with the same API shape
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`), but the
//! runner is deliberately simple: each benchmark runs for a handful of
//! batches and reports mean wall-clock time (plus throughput when declared).
//! No warm-up model, no outlier statistics, no HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort on stable).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark name parameterized by an input label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, like the real crate renders.
    #[must_use]
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{param}", name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed batches to run (the real crate's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.throughput, self.sample_size, routine);
        let _ = &self.criterion; // group lifetime ties reports to the runner
        self
    }

    /// Runs `routine` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (report flushing in the real crate; a no-op here).
    pub fn finish(&mut self) {}
}

/// The benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        routine: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), None, 10, routine);
        self
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut routine: F,
) {
    // Calibrate the per-batch iteration count so one batch takes roughly
    // 50ms, capped to keep `cargo bench` wall-clock sane without statistics.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(50).as_nanos() / per_iter.as_nanos())
        .clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        bencher.iters = iters;
        routine(&mut bencher);
        total += bencher.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean_ns * 1e3),
        Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / mean_ns * 1e9 / 1_048_576.0),
    });
    println!(
        "bench: {label:<48} {:>12.1} ns/iter{}",
        mean_ns,
        rate.unwrap_or_default()
    );
}

/// Collects benchmark functions into a runnable group, mirroring the real
/// macro's `criterion_group!(name, fn_a, fn_b)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    criterion_group!(smoke_group, trivial);

    #[test]
    fn group_macro_runs() {
        smoke_group();
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("encode", 16).to_string(), "encode/16");
    }
}
