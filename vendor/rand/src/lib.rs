//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the real `rand` cannot be fetched. This crate implements the
//! small API surface the workspace actually uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random::<f64 / bool>()` — over a
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from the real `StdRng` (ChaCha12), so absolute
//! generated values differ from an upstream-rand build; every consumer in
//! this workspace depends only on distributional properties and on
//! *determinism in the seed*, both of which hold.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution: uniform over the full
/// domain for integers, uniform in `[0, 1)` for floats, fair coin for bool.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), the same construction the real
        // rand uses.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform `[0, 1)` for
    /// floats, fair coin for `bool`, full domain for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a half-open `u64` range, used internally by the
    /// vendored proptest stand-in.
    fn random_below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of the naive approach would be harmless here, but this is just as
        // cheap.
        let mut x = self.next_u64();
        let mut m = (u128::from(x)) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (u128::from(x)) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256++ under the hood;
    /// the real crate's `StdRng` is ChaCha12 — see the crate docs for why
    /// the difference is acceptable here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn random_below_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.random_below(0), 0);
        assert_eq!(rng.random_below(1), 0);
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = draw(&mut rng);
    }
}
