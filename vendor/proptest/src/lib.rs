//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this repository cannot reach a crates.io
//! registry, so the real `proptest` cannot be fetched. This crate implements
//! the subset of its API that the workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! integer/float range strategies, tuples, [`Just`], `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, and `prop::sample::Index` — as a
//! plain randomized test runner.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the seed and case number; to
//!   reproduce, re-run with `PROPTEST_SEED` set to the printed seed.
//! * **`prop_assume!` skips instead of resampling**, so heavy use of
//!   assumptions would lower the effective case count (this workspace uses
//!   it only for cheap non-empty guards).
//! * Case count defaults to 256 (`PROPTEST_CASES` overrides).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Test-runner plumbing used by the expansion of [`proptest!`].
pub mod test_runner {
    use super::*;

    /// Error produced by a failing property-test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Generator for case `case` of a run seeded with `seed`.
        #[must_use]
        pub fn for_case(seed: u64, case: u64) -> Self {
            Self(StdRng::seed_from_u64(
                seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw below `bound` (0 when `bound <= 1`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.0.random_below(bound)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.random::<f64>()
        }
    }

    /// The run seed: `PROPTEST_SEED` if set, else a fixed default so CI is
    /// deterministic.
    #[must_use]
    pub fn run_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5553_5445_5254_5350) // "PSTRETSU"
    }

    /// Number of cases per property: `PROPTEST_CASES` if set, else 256.
    #[must_use]
    pub fn run_cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(256)
    }
}

/// Strategies: how test inputs are generated.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of test values.
    ///
    /// Combinator methods require `Self: Sized`, so `Box<dyn Strategy>` is a
    /// usable trait object for heterogeneous unions.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from weighted boxed arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum covers every pick")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = if span > u128::from(u64::MAX) {
                        rng.next_u64() // the full 64-bit domain
                    } else {
                        rng.below(span as u64)
                    };
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }
}

/// Types with a canonical "arbitrary value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Anything usable as a collection size: a fixed `usize` or a range.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest`-compatible `vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { elem, min, max }
    }
}

/// Sampling helper types.
pub mod sample {
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An arbitrary index into a collection whose length is only known at
    /// use time: `idx.index(len)` is uniform in `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.next_u64())
        }
    }
}

/// Mirrors `proptest::prelude::prop`, the module-style entry point.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary};
}

/// Declares property tests. Each function runs its body over
/// [`test_runner::run_cases`] generated inputs; a failed `prop_assert!`
/// aborts the test with the run seed needed to reproduce it.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $($crate::__proptest_case! { $(#[$meta])* fn $name($($params)*) $body })*
    };
}

/// Implementation detail of [`proptest!`]: one test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let seed = $crate::test_runner::run_seed();
            let cases = $crate::test_runner::run_cases();
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property failed at case {case}/{cases} (PROPTEST_SEED={seed}): {e}"
                    );
                }
            }
        }
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// Unlike the real proptest this does not resample, so assumption-heavy
/// properties see fewer effective cases; acceptable for the cheap guards
/// this workspace uses.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(1, 1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2_000 {
            let v = Strategy::generate(&(3u8..=5), &mut rng);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..100 {
            let v = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&v));
            let f = Strategy::generate(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_respects_zero_free_weights() {
        let mut rng = crate::test_runner::TestRng::for_case(2, 0);
        let s = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut twos = 0;
        for _ in 0..1_000 {
            if Strategy::generate(&s, &mut rng) == 2 {
                twos += 1;
            }
        }
        assert!((600..900).contains(&twos), "twos {twos}");
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::for_case(3, 0);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_and_asserts(a in 0u32..10, mut b in prop::collection::vec(any::<u8>(), 0..4)) {
            b.push(0);
            prop_assert!(a < 10);
            prop_assert_eq!(b.last().copied(), Some(0));
            prop_assume!(a > 0);
            prop_assert_ne!(a, 0);
        }

        #[test]
        fn flat_map_dependent_values(pair in (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }
}
