#!/usr/bin/env bash
# Static-analysis gate: the workspace linter, its self-test, every seeded
# fixture (each must make the linter exit non-zero — a fixture that lints
# clean means its rule has gone blind), and the decoder corruption fuzz
# suites that exercise the checked-decode invariants.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ss-lint: shipped workspace =="
cargo run --release -q -p ss-lint

echo
echo "== ss-lint: self-test =="
cargo run --release -q -p ss-lint -- --self-test

echo
echo "== ss-lint: seeded fixtures (each must trip its rule) =="
for rule in panic-freedom unsafe-wall truncating-cast \
            concurrency-containment vendor-drift annotation; do
    if cargo run --release -q -p ss-lint -- --fixture "$rule" >/dev/null; then
        echo "FAIL: fixture '$rule' linted clean — its rule is blind" >&2
        exit 1
    fi
    echo "ok: $rule fixture trips its rule"
done

echo
echo "== decoder corruption fuzzing (debug assertions on) =="
cargo test -q -p ss-core --test codec_fuzz
cargo test -q -p ss-core --test codec_properties
cargo test -q -p ss-bitio --test roundtrip

echo
echo "== ss-trace overhead gate (NoopRecorder must be free) =="
cargo run --release -q -p ss-bench --bin perf_baseline -- --overhead-gate

echo
echo "analysis gate: all checks passed"
