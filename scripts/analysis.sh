#!/usr/bin/env bash
# Static-analysis gate: the workspace linter under its baseline ratchet,
# its self-test, every seeded fixture (each must make the linter exit
# non-zero — a fixture that lints clean means its rule has gone blind),
# and the decoder corruption fuzz suites that exercise the checked-decode
# invariants.
#
# With --lint-ratchet the gate also fails on *stale* baseline entries —
# accepted findings whose code has since been fixed. Stale entries are
# harmless for correctness (the default run only fails on NEW findings)
# but let the baseline rot; CI runs with the flag, local runs warn.
#
# With --update-timings the perf regression gate also runs: perf_baseline
# refuses to overwrite BENCH_codec_timings.json if single-thread encode
# or decode regressed more than 10% vs the committed file. Pass
# --accept-perf-change alongside it to override (hardware changes,
# accepted trade-offs).
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE_TIMINGS=0
ACCEPT_PERF_CHANGE=0
LINT_RATCHET=0
for arg in "$@"; do
    case "$arg" in
        --update-timings) UPDATE_TIMINGS=1 ;;
        --accept-perf-change) ACCEPT_PERF_CHANGE=1 ;;
        --lint-ratchet) LINT_RATCHET=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== ss-lint: shipped workspace (baseline ratchet) =="
lint_out="$(cargo run --release -q -p ss-lint)" || {
    printf '%s\n' "$lint_out"
    echo "FAIL: findings not covered by scripts/lint_baseline.json" >&2
    exit 1
}
printf '%s\n' "$lint_out"
if [ "$LINT_RATCHET" = 1 ] && printf '%s' "$lint_out" | grep -Eq '[1-9][0-9]* stale'; then
    echo "FAIL: --lint-ratchet: stale baseline entries (fixed findings still accepted)" >&2
    echo "      regenerate with: cargo run -p ss-lint -- --write-baseline" >&2
    exit 1
fi

echo
echo "== ss-lint: self-test =="
cargo run --release -q -p ss-lint -- --self-test

echo
echo "== ss-lint: seeded fixtures (each must trip its rule) =="
for rule in panic-freedom unsafe-wall truncating-cast \
            concurrency-containment vendor-drift annotation \
            alloc-in-hot-loop determinism shift-bound lock-discipline \
            reachability; do
    if cargo run --release -q -p ss-lint -- --fixture "$rule" >/dev/null; then
        echo "FAIL: fixture '$rule' linted clean — its rule is blind" >&2
        exit 1
    fi
    echo "ok: $rule fixture trips its rule"
done

echo
echo "== decoder corruption fuzzing (debug assertions on) =="
cargo test -q -p ss-core --test codec_fuzz
cargo test -q -p ss-core --test codec_properties
cargo test -q -p ss-bitio --test roundtrip

echo
echo "== ss-trace overhead gate (NoopRecorder must be free) =="
cargo run --release -q -p ss-bench --bin perf_baseline -- --overhead-gate

echo
echo "== BENCH_pipeline determinism gate (two runs, identical bytes) =="
# The deterministic half of the pipeline bench must be byte-identical
# across runs: same batch accounting, same chained stream hash, gates
# PASS both times. Any diff means worker scheduling leaked into results.
tmp1="$(mktemp)" tmp2="$(mktemp)"
trap 'rm -f "$tmp1" "$tmp2"' EXIT
SS_BENCH_PIPELINE_OUT="$tmp1" \
    cargo run --release -q -p ss-bench --bin pipeline_throughput -- --smoke >/dev/null
SS_BENCH_PIPELINE_OUT="$tmp2" \
    cargo run --release -q -p ss-bench --bin pipeline_throughput -- --smoke >/dev/null
if ! diff -u "$tmp1" "$tmp2"; then
    echo "FAIL: BENCH_pipeline deterministic fields differ between runs" >&2
    exit 1
fi
grep -q '"bit_identical_to_one_shot": true' "$tmp1" || {
    echo "FAIL: pipeline output is not bit-identical to the one-shot API" >&2
    exit 1
}
grep -q '"identical_across_worker_counts": true' "$tmp1" || {
    echo "FAIL: pipeline results vary with the worker count" >&2
    exit 1
}
echo "ok: deterministic fields reproduce byte-for-byte"

echo
echo "== BENCH_store determinism gate (two runs, different SS_THREADS) =="
# The store bench's deterministic half must be byte-identical across runs
# AND across thread settings: shard bytes, chained hashes and gate
# verdicts may depend on nothing but the pinned model.
tmp3="$(mktemp)" tmp4="$(mktemp)"
trap 'rm -f "$tmp1" "$tmp2" "$tmp3" "$tmp4"' EXIT
SS_THREADS=1 SS_BENCH_STORE_OUT="$tmp3" \
    cargo run --release -q -p ss-bench --bin store_roundtrip -- --smoke >/dev/null
SS_THREADS=4 SS_BENCH_STORE_OUT="$tmp4" \
    cargo run --release -q -p ss-bench --bin store_roundtrip -- --smoke >/dev/null
if ! diff -u "$tmp3" "$tmp4"; then
    echo "FAIL: BENCH_store deterministic fields differ across runs/SS_THREADS" >&2
    exit 1
fi
for gate in roundtrip_bit_identical single_get_reads_one_block verify_pass; do
    grep -q "\"$gate\": true" "$tmp3" || {
        echo "FAIL: store gate $gate did not pass" >&2
        exit 1
    }
done
echo "ok: store deterministic fields reproduce byte-for-byte across SS_THREADS"

echo
echo "== BENCH_serve determinism gate (two runs, different SS_THREADS) =="
# The serve replay's deterministic half must be byte-identical across
# runs AND worker counts: the arrival schedule, response hashes (chained
# in submission order) and gate verdicts may depend on nothing but the
# pinned seed. Any diff means worker scheduling or wall-clock state
# leaked into the replay results.
tmp5="$(mktemp)" tmp6="$(mktemp)"
trap 'rm -f "$tmp1" "$tmp2" "$tmp3" "$tmp4" "$tmp5" "$tmp6"' EXIT
SS_THREADS=1 SS_BENCH_SERVE_OUT="$tmp5" \
    cargo run --release -q -p ss-bench --bin serve_replay -- --smoke >/dev/null
SS_THREADS=8 SS_BENCH_SERVE_OUT="$tmp6" \
    cargo run --release -q -p ss-bench --bin serve_replay -- --smoke >/dev/null
if ! diff -u "$tmp5" "$tmp6"; then
    echo "FAIL: BENCH_serve deterministic fields differ across runs/SS_THREADS" >&2
    exit 1
fi
for gate in responses_all_ok overload_typed drain_zero_loss stats_schema_ok tcp_roundtrip_ok; do
    grep -q "\"$gate\": true" "$tmp5" || {
        echo "FAIL: serve gate $gate did not pass" >&2
        exit 1
    }
done
echo "ok: serve deterministic fields reproduce byte-for-byte across SS_THREADS"

echo
echo "== BENCH_schemes determinism gate (two runs, different SS_THREADS) =="
# The scheme-registry bench's JSON must be byte-identical across runs
# AND thread settings: the chained DPRed/AdaBits stream hash, the
# serving-width traffic rows and the gate verdicts may depend on nothing
# but the pinned pool. Any diff means a plug-in scheme's output varies
# with the worker count.
tmp7="$(mktemp)" tmp8="$(mktemp)"
trap 'rm -f "$tmp1" "$tmp2" "$tmp3" "$tmp4" "$tmp5" "$tmp6" "$tmp7" "$tmp8"' EXIT
SS_THREADS=1 SS_BENCH_SCHEMES_OUT="$tmp7" \
    cargo run --release -q -p ss-bench --bin schemes_quant -- --smoke >/dev/null
SS_THREADS=8 SS_BENCH_SCHEMES_OUT="$tmp8" \
    cargo run --release -q -p ss-bench --bin schemes_quant -- --smoke >/dev/null
if ! diff -u "$tmp7" "$tmp8"; then
    echo "FAIL: BENCH_schemes deterministic fields differ across runs/SS_THREADS" >&2
    exit 1
fi
for gate in registry_byte_identical dpred_adabits_roundtrip adabits_prefix_monotone; do
    grep -q "\"$gate\": true" "$tmp7" || {
        echo "FAIL: scheme gate $gate did not pass" >&2
        exit 1
    }
done
echo "ok: scheme streams reproduce byte-for-byte across SS_THREADS"

if [ "$UPDATE_TIMINGS" = 1 ]; then
    echo
    echo "== perf regression gate (t1 encode/decode vs committed timings) =="
    perf_flags=(--update-timings)
    if [ "$ACCEPT_PERF_CHANGE" = 1 ]; then
        perf_flags+=(--accept-perf-change)
    fi
    cargo run --release -q -p ss-bench --bin perf_baseline -- "${perf_flags[@]}"
fi

echo
echo "analysis gate: all checks passed"
