#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, lint, and the codec
# performance baseline (time report only — the numbers are recorded in
# BENCH_codec.json but never gate the run; thread-scaling ratios depend on
# the host's core count).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo run --release -q -p ss-lint

echo
echo "== perf baseline (informational) =="
cargo run --release -q -p ss-bench --bin perf_baseline
