#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, lint, the container
# conformance suites, the deterministic overhead gates, and the codec
# performance baseline (time report only — the numbers are recorded in
# BENCH_codec.json but never gate the run; thread-scaling ratios depend on
# the host's core count).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo run --release -q -p ss-lint
cargo run --release -q -p ss-lint -- --self-test

# Deprecated-API wall: the workspace must build with deprecation warnings
# hardened into errors. The `#[deprecated]` shims themselves (old
# `*_with_threads` names, `MeasureReport::into_tuple`, and the 0.3
# scheme-registry deprecations: `pack_with_codec`,
# `ContainerCodec::{to_byte,from_byte}`, `ModelWriter::with_codec`) may
# only be *defined* in their home crates — any call site that still uses
# one fails here. A dedicated target dir keeps the flag change from
# thrashing the main build cache.
echo
echo "== deprecated-API wall (no callers of deprecated shims) =="
CARGO_TARGET_DIR=target/deprecated-check RUSTFLAGS="-D deprecated" \
    cargo check -q --workspace --all-targets

# Container conformance: golden vectors (v1 + v2 pinned streams plus the
# pinned plug-in scheme streams), the indexed-vs-sequential differential
# property suite, the corruption fuzzers (including the exhaustive
# unregistered-wire-id sweep of the file container), the session-reuse
# property suite (every registered scheme interleaved through one
# session), and the word-parallel-kernel-vs-scalar differential suite.
# All run above as part of the workspace tests; re-run here by name so a
# conformance failure is unmissable in CI logs.
echo
echo "== container conformance (golden + differential + fuzz + kernels) =="
cargo test -q -p ss-core --test golden_vectors --test codec_properties --test codec_fuzz \
    --test kernel_differential --test session_reuse
cargo test -q -p shapeshifter --test container_fuzz

# Scheme-registry gates: built-in registrations byte-identical to the
# pre-registry encoders, DPRed/AdaBits round trip through the worker
# pool, and the AdaBits truncation-prefix property.
echo
echo "== scheme registry (byte-identity + plug-in round-trip gates) =="
cargo run --release -q -p ss-bench --bin schemes_quant -- --smoke

# Deterministic gates: trace-recorder measure overhead and chunk-index
# metadata overhead (both host-independent bounds).
echo
echo "== overhead gates =="
cargo run --release -q -p ss-bench --bin perf_baseline -- --overhead-gate

# Batch-engine smoke: full encode/measure/decode pipeline on a small
# batch; fails on a bit-identity or worker-count-determinism violation.
echo
echo "== pipeline smoke (bit-identity + determinism gates) =="
cargo run --release -q -p ss-bench --bin pipeline_throughput -- --smoke

# Shard-store conformance: the corruption suite (every single-bit flip
# detected, truncation fails cleanly) plus the roundtrip smoke with its
# bit-identity, partial-read and verify gates.
echo
echo "== shard store (corruption suite + roundtrip gates) =="
cargo test -q -p ss-store --test shard_corruption --test zoo_roundtrip
cargo run --release -q -p ss-bench --bin store_roundtrip -- --smoke

# Serve conformance: the SSRP protocol fuzz suite (every single-bit flip
# and truncation is a typed error, a flipped op byte never dispatches as
# another op), the fault-injection suite (client disconnects, typed
# overload, drain semantics, multi-client soak across worker counts),
# the bounded-queue close/drain stress test, and the traffic-replay
# smoke with its completion / FIFO / overload / drain gates.
echo
echo "== serve (protocol fuzz + fault injection + queue shutdown + replay smoke) =="
cargo test -q -p ss-serve --test protocol_fuzz --test service_faults
cargo test -q -p ss-pipeline --test queue_shutdown
cargo run --release -q -p ss-bench --bin serve_replay -- --smoke

echo
echo "== perf baseline (informational) =="
cargo run --release -q -p ss-bench --bin perf_baseline
