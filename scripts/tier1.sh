#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, lint, the container
# conformance suites, the deterministic overhead gates, and the codec
# performance baseline (time report only — the numbers are recorded in
# BENCH_codec.json but never gate the run; thread-scaling ratios depend on
# the host's core count).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo run --release -q -p ss-lint

# Container conformance: golden vectors (v1 + v2 pinned streams), the
# indexed-vs-sequential differential property suite, and the corruption
# fuzzers. All run above as part of the workspace tests; re-run here by
# name so a conformance failure is unmissable in CI logs.
echo
echo "== container conformance (golden + differential + fuzz) =="
cargo test -q -p ss-core --test golden_vectors --test codec_properties --test codec_fuzz

# Deterministic gates: trace-recorder measure overhead and chunk-index
# metadata overhead (both host-independent bounds).
echo
echo "== overhead gates =="
cargo run --release -q -p ss-bench --bin perf_baseline -- --overhead-gate

echo
echo "== perf baseline (informational) =="
cargo run --release -q -p ss-bench --bin perf_baseline
