//! Fuzzing the `SSPK` file container: arbitrary bytes must never panic
//! the parser or decoder, valid containers must survive arbitrary
//! truncation and single-byte corruption without panicking, and every
//! unregistered scheme wire id must surface as a typed
//! [`CodecError::UnknownScheme`] — never a panic or a misdispatch.

use proptest::prelude::*;
use shapeshifter::container::{self, ContainerError};
use shapeshifter::prelude::*;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-32_767i32..=32_767, 0..200).prop_map(|v| {
        Tensor::from_vec(Shape::flat(v.len()), FixedType::I16, v).expect("values fit i16")
    })
}

/// Every registered wire id, from the global registry itself — the fuzz
/// corpus tracks future registrations automatically.
fn registered_ids() -> Vec<SchemeId> {
    SchemeRegistry::global().ids().collect()
}

/// Deterministic corpus of containers whose length fields are hostile:
/// an 8-byte element count or 4-byte index length at or near the type's
/// maximum, which `as usize` would wrap on a 32-bit target. Every entry
/// must produce a typed error (or, for lengths the file actually backs,
/// a clean decode) — never a panic, a wrap, or an unbounded allocation.
#[test]
fn oversized_length_corpus_yields_typed_errors() {
    let t = Tensor::from_vec(
        Shape::flat(64),
        FixedType::I16,
        (0..64).map(|i| i * 3 - 90).collect(),
    )
    .expect("values fit i16");
    let v1 = container::pack(&t, 16).expect("packs");
    let v2 = container::pack_with_policy(
        &t,
        16,
        SchemeId::SHAPESHIFTER,
        ss_core::IndexPolicy::EveryGroups(1),
    )
    .expect("packs");
    let meta = container::info(&v2).expect("valid header");
    assert_eq!(meta.version, container::VERSION_V2);

    // Element counts: u64::MAX, u32::MAX + 1 (wraps to 0 on 32-bit),
    // and usize::MAX as seen by this target.
    for hostile in [u64::MAX, u64::from(u32::MAX) + 1, usize::MAX as u64] {
        for base in [&v1, &v2] {
            let mut corrupt = base.clone();
            corrupt[10..18].copy_from_slice(&hostile.to_le_bytes());
            assert!(
                container::unpack(&corrupt).is_err(),
                "element count {hostile:#x} must be rejected"
            );
        }
    }
    // Index lengths: u32::MAX and just past the real blob. Both must be
    // caught by the bounds check against the file's actual size.
    for hostile in [u32::MAX, meta.index_bytes as u32 + 1] {
        let mut corrupt = v2.clone();
        corrupt[26..30].copy_from_slice(&hostile.to_le_bytes());
        assert!(
            container::unpack(&corrupt).is_err(),
            "index length {hostile:#x} must be rejected"
        );
    }
}

/// All 256 wire-id bytes, exhaustively: a valid container rewritten to
/// claim an unregistered id is a typed [`CodecError::UnknownScheme`]
/// carrying that exact byte; rewriting to a *registered* id never
/// panics (it decodes, or fails typed when the stream doesn't parse
/// under the claimed scheme).
#[test]
fn every_unregistered_wire_id_is_a_typed_error() {
    let t = Tensor::from_vec(
        Shape::flat(48),
        FixedType::I16,
        (0..48).map(|i| (i % 7) * 40 - 120).collect(),
    )
    .expect("values fit i16");
    let packed = container::pack(&t, 16).expect("packs");
    let registered = registered_ids();
    for id in 0u8..=u8::MAX {
        let mut claimed = packed.clone();
        claimed[7] = id;
        let r = container::unpack(&claimed);
        if registered.contains(&SchemeId::new(id)) {
            // A registered scheme: decode may succeed (id 0 — the true
            // scheme) or fail typed (the stream doesn't parse under the
            // claimed scheme); never a panic.
            let _ = r;
        } else {
            match r {
                Err(ContainerError::Codec(CodecError::UnknownScheme { id: got })) => {
                    assert_eq!(got, id, "error must carry the offending byte");
                }
                other => panic!("id {id}: expected UnknownScheme, got {other:?}"),
            }
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = container::info(&bytes);
        let _ = container::unpack(&bytes);
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        mut bytes in prop::collection::vec(any::<u8>(), 26..600),
        version in 1u8..=2,
    ) {
        bytes[0..4].copy_from_slice(b"SSPK");
        bytes[4] = version; // valid version, random everything else
        let _ = container::unpack(&bytes);
    }

    #[test]
    fn v2_container_roundtrips_and_survives_corruption(
        t in arb_tensor(),
        chunk_groups in 1usize..=4,
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        prop_assume!(t.len() > 16 * chunk_groups);
        let packed = container::pack_with_policy(
            &t,
            16,
            SchemeId::SHAPESHIFTER,
            ss_core::IndexPolicy::EveryGroups(chunk_groups),
        )
        .unwrap();
        let meta = container::info(&packed).unwrap();
        prop_assert_eq!(meta.version, container::VERSION_V2);
        prop_assert!(meta.index_bytes > 0);
        prop_assert_eq!(&container::unpack(&packed).unwrap(), &t);
        // Any single-byte corruption: wrong-but-valid values or a typed
        // error, never a panic. Damage inside the index block is always
        // *detected* (its CRC-32 covers every byte of the blob).
        let mut corrupt = packed.clone();
        let i = pos.index(corrupt.len());
        corrupt[i] ^= xor;
        let r = container::unpack(&corrupt);
        let index_block = 26..26 + 4 + meta.index_bytes;
        if index_block.contains(&i) && corrupt.len() == packed.len() {
            // Flips in the length prefix or the blob itself cannot yield
            // a clean decode of the original tensor's framing without
            // tripping the CRC, the framing checks, or the stream parse.
            if let Ok(back) = r {
                prop_assert_eq!(&back, &t, "index corruption silently changed the tensor");
            }
        }
    }

    #[test]
    fn truncation_never_panics(t in arb_tensor(), cut in any::<prop::sample::Index>()) {
        let packed = container::pack(&t, 16).unwrap();
        let cut = cut.index(packed.len() + 1);
        let _ = container::unpack(&packed[..cut]);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        t in arb_tensor(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        for scheme in registered_ids() {
            let mut packed = container::pack_with_scheme(&t, 16, scheme).unwrap();
            if packed.is_empty() {
                continue;
            }
            let i = pos.index(packed.len());
            packed[i] ^= xor;
            // May decode to wrong values (no checksum, as in the paper's
            // container) or error — never panic.
            let _ = container::unpack(&packed);
        }
    }

    #[test]
    fn every_registered_scheme_roundtrips(t in arb_tensor(), group in 1usize..=64) {
        for scheme in registered_ids() {
            let packed = container::pack_with_scheme(&t, group, scheme).unwrap();
            prop_assert_eq!(container::info(&packed).unwrap().scheme, scheme);
            prop_assert_eq!(&container::unpack(&packed).unwrap(), &t);
        }
    }

    #[test]
    fn random_wire_id_rewrite_never_panics(t in arb_tensor(), id in any::<u8>()) {
        let mut packed = container::pack(&t, 16).unwrap();
        packed[7] = id;
        let registered = registered_ids().contains(&SchemeId::new(id));
        match container::unpack(&packed) {
            Ok(_) => prop_assert!(registered, "unregistered id {id} decoded"),
            Err(ContainerError::Codec(CodecError::UnknownScheme { id: got })) => {
                prop_assert!(!registered, "registered id {id} reported unknown");
                prop_assert_eq!(got, id);
            }
            Err(_) => prop_assert!(registered, "unregistered id {id} mistyped error"),
        }
    }
}
