//! Fuzzing the `SSPK` file container: arbitrary bytes must never panic
//! the parser or decoder, and valid containers must survive arbitrary
//! truncation and single-byte corruption without panicking.

use proptest::prelude::*;
use shapeshifter::container;
use shapeshifter::prelude::*;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-32_767i32..=32_767, 0..200).prop_map(|v| {
        Tensor::from_vec(Shape::flat(v.len()), FixedType::I16, v).expect("values fit i16")
    })
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = container::info(&bytes);
        let _ = container::unpack(&bytes);
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        mut bytes in prop::collection::vec(any::<u8>(), 26..600),
        version in 1u8..=2,
    ) {
        bytes[0..4].copy_from_slice(b"SSPK");
        bytes[4] = version; // valid version, random everything else
        let _ = container::unpack(&bytes);
    }

    #[test]
    fn v2_container_roundtrips_and_survives_corruption(
        t in arb_tensor(),
        chunk_groups in 1usize..=4,
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        prop_assume!(t.len() > 16 * chunk_groups);
        let packed = container::pack_with_policy(
            &t,
            16,
            container::ContainerCodec::ShapeShifter,
            ss_core::IndexPolicy::EveryGroups(chunk_groups),
        )
        .unwrap();
        let meta = container::info(&packed).unwrap();
        prop_assert_eq!(meta.version, container::VERSION_V2);
        prop_assert!(meta.index_bytes > 0);
        prop_assert_eq!(&container::unpack(&packed).unwrap(), &t);
        // Any single-byte corruption: wrong-but-valid values or a typed
        // error, never a panic. Damage inside the index block is always
        // *detected* (its CRC-32 covers every byte of the blob).
        let mut corrupt = packed.clone();
        let i = pos.index(corrupt.len());
        corrupt[i] ^= xor;
        let r = container::unpack(&corrupt);
        let index_block = 26..26 + 4 + meta.index_bytes;
        if index_block.contains(&i) && corrupt.len() == packed.len() {
            // Flips in the length prefix or the blob itself cannot yield
            // a clean decode of the original tensor's framing without
            // tripping the CRC, the framing checks, or the stream parse.
            if let Ok(back) = r {
                prop_assert_eq!(&back, &t, "index corruption silently changed the tensor");
            }
        }
    }

    #[test]
    fn truncation_never_panics(t in arb_tensor(), cut in any::<prop::sample::Index>()) {
        let packed = container::pack(&t, 16).unwrap();
        let cut = cut.index(packed.len() + 1);
        let _ = container::unpack(&packed[..cut]);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        t in arb_tensor(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        for codec in [
            container::ContainerCodec::ShapeShifter,
            container::ContainerCodec::Delta,
        ] {
            let mut packed = container::pack_with_codec(&t, 16, codec).unwrap();
            if packed.is_empty() {
                continue;
            }
            let i = pos.index(packed.len());
            packed[i] ^= xor;
            // May decode to wrong values (no checksum, as in the paper's
            // container) or error — never panic.
            let _ = container::unpack(&packed);
        }
    }

    #[test]
    fn both_codecs_roundtrip(t in arb_tensor(), group in 1usize..=64) {
        for codec in [
            container::ContainerCodec::ShapeShifter,
            container::ContainerCodec::Delta,
        ] {
            let packed = container::pack_with_codec(&t, group, codec).unwrap();
            prop_assert_eq!(&container::unpack(&packed).unwrap(), &t);
        }
    }
}
