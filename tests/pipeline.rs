//! Cross-crate integration tests: the full zoo → quantize → compress →
//! simulate pipeline, exercised end-to-end through the facade.

use shapeshifter::prelude::*;
use shapeshifter::sim::sim::MODEL_SEED;

fn tiny(net: Network) -> Network {
    net.scaled_down(8)
}

#[test]
fn every_zoo_network_compresses_losslessly() {
    let codec = ShapeShifterCodec::new(16);
    for net in zoo::all() {
        let net = tiny(net);
        for i in [0, net.layers().len() / 2, net.layers().len() - 1] {
            let w = net.weight_tensor(i, MODEL_SEED);
            let enc = codec.encode(&w).unwrap();
            assert_eq!(codec.decode(&enc).unwrap(), w, "{} weights {i}", net.name());
            let a = net.input_tensor(i, 3);
            let enc = codec.encode(&a).unwrap();
            assert_eq!(codec.decode(&enc).unwrap(), a, "{} acts {i}", net.name());
        }
    }
}

#[test]
fn shapeshifter_never_loses_to_base_on_zoo_tensors() {
    // The paper's robustness claim over the whole evaluated distribution:
    // "ShapeShifter compression is robust and never increases traffic."
    let ss = ShapeShifterScheme::default();
    let ctx = SchemeCtx::unprofiled();
    for net in zoo::all() {
        let net = tiny(net);
        for i in 0..net.layers().len() {
            let a = net.input_tensor(i, 1);
            assert!(
                ss.compressed_bits(&a, &ctx) <= Base.compressed_bits(&a, &ctx),
                "{} layer {i} activations",
                net.name()
            );
            let w = net.weight_tensor(i, MODEL_SEED);
            assert!(
                ss.compressed_bits(&w, &ctx) <= Base.compressed_bits(&w, &ctx),
                "{} layer {i} weights",
                net.name()
            );
        }
    }
}

#[test]
fn quantized_variants_compress_losslessly_too() {
    let codec = ShapeShifterCodec::new(16);
    let base = tiny(zoo::googlenet_s());
    for method in [QuantMethod::Tensorflow, QuantMethod::RangeAware] {
        let q = QuantizedNetwork::new(base.clone(), method);
        for i in [0, base.layers().len() / 2] {
            let a = q.input_tensor(i, 5);
            let enc = codec.encode(&a).unwrap();
            assert_eq!(codec.decode(&enc).unwrap(), a, "{:?} acts {i}", method);
            let w = q.weight_tensor(i, MODEL_SEED);
            let enc = codec.encode(&w).unwrap();
            assert_eq!(codec.decode(&enc).unwrap(), w, "{:?} wgts {i}", method);
        }
    }
}

#[test]
fn sstripes_is_never_slower_than_stripes_across_the_zoo() {
    let cfg = SimConfig::default();
    for net in [zoo::alexnet(), zoo::googlenet(), zoo::mobilenet()] {
        let net = tiny(net);
        let stripes = simulate(&net, &Stripes::new(), &ProfileScheme, &cfg, 1);
        let sstripes = simulate(
            &net,
            &SStripes::new(),
            &ShapeShifterScheme::default(),
            &cfg,
            1,
        );
        assert!(
            sstripes.speedup_over(&stripes) >= 1.0,
            "{}: {:.3}",
            net.name(),
            sstripes.speedup_over(&stripes)
        );
    }
}

#[test]
fn compression_helps_most_when_memory_is_slow() {
    // The Figure 9 trend: the slower the DRAM, the bigger ShapeShifter's
    // speedup on a bit-parallel engine.
    let net = tiny(zoo::vgg_s());
    let mut last_speedup = f64::MAX;
    for dram in [
        DramConfig::DDR4_3200,
        DramConfig::DDR4_2400,
        DramConfig::DDR4_2133,
    ] {
        let cfg = SimConfig::with_dram(dram);
        let base = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
        let ss = simulate(
            &net,
            &DaDianNao::new(),
            &ShapeShifterScheme::default(),
            &cfg,
            1,
        );
        let s = ss.speedup_over(&base);
        assert!(
            s <= last_speedup + 1e-9 || (s - last_speedup).abs() < 0.05,
            "slower DRAM should not reduce the benefit: {s} after {last_speedup}"
        );
        last_speedup = s;
    }
    // On the slowest node the FC-heavy model must benefit materially.
    assert!(last_speedup > 1.2, "speedup at DDR4-2133: {last_speedup}");
}

#[test]
fn numerical_equivalence_of_dynamic_widths() {
    // SStripes "produces the same numerical result as Stripes": processing
    // a group at its detected width loses nothing. Emulate both datapaths
    // in software over real zoo values and compare inner products.
    let net = tiny(zoo::alexnet());
    let w = net.weight_tensor(0, MODEL_SEED);
    let a = net.input_tensor(0, 9);
    let n = w.len().min(a.len()) / 16 * 16;
    let det = WidthDetector::new(16, Signedness::Unsigned);
    let mut full = 0i64;
    let mut trimmed = 0i64;
    for g in 0..n / 16 {
        let acts = &a.values()[g * 16..(g + 1) * 16];
        let wgts = &w.values()[g * 16..(g + 1) * 16];
        let width = det.detect(acts);
        for (&x, &y) in acts.iter().zip(wgts) {
            full += i64::from(x) * i64::from(y);
            // Processing only `width` bits of x: identical because the
            // detector never truncates a set bit.
            let masked = x & ((1 << width.max(1)) - 1);
            trimmed += i64::from(masked) * i64::from(y);
        }
    }
    assert_eq!(full, trimmed);
}

#[test]
fn facade_prelude_is_usable() {
    // Everything the README shows must be reachable via the prelude.
    let t = Tensor::from_vec(Shape::flat(2), FixedType::I8, vec![1, -1]).unwrap();
    assert_eq!(t.len(), 2);
    let _ = DramConfig::DDR4_3200;
    let _ = BufferConfig::paper_16b();
    let _: &dyn CompressionScheme = &ZeroRle::default();
    let _ = RangeAwareQuantizer::new(8).unwrap();
    let _ = TfQuantizer::new(1.0).unwrap();
    let _ = Scnn::new();
    let _ = Loom::new();
    let _ = BitFusion::new();
}
