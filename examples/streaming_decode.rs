//! Scenario: provisioning the on-chip decompressor — verifies the
//! two-level L1D/L2D pipeline of the paper's Figure 6d keeps up with the
//! DDR4 stream across layers and memory speeds, and demonstrates the
//! `SSPK` file container round-trip.
//!
//! Run with `cargo run --release --example streaming_decode`.

use shapeshifter::container;
use shapeshifter::core::decompressor::DecompressorModel;
use shapeshifter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::resnet50();
    let codec = ShapeShifterCodec::new(16);

    // Size the decompressor per memory node: how many L2 expanders (one
    // per on-chip bank, each emitting one value per cycle) keep decode
    // transparent? The answer grows with compression: a 3-bit/value
    // stream delivers values far faster than a 16-bit one.
    println!("decompressor sizing across memory nodes (ResNet50 activations):\n");
    println!(
        "{:<14} {:>10} {:>14} {:>14}",
        "node", "bits/cyc", "L2Ds needed", "L1Ds needed"
    );
    for dram in [
        DramConfig::DDR4_2133,
        DramConfig::DDR4_2400,
        DramConfig::DDR4_3200,
    ] {
        let line = dram.bits_per_cycle(1_000_000_000) as u64;
        // Size against substantial streams: tiny arrays (the classifier
        // inputs) are latency-floor-bound by a single group's serial time
        // and finish long before anyone waits on them.
        let encs: Vec<_> = (0..net.layers().len())
            .map(|i| codec.encode(&net.input_tensor(i, 1)))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|e| e.len() >= 4096)
            .collect();
        // Find the smallest power-of-two (L1, L2) making every layer's
        // decode transparent.
        let mut l1 = 1u64;
        let mut l2 = 8u64;
        loop {
            let model = DecompressorModel::new(line, l2).with_l1_count(l1);
            let ok = encs.iter().all(|e| model.timing(e).is_transparent());
            if ok {
                break;
            }
            let bound = encs
                .iter()
                .map(|e| model.timing(e).bound())
                .find(|b| *b != shapeshifter::core::decompressor::DecodeBound::MemorySupply);
            match bound {
                Some(shapeshifter::core::decompressor::DecodeBound::L1Dispatch) => l1 *= 2,
                _ => l2 *= 2,
            }
        }
        println!("{:<14} {:>10} {:>14} {:>14}", dram.label(), line, l2, l1);
    }
    println!(
        "\n(The sizing driver is the *sparsest* layer: at ~1.5 stream bits per\n\
         value, hundreds of values arrive per cycle. Matching raw DDR bandwidth\n\
         instead of worst-case compression needs only ~2 x 16 L2Ds.)"
    );

    // File-container round trip: ship a layer's weights as an .sspk blob.
    let w = net.weight_tensor(10, 0);
    let packed = container::pack(&w, 16)?;
    let meta = container::info(&packed)?;
    println!(
        "\npacked {} ({} weights) into {} bytes — {:.1}% of raw; decode matches: {}",
        net.layers()[10].name(),
        w.len(),
        packed.len(),
        meta.ratio() * 100.0,
        container::unpack(&packed)? == w
    );
    Ok(())
}
