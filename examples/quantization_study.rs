//! Scenario: how the quantizer choice changes what ShapeShifter can do —
//! the paper's Figure 3 / Figure 16 story on one model.
//!
//! Quantizes GoogLeNet-S to 8 bits with TensorFlow-style affine and with
//! range-aware scaling, shows the stored-width expansion the former
//! causes, then applies outlier-aware quantization and compares its
//! native storage formats against ShapeShifter.
//!
//! Run with `cargo run --release --example quantization_study`.

use shapeshifter::core::scheme::{outlier_aware_bits, outlier_aware_zs_bits};
use shapeshifter::prelude::*;
use shapeshifter::quant::OutlierAwareQuantizer;
use shapeshifter::sim::sim::MODEL_SEED;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = zoo::googlenet_s();
    let layer = base.layers().len() / 2;
    println!(
        "GoogLeNet-S, layer {} ({}):\n",
        layer,
        base.layers()[layer].name()
    );

    // --- TF vs RA: the Figure 3 expansion. ---
    let tf = QuantizedNetwork::new(base.clone(), QuantMethod::Tensorflow);
    let ra = QuantizedNetwork::new(base.clone(), QuantMethod::RangeAware);
    let ss = ShapeShifterScheme::default();
    let ctx = SchemeCtx::unprofiled();
    for (q, name) in [(&tf, "TensorFlow"), (&ra, "Range-Aware")] {
        let acts = q.input_tensor(layer, 1);
        println!(
            "{name:>12} 8b acts: effective width {:.2}b, zeros {:>5.1}%, \
             ShapeShifter ratio {:.1}%",
            acts.effective_width(16),
            acts.sparsity() * 100.0,
            ss.ratio(&acts, &ctx) * 100.0
        );
    }
    println!(
        "\nThe affine quantizer's non-zero zero-point stores every near-zero value\n\
         as ~51, so groups need 6+ bits; range-aware scaling keeps zero at zero.\n"
    );

    // --- Outlier-aware quantization: the Figure 16 comparison. ---
    let q = OutlierAwareQuantizer::new(4, 0.01)?; // 4b common, 1% outliers
    let w16 = base.weight_tensor(layer, MODEL_SEED);
    let oq = q.quantize(&w16)?;
    let base_bits = oq.tensor().container_bits();
    println!(
        "Outlier-aware 4b weights ({} outliers of {} values):",
        oq.outlier_count(),
        oq.tensor().len()
    );
    let pct = |b: u64| 100.0 * b as f64 / base_bits as f64;
    println!("  Outlier-Aware store: {:>5.1}% of 16b", pct(outlier_aware_bits(&oq)));
    println!("  Outlier-Aware + ZS:  {:>5.1}%", pct(outlier_aware_zs_bits(&oq)));
    println!(
        "  ShapeShifter:        {:>5.1}% (no specialization for this quantizer)",
        pct(ss.compressed_bits(oq.tensor(), &ctx))
    );
    Ok(())
}
