//! Scenario: off-chip memory compression for a whole model — the paper's
//! first ShapeShifter application (§3).
//!
//! Prices every layer of AlexNet under the four off-chip schemes of
//! Figure 8 and prints the per-layer and total traffic, demonstrating why
//! the memory-bound fully-connected layers dominate and how ShapeShifter
//! compares to profile-based and zero-RLE compression.
//!
//! Run with `cargo run --release --example memory_compression`.

use shapeshifter::prelude::*;
use shapeshifter::sim::sim::MODEL_SEED;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::alexnet();
    let ss = ShapeShifterScheme::default();
    let rle = ZeroRle::default();
    let schemes: [&dyn CompressionScheme; 4] = [&Base, &ProfileScheme, &ss, &rle];

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "layer", "values", "Base MB", "Profile", "SShifter", "ZeroRLE"
    );
    let mut totals = [0u64; 4];
    for (i, layer) in net.layers().iter().enumerate() {
        let w = net.weight_tensor(i, MODEL_SEED);
        let a = net.input_tensor(i, 1);
        let o = net.output_tensor(i, 1);
        use shapeshifter::sim::TensorSource;
        let ctx_a = SchemeCtx::profiled(net.profiled_act_width(i));
        let ctx_w = SchemeCtx::profiled(net.profiled_wgt_width(i));
        let mut bits = [0u64; 4];
        for (b, s) in bits.iter_mut().zip(schemes) {
            *b = s.compressed_bits(&a, &ctx_a)
                + s.compressed_bits(&w, &ctx_w)
                + s.compressed_bits(&o, &ctx_a);
        }
        let mb = |b: u64| b as f64 / 8.0 / 1_048_576.0;
        println!(
            "{:<10} {:>12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            layer.name(),
            a.len() + w.len() + o.len(),
            mb(bits[0]),
            mb(bits[1]),
            mb(bits[2]),
            mb(bits[3]),
        );
        for (t, b) in totals.iter_mut().zip(bits) {
            *t += b;
        }
    }
    println!(
        "\ntotal traffic vs Base: Profile {:.1}%  ShapeShifter {:.1}%  ZeroRLE {:.1}%",
        100.0 * totals[1] as f64 / totals[0] as f64,
        100.0 * totals[2] as f64 / totals[0] as f64,
        100.0 * totals[3] as f64 / totals[0] as f64,
    );

    // And what that traffic means for a bit-parallel accelerator.
    let cfg = SimConfig::with_dram(DramConfig::DDR4_2133);
    let base_run = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
    let ss_run = simulate(&net, &DaDianNao::new(), &ss, &cfg, 1);
    println!(
        "DaDianNao* @ DDR4-2133: ShapeShifter speedup {:.2}x, energy {:.1}% of baseline",
        ss_run.speedup_over(&base_run),
        100.0 * ss_run.total_energy().total_pj() / base_run.total_energy().total_pj(),
    );
    Ok(())
}
