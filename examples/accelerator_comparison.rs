//! Scenario: choosing an accelerator — runs GoogLeNet through every
//! simulated design (the paper's second ShapeShifter application, §4) and
//! prints cycles, speedup over the bit-parallel baseline, and the
//! compute/memory time split.
//!
//! Run with `cargo run --release --example accelerator_comparison`.

use shapeshifter::prelude::*;
use shapeshifter::sim::accel::Accelerator;

fn main() {
    let net = zoo::googlenet();
    let cfg = SimConfig::default(); // dual-channel DDR4-3200, 1 GHz
    let ss_scheme = ShapeShifterScheme::default();

    let designs: Vec<(Box<dyn Accelerator>, &dyn CompressionScheme)> = vec![
        (Box::new(DaDianNao::new()), &Base),
        (Box::new(DaDianNao::new()), &ss_scheme),
        (Box::new(Stripes::new()), &ProfileScheme),
        (Box::new(SStripes::without_composer()), &ss_scheme),
        (Box::new(SStripes::new()), &ss_scheme),
        (Box::new(BitFusion::new()), &ProfileScheme),
        (Box::new(Loom::new()), &ProfileScheme),
        (Box::new(Loom::with_shapeshifter()), &ss_scheme),
    ];

    println!("GoogLeNet, one input, dual-channel DDR4-3200:\n");
    println!(
        "{:<28} {:>14} {:>9} {:>9}",
        "design + scheme", "cycles", "speedup", "compute%"
    );
    let baseline = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
    for (accel, scheme) in &designs {
        let run = simulate(&net, accel.as_ref(), *scheme, &cfg, 1);
        let label = format!("{} + {}", run.accel, run.scheme);
        println!(
            "{:<28} {:>14} {:>8.2}x {:>8.1}%",
            label,
            run.total_cycles(),
            run.speedup_over(&baseline),
            run.compute_time_fraction() * 100.0,
        );
    }
    println!(
        "\n(SStripes without the Composer shows the per-group-width-only ablation;\n\
         the full SStripes adds 8b-weight SIPs + Composer for 1.75x iso-area lanes.)"
    );
}
