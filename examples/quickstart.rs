//! Quickstart: encode a group of values exactly as the paper's Figure 6
//! worked example, then compress a realistic activation tensor and verify
//! the round-trip.
//!
//! Run with `cargo run --release --example quickstart`.

use shapeshifter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The Figure 6 worked example: two groups of eight 8b values. ---
    let values = vec![
        0x25, 0x00, 0x01, 0x00, 0x07, 0x00, 0x00, 0x3F, // group A: needs 6 bits
        0x01, 0x02, 0x00, 0x00, 0x03, 0x05, 0x00, 0x07, // group B: needs 3 bits
    ];
    let tensor = Tensor::from_vec(Shape::flat(16), FixedType::U8, values)?;
    let codec = ShapeShifterCodec::new(8);
    let encoded = codec.encode(&tensor)?;
    println!("Figure 6 example:");
    println!("  uncompressed: {} bits", encoded.uncompressed_bits());
    println!(
        "  compressed:   {} bits ({} metadata + {} payload)",
        encoded.bit_len(),
        encoded.metadata_bits(),
        encoded.payload_bits()
    );
    assert_eq!(codec.decode(&encoded)?, tensor);
    println!("  round-trip:   lossless\n");

    // --- The width detector of Figure 5c. ---
    let det = WidthDetector::new(16, Signedness::Unsigned);
    let group = [0x0801, 0x0102, 0x0403, 0x0204];
    println!(
        "Figure 5c example: group {group:04x?} needs {} bits",
        det.detect(&group)
    );

    // --- A realistic layer from the zoo. ---
    let net = zoo::googlenet();
    let acts = net.input_tensor(1, 7); // conv2_reduce input activations
    let codec = ShapeShifterCodec::new(16);
    let enc = codec.encode(&acts)?;
    println!(
        "\nGoogLeNet {} input activations ({} values):",
        net.layers()[1].name(),
        acts.len()
    );
    println!(
        "  profiled width {}b, effective width {:.2}b, sparsity {:.0}%",
        acts.profiled_width(),
        acts.effective_width(16),
        acts.sparsity() * 100.0
    );
    println!(
        "  ShapeShifter stores it in {:.1}% of the 16b container",
        enc.ratio() * 100.0
    );
    assert_eq!(codec.decode(&enc)?, acts);
    Ok(())
}
