//! A self-describing file container for ShapeShifter-compressed tensors.
//!
//! The paper's memory container is a headerless stream whose framing
//! (element count, container type, group size) travels as layer metadata.
//! For files, this module prepends exactly that metadata:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SSPK"
//! 4       1     format version (1 or 2)
//! 5       1     container bits (1..=16)
//! 6       1     signedness (0 unsigned, 1 signed)
//! 7       1     scheme wire id (resolved via `ss_core::SchemeRegistry`:
//!               0 ShapeShifter, 1 Delta, 2 DPRed, 3 AdaBits built in)
//! 8       2     group size, little-endian
//! 10      8     element count, little-endian
//! 18      8     stream length in bits, little-endian
//! 26      -     v1: the compressed stream
//! ```
//!
//! A **version-2** container carries the optional chunk index between the
//! header and the stream, enabling parallel decode (`ss_core::ChunkIndex`
//! serializes with its own CRC-32, so index corruption is detected
//! independently of the header):
//!
//! ```text
//! 26      4     index length in bytes, little-endian
//! 30      -     the serialized chunk index
//! 30+n    -     the compressed stream (byte-identical to v1)
//! ```
//!
//! `pack` writes v2 exactly when the codec's index policy produced an
//! index (large ShapeShifter tensors under the default `Auto` policy);
//! small tensors and the Delta codec stay v1. Both versions unpack, and a
//! v1 file decodes through the same sequential path as always.
//!
//! # Examples
//!
//! ```
//! use shapeshifter::container;
//! use shapeshifter::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Tensor::from_vec(Shape::flat(4), FixedType::I16, vec![1, -2, 0, 300])?;
//! let packed = container::pack(&t, 16)?;
//! let back = container::unpack(&packed)?;
//! assert_eq!(back, t);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use ss_bitio::BitWriter;
use ss_core::registry::StreamFrame;
use ss_core::{ChunkIndex, CodecError, IndexPolicy, SchemeId, SchemeRegistry};
use ss_tensor::{FixedType, Shape, Signedness, Tensor, TensorError};

/// The closed pre-registry codec set, kept for source compatibility.
///
/// New code addresses schemes by [`SchemeId`] — the open wire id the
/// [`SchemeRegistry`] resolves — and this enum converts losslessly via
/// [`ContainerCodec::scheme_id`] / `From`. It only spans the two original
/// codecs; DPRed and AdaBits exist solely as registry schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContainerCodec {
    /// The paper's per-group container (zero elision + width prefix).
    #[default]
    ShapeShifter,
    /// The Diffy-style delta extension — wins on spatially correlated
    /// data such as imaging activations.
    Delta,
}

impl ContainerCodec {
    /// The registry wire id this legacy codec name maps to.
    #[must_use]
    pub fn scheme_id(self) -> SchemeId {
        match self {
            ContainerCodec::ShapeShifter => SchemeId::SHAPESHIFTER,
            ContainerCodec::Delta => SchemeId::DELTA,
        }
    }

    /// The codec's one-byte wire id (shared by the `SSPK` header and the
    /// `ss-store` shard record metadata).
    #[deprecated(
        since = "0.3.0",
        note = "use `scheme_id().as_byte()` — wire ids are `ss_core::SchemeId` now"
    )]
    #[must_use]
    pub fn to_byte(self) -> u8 {
        self.scheme_id().as_byte()
    }

    /// Inverse of `to_byte`; `None` for ids outside the legacy enum.
    #[deprecated(
        since = "0.3.0",
        note = "wire ids are open — wrap with `SchemeId::new` and resolve via `SchemeRegistry`"
    )]
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ContainerCodec::ShapeShifter),
            1 => Some(ContainerCodec::Delta),
            _ => None,
        }
    }
}

impl From<ContainerCodec> for SchemeId {
    fn from(codec: ContainerCodec) -> Self {
        codec.scheme_id()
    }
}

/// File magic.
pub const MAGIC: [u8; 4] = *b"SSPK";
/// The v1 format version: header + stream.
pub const VERSION: u8 = 1;
/// The v2 format version: header + chunk-index block + stream.
pub const VERSION_V2: u8 = 2;
/// Header length in bytes (shared by both versions).
pub const HEADER_LEN: usize = 26;

/// Errors for the file container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The file does not start with the `SSPK` magic.
    BadMagic,
    /// The file declares an unsupported format version.
    UnsupportedVersion(u8),
    /// The header is shorter than [`HEADER_LEN`] or internally
    /// inconsistent.
    Malformed(String),
    /// The serialized chunk index exceeds the format's 4 GiB limit (its
    /// length travels as a `u32`), so the container cannot be written
    /// without silently truncating the length field.
    IndexTooLarge {
        /// Actual serialized index size in bytes.
        bytes: usize,
    },
    /// A declared length is valid `u64` framing but does not fit this
    /// target's `usize` — decoding would wrap on a 32-bit host.
    LengthOverflow {
        /// Which header field overflowed.
        field: &'static str,
        /// The declared value.
        value: u64,
    },
    /// The compressed stream failed to decode.
    Codec(CodecError),
    /// Tensor validation failed.
    Tensor(TensorError),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an SSPK container (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            ContainerError::Malformed(why) => write!(f, "malformed container: {why}"),
            ContainerError::IndexTooLarge { bytes } => write!(
                f,
                "chunk index is {bytes} bytes; the v2 length field holds at most {} \
                 (pack with a coarser index policy)",
                u32::MAX
            ),
            ContainerError::LengthOverflow { field, value } => write!(
                f,
                "header field {field} declares {value}, which overflows this target's usize"
            ),
            ContainerError::Codec(e) => write!(f, "stream decode failed: {e}"),
            ContainerError::Tensor(e) => write!(f, "tensor validation failed: {e}"),
        }
    }
}

impl Error for ContainerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ContainerError::Codec(e) => Some(e),
            ContainerError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ContainerError {
    fn from(e: CodecError) -> Self {
        ContainerError::Codec(e)
    }
}

impl From<TensorError> for ContainerError {
    fn from(e: TensorError) -> Self {
        ContainerError::Tensor(e)
    }
}

/// Decoded header metadata (what `sspack info` prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Format version (1 or 2).
    pub version: u8,
    /// Value container type.
    pub dtype: FixedType,
    /// Group size.
    pub group_size: usize,
    /// Element count.
    pub len: u64,
    /// Compressed stream length in bits.
    pub stream_bits: u64,
    /// Serialized chunk-index size in bytes (0 for v1 containers).
    pub index_bytes: usize,
    /// The scheme wire id (header byte 7). Parsed permissively: any byte
    /// is representable, and validity is decided by the registry at
    /// unpack time — an unregistered id surfaces there as the typed
    /// [`CodecError::UnknownScheme`].
    pub scheme: SchemeId,
}

impl ContainerInfo {
    /// Compression ratio vs the raw container (lower is better).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let raw = self.len * u64::from(self.dtype.bits());
        if raw == 0 {
            1.0
        } else {
            self.stream_bits as f64 / raw as f64
        }
    }

    /// Index metadata overhead in bits per tensor value (0 for v1).
    #[must_use]
    pub fn index_overhead_bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            (self.index_bytes as u64 * 8) as f64 / self.len as f64
        }
    }

    /// Byte offset of the compressed stream within the file.
    #[must_use]
    pub fn stream_offset(&self) -> usize {
        if self.version >= VERSION_V2 {
            HEADER_LEN + 4 + self.index_bytes
        } else {
            HEADER_LEN
        }
    }
}

/// Packs a tensor into an `SSPK` byte vector (ShapeShifter scheme).
///
/// # Errors
///
/// [`CodecError::InvalidGroupSize`] (as a [`ContainerError::Codec`]) if
/// `group_size` is 0 or exceeds 256; otherwise propagates encode
/// failures (unreachable for valid tensors).
pub fn pack(tensor: &Tensor, group_size: usize) -> Result<Vec<u8>, ContainerError> {
    pack_with_policy(tensor, group_size, SchemeId::SHAPESHIFTER, IndexPolicy::Auto)
}

/// Packs a tensor under any registered scheme (default index policy).
///
/// # Errors
///
/// As [`pack`], plus [`CodecError::UnknownScheme`] if `scheme` is not
/// registered.
pub fn pack_with_scheme(
    tensor: &Tensor,
    group_size: usize,
    scheme: impl Into<SchemeId>,
) -> Result<Vec<u8>, ContainerError> {
    pack_with_policy(tensor, group_size, scheme, IndexPolicy::Auto)
}

/// Packs a tensor with an explicit codec choice.
///
/// # Errors
///
/// As [`pack`].
#[deprecated(
    since = "0.3.0",
    note = "use `pack_with_scheme` — schemes are addressed by `SchemeId` through the registry"
)]
pub fn pack_with_codec(
    tensor: &Tensor,
    group_size: usize,
    codec: ContainerCodec,
) -> Result<Vec<u8>, ContainerError> {
    pack_with_policy(tensor, group_size, codec.scheme_id(), IndexPolicy::Auto)
}

/// Packs a tensor with explicit scheme and chunk-index policy choices,
/// resolving the scheme in the global [`SchemeRegistry`].
///
/// The index policy only applies to schemes that participate in chunk
/// indexing (ShapeShifter): when the scheme produces an index the file is
/// written as version 2 (index block between header and stream);
/// otherwise the file is the classic version 1.
///
/// # Errors
///
/// As [`pack_with_scheme`].
pub fn pack_with_policy(
    tensor: &Tensor,
    group_size: usize,
    scheme: impl Into<SchemeId>,
    policy: IndexPolicy,
) -> Result<Vec<u8>, ContainerError> {
    pack_with_policy_in(SchemeRegistry::global(), tensor, group_size, scheme, policy)
}

/// [`pack_with_policy`] against an explicit registry — the general form
/// for embedders that restrict or extend the scheme set.
///
/// # Errors
///
/// As [`pack_with_scheme`].
pub fn pack_with_policy_in(
    registry: &SchemeRegistry,
    tensor: &Tensor,
    group_size: usize,
    scheme: impl Into<SchemeId>,
    policy: IndexPolicy,
) -> Result<Vec<u8>, ContainerError> {
    let id = scheme.into();
    let scheme = registry.get(id)?;
    let mut w = BitWriter::new();
    let index = scheme.encode_into(tensor, group_size, policy, &mut w)?;
    let index_blob = index.as_ref().map(ChunkIndex::to_bytes).transpose()?;
    let bytes = w.as_bytes();
    let bit_len = w.bit_len();
    let index_len = index_blob
        .as_ref()
        .map_or(Ok(0u32), |blob| index_block_len(blob.len()))?;
    let mut out = Vec::with_capacity(HEADER_LEN + 4 + index_len as usize + bytes.len());
    out.extend_from_slice(&MAGIC);
    out.push(if index_blob.is_some() { VERSION_V2 } else { VERSION });
    out.push(tensor.dtype().bits());
    out.push(u8::from(tensor.signedness().is_signed()));
    out.push(id.as_byte());
    out.extend_from_slice(&(group_size as u16).to_le_bytes());
    out.extend_from_slice(&(tensor.len() as u64).to_le_bytes());
    out.extend_from_slice(&bit_len.to_le_bytes());
    if let Some(blob) = index_blob {
        out.extend_from_slice(&index_len.to_le_bytes());
        out.extend_from_slice(&blob);
    }
    out.extend_from_slice(bytes);
    Ok(out)
}

/// Checked conversion of a serialized chunk-index size to the v2 format's
/// `u32` length field. A ≥ 4 GiB index would otherwise truncate under
/// `as u32` and produce a corrupt-but-well-formed file whose declared
/// index block is a prefix of the real one.
fn index_block_len(blob_len: usize) -> Result<u32, ContainerError> {
    u32::try_from(blob_len).map_err(|_| ContainerError::IndexTooLarge { bytes: blob_len })
}

/// Reads only the header.
///
/// # Errors
///
/// [`ContainerError`] variants for bad magic, version or malformed
/// headers.
pub fn info(bytes: &[u8]) -> Result<ContainerInfo, ContainerError> {
    if bytes.len() < HEADER_LEN {
        return Err(ContainerError::Malformed(format!(
            "file is {} bytes, header needs {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = bytes[4];
    if version != VERSION && version != VERSION_V2 {
        return Err(ContainerError::UnsupportedVersion(version));
    }
    let bits = bytes[5];
    let dtype = match bytes[6] {
        0 => FixedType::unsigned(bits),
        1 => FixedType::signed(bits),
        s => {
            return Err(ContainerError::Malformed(format!(
                "signedness byte {s} is neither 0 nor 1"
            )))
        }
    }?;
    // Parsed permissively: the header reports whatever byte it carries,
    // and the registry decides validity at unpack time with a typed
    // `CodecError::UnknownScheme` (the old path collapsed unknown ids
    // into an untyped Malformed string here).
    // ss-lint: allow(panic-freedom) -- the HEADER_LEN check above guarantees byte 7 exists
    let scheme = SchemeId::new(bytes[7]);
    let group_size = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
    if group_size == 0 || group_size > 256 {
        return Err(ContainerError::Malformed(format!(
            "group size {group_size} outside 1..=256"
        )));
    }
    let len = u64::from_le_bytes(bytes[10..18].try_into().expect("slice length checked"));
    let stream_bits =
        u64::from_le_bytes(bytes[18..26].try_into().expect("slice length checked"));
    let index_bytes = if version == VERSION_V2 {
        let Some(rest) = bytes.len().checked_sub(HEADER_LEN + 4) else {
            return Err(ContainerError::Malformed(
                "v2 file too short for its index-length field".to_string(),
            ));
        };
        let declared = u32::from_le_bytes(
            bytes[HEADER_LEN..HEADER_LEN + 4]
                .try_into()
                .expect("slice length checked"),
        );
        // Checked, not `as`: a 16-bit-usize target must reject rather
        // than wrap a length the framing itself allows.
        let index_len = usize::try_from(declared).map_err(|_| ContainerError::LengthOverflow {
            field: "index length",
            value: u64::from(declared),
        })?;
        if index_len > rest {
            return Err(ContainerError::Malformed(format!(
                "index claims {index_len} bytes but file carries {rest} past the header"
            )));
        }
        index_len
    } else {
        0
    };
    let meta = ContainerInfo {
        version,
        dtype,
        group_size,
        len,
        stream_bits,
        index_bytes,
        scheme,
    };
    let available = (bytes.len() - meta.stream_offset()) as u64 * 8;
    if stream_bits > available {
        return Err(ContainerError::Malformed(format!(
            "stream claims {stream_bits} bits but file carries {available}"
        )));
    }
    Ok(meta)
}

/// Unpacks an `SSPK` byte vector back into the original tensor,
/// resolving the scheme wire id in the global [`SchemeRegistry`].
///
/// A v2 container's chunk index is deserialized (its CRC-32 rejects any
/// corruption) and handed to the scheme, which drives the parallel decode
/// path when it participates in indexing — the worker count follows
/// `SS_THREADS` / the machine's parallelism; v1 containers decode
/// sequentially exactly as before.
///
/// # Errors
///
/// [`ContainerError`] variants for framing problems, an unregistered
/// scheme id ([`CodecError::UnknownScheme`]), a corrupt index or a
/// corrupt stream.
pub fn unpack(bytes: &[u8]) -> Result<Tensor, ContainerError> {
    unpack_in(SchemeRegistry::global(), bytes)
}

/// [`unpack`] against an explicit registry — the general form for
/// embedders that restrict or extend the scheme set.
///
/// # Errors
///
/// As [`unpack`].
pub fn unpack_in(registry: &SchemeRegistry, bytes: &[u8]) -> Result<Tensor, ContainerError> {
    let meta = info(bytes)?;
    let scheme = registry.get(meta.scheme)?;
    // Checked before any use as a count: the 8-byte field wraps under
    // `as usize` on a 32-bit target, turning a hostile length into a
    // small-but-wrong allocation and a bogus decode.
    let len = checked_len(&meta)?;
    let stream = &bytes[meta.stream_offset()..];
    let index = if meta.index_bytes > 0 {
        let blob = &bytes[HEADER_LEN + 4..HEADER_LEN + 4 + meta.index_bytes];
        Some(ChunkIndex::from_bytes(blob)?)
    } else {
        None
    };
    let frame = StreamFrame {
        bit_len: meta.stream_bits,
        dtype: meta.dtype,
        len,
        group_size: meta.group_size,
    };
    let mut values = Vec::new();
    scheme.decode_into(
        stream,
        &frame,
        index.as_ref(),
        ss_core::par::thread_count(),
        &mut values,
    )?;
    Ok(Tensor::from_vec(Shape::flat(len), meta.dtype, values)?)
}

/// The container's element count as a `usize`, checked against the
/// target's pointer width.
fn checked_len(meta: &ContainerInfo) -> Result<usize, ContainerError> {
    usize::try_from(meta.len).map_err(|_| ContainerError::LengthOverflow {
        field: "element count",
        value: meta.len,
    })
}

/// Unpacks an `SSPK` byte vector through a reusable [`CodecSession`],
/// decoding into an existing tensor.
///
/// This is the allocation-amortizing sibling of [`unpack`] — the record
/// payload path of the `ss-store` shard store, where thousands of
/// per-record decodes share one session's scratch. The stream is parsed
/// sequentially (a v2 chunk index is validated side metadata for this
/// path: its presence is honored in [`ContainerInfo::stream_offset`] but
/// it does not fan the decode out). Every registered scheme decodes
/// through the session's shared value scratch — the old Delta-only
/// allocation fallback is gone.
///
/// # Errors
///
/// As [`unpack`].
pub fn unpack_with(
    bytes: &[u8],
    session: &mut ss_core::CodecSession,
    out: &mut Tensor,
) -> Result<(), ContainerError> {
    let meta = info(bytes)?;
    let scheme = SchemeRegistry::global().get(meta.scheme)?;
    let len = checked_len(&meta)?;
    let stream = &bytes[meta.stream_offset()..];
    let frame = StreamFrame {
        bit_len: meta.stream_bits,
        dtype: meta.dtype,
        len,
        group_size: meta.group_size,
    };
    session.decode_scheme_stream_into(scheme, stream, &frame, out)?;
    Ok(())
}

/// Interprets raw little-endian bytes as fixed-point values for packing.
///
/// 8-bit containers consume one byte per value; wider containers two
/// (little-endian), interpreted as two's-complement when signed and
/// converted to the library's sign-magnitude-friendly `i32` form.
///
/// # Errors
///
/// [`ContainerError::Malformed`] if the byte count does not divide evenly
/// or a value does not fit the container.
pub fn values_from_raw(bytes: &[u8], dtype: FixedType) -> Result<Vec<i32>, ContainerError> {
    let step = if dtype.bits() <= 8 { 1 } else { 2 };
    if !bytes.len().is_multiple_of(step) {
        return Err(ContainerError::Malformed(format!(
            "{} raw bytes do not divide into {step}-byte values",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / step);
    for chunk in bytes.chunks(step) {
        let v: i32 = match (step, dtype.signedness()) {
            (1, Signedness::Unsigned) => i32::from(chunk[0]),
            (1, Signedness::Signed) => i32::from(chunk[0] as i8),
            (2, Signedness::Unsigned) => i32::from(u16::from_le_bytes([chunk[0], chunk[1]])),
            (2, Signedness::Signed) => i32::from(i16::from_le_bytes([chunk[0], chunk[1]])),
            _ => unreachable!("step is 1 or 2"),
        };
        if !dtype.contains(v) {
            return Err(ContainerError::Malformed(format!(
                "raw value {v} does not fit container {dtype}"
            )));
        }
        out.push(v);
    }
    Ok(out)
}

/// Serializes values back to raw little-endian bytes (inverse of
/// [`values_from_raw`]).
#[must_use]
pub fn values_to_raw(tensor: &Tensor) -> Vec<u8> {
    let step = if tensor.dtype().bits() <= 8 { 1 } else { 2 };
    let mut out = Vec::with_capacity(tensor.len() * step);
    for &v in tensor.values() {
        if step == 1 {
            out.push(v as u8);
        } else {
            out.extend_from_slice(&(v as i16).to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let tensor = t(vec![0, 1, -1, 300, -32000, 0, 0, 7]);
        let packed = pack(&tensor, 16).unwrap();
        assert_eq!(unpack(&packed).unwrap(), tensor);
        let meta = info(&packed).unwrap();
        assert_eq!(meta.len, 8);
        assert_eq!(meta.group_size, 16);
        assert!(meta.ratio() < 1.0);
    }

    #[test]
    fn delta_codec_roundtrips() {
        let tensor = t(vec![1000, 1002, 1001, 999, 0, 0, 998, 30_000]);
        let packed = pack_with_scheme(&tensor, 4, SchemeId::DELTA).unwrap();
        assert_eq!(info(&packed).unwrap().scheme, SchemeId::DELTA);
        assert_eq!(unpack(&packed).unwrap(), tensor);
    }

    #[test]
    fn plugin_schemes_roundtrip() {
        let tensor = t(vec![0, 1, -1, 300, -32000, 0, 0, 7, 12, -12, 0, 9000]);
        for id in [SchemeId::DPRED, SchemeId::ADABITS] {
            let packed = pack_with_scheme(&tensor, 4, id).unwrap();
            assert_eq!(info(&packed).unwrap().scheme, id);
            assert_eq!(unpack(&packed).unwrap(), tensor, "scheme {id}");
        }
    }

    #[test]
    fn deprecated_codec_shims_delegate_to_the_registry() {
        #![allow(deprecated)]
        let tensor = t(vec![1000, 1002, 1001, 999, 0, 0, 998, 30_000]);
        let via_shim = pack_with_codec(&tensor, 4, ContainerCodec::Delta).unwrap();
        let via_registry = pack_with_scheme(&tensor, 4, SchemeId::DELTA).unwrap();
        assert_eq!(via_shim, via_registry);
        assert_eq!(ContainerCodec::ShapeShifter.to_byte(), 0);
        assert_eq!(ContainerCodec::from_byte(1), Some(ContainerCodec::Delta));
        assert_eq!(ContainerCodec::from_byte(2), None);
    }

    #[test]
    fn v2_packs_index_and_roundtrips() {
        let vals: Vec<i32> = (0..200).map(|i| (i * 37) % 2000 - 1000).collect();
        let tensor = t(vals);
        let packed = pack_with_policy(
            &tensor,
            16,
            SchemeId::SHAPESHIFTER,
            IndexPolicy::EveryGroups(2),
        )
        .unwrap();
        let meta = info(&packed).unwrap();
        assert_eq!(meta.version, VERSION_V2);
        assert!(meta.index_bytes > 0);
        assert!(meta.index_overhead_bits_per_value() > 0.0);
        assert_eq!(unpack(&packed).unwrap(), tensor);
        // The v1 encoding of the same tensor holds the identical stream.
        let v1 = pack_with_policy(&tensor, 16, SchemeId::SHAPESHIFTER, IndexPolicy::None).unwrap();
        let v1_meta = info(&v1).unwrap();
        assert_eq!(v1_meta.version, VERSION);
        assert_eq!(v1_meta.index_bytes, 0);
        assert_eq!(
            &packed[meta.stream_offset()..],
            &v1[v1_meta.stream_offset()..]
        );
        assert_eq!(unpack(&v1).unwrap(), tensor);
    }

    #[test]
    fn v2_index_corruption_is_detected() {
        let vals: Vec<i32> = (0..200).map(|i| (i * 31) % 1000).collect();
        let tensor = t(vals);
        let packed = pack_with_policy(
            &tensor,
            16,
            SchemeId::SHAPESHIFTER,
            IndexPolicy::EveryGroups(1),
        )
        .unwrap();
        let meta = info(&packed).unwrap();
        // Flip one bit in every byte of the index blob: each must surface
        // as a typed codec error (the blob's CRC-32 catches them all).
        for i in HEADER_LEN + 4..meta.stream_offset() {
            let mut corrupt = packed.clone();
            corrupt[i] ^= 0x10;
            assert!(
                matches!(unpack(&corrupt), Err(ContainerError::Codec(_))),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn small_tensors_stay_v1_under_auto_policy() {
        let tensor = t(vec![1, -2, 0, 300]);
        let packed = pack(&tensor, 16).unwrap();
        let meta = info(&packed).unwrap();
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.index_bytes, 0);
        assert_eq!(meta.stream_offset(), HEADER_LEN);
    }

    #[test]
    fn unknown_scheme_is_a_typed_error() {
        let tensor = t(vec![1, 2]);
        let mut packed = pack(&tensor, 16).unwrap();
        packed[7] = 9;
        // `info` stays permissive (the id parses), `unpack` resolves it
        // against the registry and reports the exact id it rejected.
        assert_eq!(info(&packed).unwrap().scheme, SchemeId::new(9));
        assert!(matches!(
            unpack(&packed),
            Err(ContainerError::Codec(CodecError::UnknownScheme { id: 9 }))
        ));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let tensor = t(vec![1, 2]);
        let mut packed = pack(&tensor, 16).unwrap();
        packed[0] = b'X';
        assert_eq!(unpack(&packed), Err(ContainerError::BadMagic));
        packed[0] = b'S';
        packed[4] = 9;
        assert_eq!(unpack(&packed), Err(ContainerError::UnsupportedVersion(9)));
    }

    #[test]
    fn rejects_truncation() {
        let tensor = t((0..64).map(|i| i * 100).collect());
        let packed = pack(&tensor, 16).unwrap();
        let cut = &packed[..packed.len() - 4];
        assert!(matches!(
            unpack(cut),
            Err(ContainerError::Malformed(_)) | Err(ContainerError::Codec(_))
        ));
        assert!(info(&packed[..10]).is_err());
    }

    #[test]
    fn oversized_index_is_a_typed_error() {
        // The error path is exercised through the length check alone — a
        // real ≥ 4 GiB index blob is neither constructible in a test nor
        // necessary, since `pack_with_policy` routes every index length
        // through the same helper.
        assert_eq!(index_block_len(0), Ok(0));
        assert_eq!(index_block_len(u32::MAX as usize), Ok(u32::MAX));
        #[cfg(target_pointer_width = "64")]
        {
            let too_big = u32::MAX as usize + 1;
            assert_eq!(
                index_block_len(too_big),
                Err(ContainerError::IndexTooLarge { bytes: too_big })
            );
        }
    }

    #[test]
    fn hostile_element_count_is_a_typed_error() {
        // A header declaring u64::MAX elements: on 32-bit targets the
        // count overflows usize (LengthOverflow); on 64-bit it survives
        // the conversion and must then fail the stream-length bound —
        // either way a typed error, never a wrap or an OOM.
        let tensor = t(vec![1, -2, 0, 300]);
        let mut packed = pack(&tensor, 16).unwrap();
        packed[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            unpack(&packed),
            Err(ContainerError::LengthOverflow { .. }) | Err(ContainerError::Codec(_))
        ));
        assert_eq!(info(&packed).unwrap().len, u64::MAX);
        #[cfg(not(target_pointer_width = "64"))]
        assert!(matches!(
            unpack(&packed),
            Err(ContainerError::LengthOverflow {
                field: "element count",
                value: u64::MAX,
            })
        ));
    }

    #[test]
    fn unpack_with_matches_one_shot() {
        let mut session = ss_core::CodecSession::new(ss_core::CodecConfig::new()).unwrap();
        let mut out = t(vec![0]);
        // ShapeShifter v1, ShapeShifter v2 (indexed), Delta, DPRed and
        // AdaBits containers all decode identically through the session
        // path.
        let vals: Vec<i32> = (0..300).map(|i| (i * 37) % 2000 - 1000).collect();
        let tensor = t(vals);
        for packed in [
            pack(&tensor, 16).unwrap(),
            pack_with_policy(
                &tensor,
                16,
                SchemeId::SHAPESHIFTER,
                IndexPolicy::EveryGroups(2),
            )
            .unwrap(),
            pack_with_scheme(&tensor, 16, SchemeId::DELTA).unwrap(),
            pack_with_scheme(&tensor, 16, SchemeId::DPRED).unwrap(),
            pack_with_scheme(&tensor, 16, SchemeId::ADABITS).unwrap(),
        ] {
            unpack_with(&packed, &mut session, &mut out).unwrap();
            assert_eq!(out, tensor);
            assert_eq!(out, unpack(&packed).unwrap());
        }
    }

    #[test]
    fn raw_conversion_roundtrips() {
        let tensor = t(vec![-5, 5, 0, 32767, -32767]);
        let raw = values_to_raw(&tensor);
        let back = values_from_raw(&raw, FixedType::I16).unwrap();
        assert_eq!(back, tensor.values());
        // 8-bit path.
        let t8 = Tensor::from_vec(Shape::flat(3), FixedType::U8, vec![0, 128, 255]).unwrap();
        let raw8 = values_to_raw(&t8);
        assert_eq!(raw8.len(), 3);
        assert_eq!(values_from_raw(&raw8, FixedType::U8).unwrap(), t8.values());
    }

    #[test]
    fn raw_rejects_out_of_range() {
        // -32768 is two's-complement-representable but not sign-magnitude.
        let raw = (-32768i16).to_le_bytes();
        assert!(values_from_raw(&raw, FixedType::I16).is_err());
        // Odd byte counts don't divide into 16-bit values.
        assert!(values_from_raw(&[1, 2, 3], FixedType::I16).is_err());
    }
}
