//! A self-describing file container for ShapeShifter-compressed tensors.
//!
//! The paper's memory container is a headerless stream whose framing
//! (element count, container type, group size) travels as layer metadata.
//! For files, this module prepends exactly that metadata:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SSPK"
//! 4       1     format version (1)
//! 5       1     container bits (1..=16)
//! 6       1     signedness (0 unsigned, 1 signed)
//! 7       1     codec (0 ShapeShifter, 1 Delta-ShapeShifter)
//! 8       2     group size, little-endian
//! 10      8     element count, little-endian
//! 18      8     stream length in bits, little-endian
//! 26      -     the compressed stream
//! ```
//!
//! # Examples
//!
//! ```
//! use shapeshifter::container;
//! use shapeshifter::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Tensor::from_vec(Shape::flat(4), FixedType::I16, vec![1, -2, 0, 300])?;
//! let packed = container::pack(&t, 16)?;
//! let back = container::unpack(&packed)?;
//! assert_eq!(back, t);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use ss_core::scheme::DeltaShapeShifter;
use ss_core::{CodecError, ShapeShifterCodec};
use ss_tensor::{FixedType, Shape, Signedness, Tensor, TensorError};

/// The compression codec a container uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContainerCodec {
    /// The paper's per-group container (zero elision + width prefix).
    #[default]
    ShapeShifter,
    /// The Diffy-style delta extension — wins on spatially correlated
    /// data such as imaging activations.
    Delta,
}

impl ContainerCodec {
    fn to_byte(self) -> u8 {
        match self {
            ContainerCodec::ShapeShifter => 0,
            ContainerCodec::Delta => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ContainerCodec::ShapeShifter),
            1 => Some(ContainerCodec::Delta),
            _ => None,
        }
    }
}

/// File magic.
pub const MAGIC: [u8; 4] = *b"SSPK";
/// Current format version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 26;

/// Errors for the file container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The file does not start with the `SSPK` magic.
    BadMagic,
    /// The file declares an unsupported format version.
    UnsupportedVersion(u8),
    /// The header is shorter than [`HEADER_LEN`] or internally
    /// inconsistent.
    Malformed(String),
    /// The compressed stream failed to decode.
    Codec(CodecError),
    /// Tensor validation failed.
    Tensor(TensorError),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an SSPK container (bad magic)"),
            ContainerError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            ContainerError::Malformed(why) => write!(f, "malformed container: {why}"),
            ContainerError::Codec(e) => write!(f, "stream decode failed: {e}"),
            ContainerError::Tensor(e) => write!(f, "tensor validation failed: {e}"),
        }
    }
}

impl Error for ContainerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ContainerError::Codec(e) => Some(e),
            ContainerError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ContainerError {
    fn from(e: CodecError) -> Self {
        ContainerError::Codec(e)
    }
}

impl From<TensorError> for ContainerError {
    fn from(e: TensorError) -> Self {
        ContainerError::Tensor(e)
    }
}

/// Decoded header metadata (what `sspack info` prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Value container type.
    pub dtype: FixedType,
    /// Group size.
    pub group_size: usize,
    /// Element count.
    pub len: u64,
    /// Compressed stream length in bits.
    pub stream_bits: u64,
    /// Codec in use.
    pub codec: ContainerCodec,
}

impl ContainerInfo {
    /// Compression ratio vs the raw container (lower is better).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let raw = self.len * u64::from(self.dtype.bits());
        if raw == 0 {
            1.0
        } else {
            self.stream_bits as f64 / raw as f64
        }
    }
}

/// Packs a tensor into an `SSPK` byte vector.
///
/// # Errors
///
/// Propagates [`CodecError`] from encoding (unreachable for valid
/// tensors).
///
/// # Panics
///
/// Panics if `group_size` is 0 or exceeds 256 (as the codec does).
pub fn pack(tensor: &Tensor, group_size: usize) -> Result<Vec<u8>, ContainerError> {
    pack_with_codec(tensor, group_size, ContainerCodec::ShapeShifter)
}

/// Packs a tensor with an explicit codec choice.
///
/// # Errors
///
/// As [`pack`].
///
/// # Panics
///
/// Panics if `group_size` is 0 or exceeds 256.
pub fn pack_with_codec(
    tensor: &Tensor,
    group_size: usize,
    codec: ContainerCodec,
) -> Result<Vec<u8>, ContainerError> {
    let (bytes, bit_len) = match codec {
        ContainerCodec::ShapeShifter => {
            let enc = ShapeShifterCodec::new(group_size).encode(tensor)?;
            let bits = enc.bit_len();
            (enc.bytes().to_vec(), bits)
        }
        ContainerCodec::Delta => DeltaShapeShifter::new(group_size).encode(tensor)?,
    };
    let mut out = Vec::with_capacity(HEADER_LEN + bytes.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tensor.dtype().bits());
    out.push(u8::from(tensor.signedness().is_signed()));
    out.push(codec.to_byte());
    out.extend_from_slice(&(group_size as u16).to_le_bytes());
    out.extend_from_slice(&(tensor.len() as u64).to_le_bytes());
    out.extend_from_slice(&bit_len.to_le_bytes());
    out.extend_from_slice(&bytes);
    Ok(out)
}

/// Reads only the header.
///
/// # Errors
///
/// [`ContainerError`] variants for bad magic, version or malformed
/// headers.
pub fn info(bytes: &[u8]) -> Result<ContainerInfo, ContainerError> {
    if bytes.len() < HEADER_LEN {
        return Err(ContainerError::Malformed(format!(
            "file is {} bytes, header needs {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(ContainerError::UnsupportedVersion(bytes[4]));
    }
    let bits = bytes[5];
    let dtype = match bytes[6] {
        0 => FixedType::unsigned(bits),
        1 => FixedType::signed(bits),
        s => {
            return Err(ContainerError::Malformed(format!(
                "signedness byte {s} is neither 0 nor 1"
            )))
        }
    }?;
    let codec = ContainerCodec::from_byte(bytes[7]).ok_or_else(|| {
        ContainerError::Malformed(format!("unknown codec id {}", bytes[7]))
    })?;
    let group_size = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
    if group_size == 0 || group_size > 256 {
        return Err(ContainerError::Malformed(format!(
            "group size {group_size} outside 1..=256"
        )));
    }
    let len = u64::from_le_bytes(bytes[10..18].try_into().expect("slice length checked"));
    let stream_bits =
        u64::from_le_bytes(bytes[18..26].try_into().expect("slice length checked"));
    let available = (bytes.len() - HEADER_LEN) as u64 * 8;
    if stream_bits > available {
        return Err(ContainerError::Malformed(format!(
            "stream claims {stream_bits} bits but file carries {available}"
        )));
    }
    Ok(ContainerInfo {
        dtype,
        group_size,
        len,
        stream_bits,
        codec,
    })
}

/// Unpacks an `SSPK` byte vector back into the original tensor.
///
/// # Errors
///
/// [`ContainerError`] variants for framing problems or a corrupt stream.
pub fn unpack(bytes: &[u8]) -> Result<Tensor, ContainerError> {
    let meta = info(bytes)?;
    let stream = &bytes[HEADER_LEN..];
    let values = match meta.codec {
        ContainerCodec::ShapeShifter => ShapeShifterCodec::new(meta.group_size)
            .decode_stream(stream, meta.stream_bits, meta.dtype, meta.len as usize)?,
        ContainerCodec::Delta => DeltaShapeShifter::new(meta.group_size).decode(
            stream,
            meta.stream_bits,
            meta.dtype,
            meta.len as usize,
        )?,
    };
    Ok(Tensor::from_vec(
        Shape::flat(meta.len as usize),
        meta.dtype,
        values,
    )?)
}

/// Interprets raw little-endian bytes as fixed-point values for packing.
///
/// 8-bit containers consume one byte per value; wider containers two
/// (little-endian), interpreted as two's-complement when signed and
/// converted to the library's sign-magnitude-friendly `i32` form.
///
/// # Errors
///
/// [`ContainerError::Malformed`] if the byte count does not divide evenly
/// or a value does not fit the container.
pub fn values_from_raw(bytes: &[u8], dtype: FixedType) -> Result<Vec<i32>, ContainerError> {
    let step = if dtype.bits() <= 8 { 1 } else { 2 };
    if !bytes.len().is_multiple_of(step) {
        return Err(ContainerError::Malformed(format!(
            "{} raw bytes do not divide into {step}-byte values",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / step);
    for chunk in bytes.chunks(step) {
        let v: i32 = match (step, dtype.signedness()) {
            (1, Signedness::Unsigned) => i32::from(chunk[0]),
            (1, Signedness::Signed) => i32::from(chunk[0] as i8),
            (2, Signedness::Unsigned) => i32::from(u16::from_le_bytes([chunk[0], chunk[1]])),
            (2, Signedness::Signed) => i32::from(i16::from_le_bytes([chunk[0], chunk[1]])),
            _ => unreachable!("step is 1 or 2"),
        };
        if !dtype.contains(v) {
            return Err(ContainerError::Malformed(format!(
                "raw value {v} does not fit container {dtype}"
            )));
        }
        out.push(v);
    }
    Ok(out)
}

/// Serializes values back to raw little-endian bytes (inverse of
/// [`values_from_raw`]).
#[must_use]
pub fn values_to_raw(tensor: &Tensor) -> Vec<u8> {
    let step = if tensor.dtype().bits() <= 8 { 1 } else { 2 };
    let mut out = Vec::with_capacity(tensor.len() * step);
    for &v in tensor.values() {
        if step == 1 {
            out.push(v as u8);
        } else {
            out.extend_from_slice(&(v as i16).to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let tensor = t(vec![0, 1, -1, 300, -32000, 0, 0, 7]);
        let packed = pack(&tensor, 16).unwrap();
        assert_eq!(unpack(&packed).unwrap(), tensor);
        let meta = info(&packed).unwrap();
        assert_eq!(meta.len, 8);
        assert_eq!(meta.group_size, 16);
        assert!(meta.ratio() < 1.0);
    }

    #[test]
    fn delta_codec_roundtrips() {
        let tensor = t(vec![1000, 1002, 1001, 999, 0, 0, 998, 30_000]);
        let packed = pack_with_codec(&tensor, 4, ContainerCodec::Delta).unwrap();
        assert_eq!(info(&packed).unwrap().codec, ContainerCodec::Delta);
        assert_eq!(unpack(&packed).unwrap(), tensor);
    }

    #[test]
    fn unknown_codec_rejected() {
        let tensor = t(vec![1, 2]);
        let mut packed = pack(&tensor, 16).unwrap();
        packed[7] = 9;
        assert!(matches!(unpack(&packed), Err(ContainerError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let tensor = t(vec![1, 2]);
        let mut packed = pack(&tensor, 16).unwrap();
        packed[0] = b'X';
        assert_eq!(unpack(&packed), Err(ContainerError::BadMagic));
        packed[0] = b'S';
        packed[4] = 9;
        assert_eq!(unpack(&packed), Err(ContainerError::UnsupportedVersion(9)));
    }

    #[test]
    fn rejects_truncation() {
        let tensor = t((0..64).map(|i| i * 100).collect());
        let packed = pack(&tensor, 16).unwrap();
        let cut = &packed[..packed.len() - 4];
        assert!(matches!(
            unpack(cut),
            Err(ContainerError::Malformed(_)) | Err(ContainerError::Codec(_))
        ));
        assert!(info(&packed[..10]).is_err());
    }

    #[test]
    fn raw_conversion_roundtrips() {
        let tensor = t(vec![-5, 5, 0, 32767, -32767]);
        let raw = values_to_raw(&tensor);
        let back = values_from_raw(&raw, FixedType::I16).unwrap();
        assert_eq!(back, tensor.values());
        // 8-bit path.
        let t8 = Tensor::from_vec(Shape::flat(3), FixedType::U8, vec![0, 128, 255]).unwrap();
        let raw8 = values_to_raw(&t8);
        assert_eq!(raw8.len(), 3);
        assert_eq!(values_from_raw(&raw8, FixedType::U8).unwrap(), t8.values());
    }

    #[test]
    fn raw_rejects_out_of_range() {
        // -32768 is two's-complement-representable but not sign-magnitude.
        let raw = (-32768i16).to_le_bytes();
        assert!(values_from_raw(&raw, FixedType::I16).is_err());
        // Odd byte counts don't divide into 16-bit values.
        assert!(values_from_raw(&[1, 2, 3], FixedType::I16).is_err());
    }
}
