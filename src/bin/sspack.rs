//! `sspack` — pack and unpack raw fixed-point tensors with ShapeShifter
//! compression (the `SSPK` file container).
//!
//! ```text
//! sspack pack   <in.raw> <out.sspk> [--bits N] [--signed] [--group N] [--scheme NAME|--delta]
//! sspack unpack <in.sspk> <out.raw>
//! sspack info   <in.sspk>
//! ```
//!
//! Raw files hold little-endian values: one byte per value for containers
//! of 8 bits or fewer, two bytes otherwise.

use std::env;
use std::fs;
use std::process::ExitCode;

use shapeshifter::container;
use shapeshifter::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sspack pack   <in.raw> <out.sspk> [--bits N] [--signed] [--group N] [--scheme NAME|--delta]\n  \
         sspack unpack <in.sspk> <out.raw>\n  sspack info   <in.sspk>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("pack") => pack(&args[1..]),
        Some("unpack") => unpack(&args[1..]),
        Some("info") => info(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sspack: {e}");
            ExitCode::FAILURE
        }
    }
}

fn scheme_by_name(name: &str) -> Result<SchemeId, Box<dyn std::error::Error>> {
    let registry = SchemeRegistry::global();
    for id in registry.ids() {
        if let Some(scheme) = registry.lookup(id) {
            if scheme.name().eq_ignore_ascii_case(name) {
                return Ok(id);
            }
        }
    }
    let known: Vec<&str> = registry
        .ids()
        .filter_map(|id| registry.lookup(id).map(|s| s.name()))
        .collect();
    Err(format!("unknown scheme {name:?} (registered: {})", known.join(", ")).into())
}

fn pack(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut positional: Vec<&str> = Vec::new();
    let mut bits: u8 = 16;
    let mut signed = false;
    let mut group: usize = 16;
    let mut scheme = SchemeId::SHAPESHIFTER;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bits" => bits = it.next().ok_or("--bits needs a value")?.parse()?,
            "--signed" => signed = true,
            "--group" => group = it.next().ok_or("--group needs a value")?.parse()?,
            "--delta" => scheme = SchemeId::DELTA,
            "--scheme" => {
                scheme = scheme_by_name(it.next().ok_or("--scheme needs a value")?)?;
            }
            other => positional.push(other),
        }
    }
    let [input, output] = positional[..] else {
        return Err("pack needs <in.raw> <out.sspk>".into());
    };
    let dtype = if signed {
        FixedType::signed(bits)?
    } else {
        FixedType::unsigned(bits)?
    };
    let raw = fs::read(input)?;
    let values = container::values_from_raw(&raw, dtype)?;
    let tensor = Tensor::from_vec(Shape::flat(values.len()), dtype, values)?;
    let packed = container::pack_with_scheme(&tensor, group, scheme)?;
    fs::write(output, &packed)?;
    println!(
        "packed {} values ({} bytes) into {} bytes ({:.1}% of raw)",
        tensor.len(),
        raw.len(),
        packed.len(),
        100.0 * packed.len() as f64 / raw.len().max(1) as f64
    );
    Ok(())
}

fn unpack(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [input, output] = args.iter().map(String::as_str).collect::<Vec<_>>()[..] else {
        return Err("unpack needs <in.sspk> <out.raw>".into());
    };
    let packed = fs::read(input)?;
    let tensor = container::unpack(&packed)?;
    fs::write(output, container::values_to_raw(&tensor))?;
    println!("unpacked {} values", tensor.len());
    Ok(())
}

fn info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [input] = args.iter().map(String::as_str).collect::<Vec<_>>()[..] else {
        return Err("info needs <in.sspk>".into());
    };
    let packed = fs::read(input)?;
    let meta = container::info(&packed)?;
    println!("version:     {}", meta.version);
    println!("container:   {}", meta.dtype);
    let scheme_name = SchemeRegistry::global()
        .lookup(meta.scheme)
        .map_or("<unregistered>", |s| s.name());
    println!(
        "scheme:      {} (wire id {})",
        scheme_name,
        meta.scheme.as_byte()
    );
    println!("group size:  {}", meta.group_size);
    println!("values:      {}", meta.len);
    println!("stream bits: {}", meta.stream_bits);
    if meta.index_bytes > 0 {
        println!(
            "chunk index: {} bytes ({:.4} bits/value)",
            meta.index_bytes,
            meta.index_overhead_bits_per_value()
        );
    }
    println!("ratio:       {:.1}% of raw", meta.ratio() * 100.0);
    Ok(())
}
