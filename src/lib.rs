#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # ShapeShifter
//!
//! A production-quality Rust reproduction of **"ShapeShifter: Enabling
//! Fine-Grain Data Width Adaptation in Deep Learning"** (Delmás Lascorz et
//! al., MICRO-52, 2019).
//!
//! ShapeShifter observes that deep-learning values are overwhelmingly
//! small in magnitude, so choosing one data width per network or per layer
//! is worst-case design. Instead it adapts the width **per group** of
//! 16–256 values — statically for weights, dynamically in hardware for
//! activations — and uses that to (1) losslessly compress off-chip
//! traffic to ~30% and (2) cut bit-serial accelerator cycles
//! proportionally.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`bitio`] — bit-granular stream I/O (the container substrate).
//! * [`tensor`] — fixed-point tensors and the width arithmetic of the
//!   paper's Figure 5c detector.
//! * [`models`] — a synthetic model zoo reproducing the published layer
//!   geometries and Table-1 per-layer value statistics of every network
//!   in the paper's Table 2.
//! * [`quant`] — TensorFlow-style, range-aware and outlier-aware
//!   quantizers plus per-layer profiling.
//! * [`core`] — the contribution: the per-group codec, the width
//!   detector, the off-chip compression schemes, the two-level
//!   decompressor model and the Section-2 analysis machinery.
//! * [`sim`] — DaDianNao*, Stripes, SStripes, Bit Fusion, SCNN and Loom
//!   simulators with DDR4 and energy models.
//!
//! # Quick start
//!
//! Compress a layer's worth of activations and verify losslessness:
//!
//! ```
//! use shapeshifter::core::ShapeShifterCodec;
//! use shapeshifter::models::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = zoo::alexnet().scaled_down(8);
//! let acts = net.input_tensor(1, 42);
//!
//! let codec = ShapeShifterCodec::new(16);
//! let encoded = codec.encode(&acts)?;
//! println!(
//!     "compressed {} values: {:.1}% of the 16b container",
//!     acts.len(),
//!     encoded.ratio() * 100.0
//! );
//! assert_eq!(codec.decode(&encoded)?, acts);
//! # Ok(())
//! # }
//! ```
//!
//! Run the paper's headline comparison (SStripes vs Stripes):
//!
//! ```
//! use shapeshifter::core::scheme::{ProfileScheme, ShapeShifterScheme};
//! use shapeshifter::models::zoo;
//! use shapeshifter::sim::accel::{SStripes, Stripes};
//! use shapeshifter::sim::sim::{simulate, SimConfig};
//!
//! let net = zoo::googlenet().scaled_down(8);
//! let cfg = SimConfig::default();
//! let stripes = simulate(&net, &Stripes::new(), &ProfileScheme, &cfg, 1);
//! let sstripes = simulate(
//!     &net,
//!     &SStripes::new(),
//!     &ShapeShifterScheme::default(),
//!     &cfg,
//!     1,
//! );
//! assert!(sstripes.speedup_over(&stripes) > 1.0);
//! ```

pub mod container;

pub use ss_core::{ContainerScheme, SchemeId, SchemeRegistry, SchemeStream, StreamFrame};

pub use ss_bitio as bitio;
pub use ss_core as core;
pub use ss_models as models;
pub use ss_pipeline as pipeline;
pub use ss_quant as quant;
pub use ss_sim as sim;
pub use ss_tensor as tensor;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use ss_core::scheme::{
        AdaBitsScheme, Base, CompressionScheme, DpRed, ProfileScheme, SchemeCtx,
        ShapeShifterScheme, ZeroRle,
    };
    pub use ss_core::{
        CodecConfig, CodecError, CodecSession, ContainerScheme, EncodedTensor, ExecPolicy,
        MeasureReport, SchemeId, SchemeRegistry, SchemeStream, ShapeShifterCodec, StreamFrame,
        WidthDetector,
    };
    pub use ss_models::{zoo, LayerStats, Network, ValueGen};
    pub use ss_pipeline::{BatchReport, Pipeline, PipelineConfig, PipelineError};
    pub use ss_quant::{QuantMethod, QuantizedNetwork, RangeAwareQuantizer, TfQuantizer};
    pub use ss_sim::accel::{BitFusion, DaDianNao, Loom, SStripes, Scnn, Stripes};
    pub use ss_sim::sim::{simulate, RunResult, SimConfig};
    pub use ss_sim::{BufferConfig, DramConfig, TensorSource};
    pub use ss_tensor::{FixedType, Shape, Signedness, Tensor};
}
