//! Cycle-approximate model of the two-level streaming decompressor
//! (paper §3, Figure 6d).
//!
//! A single first-level decompressor (L1D) walks the stream one group
//! header per cycle, computing each group's extent from its `(Z, P)`
//! header and handing payload lines to one of several second-level
//! decompressors (L2D), one per on-chip memory bank. Each L2D expands one
//! value per cycle. The model answers the design question the paper's
//! hardware answers by construction: *can the decoder sustain the DDR4
//! line rate?*

use crate::EncodedTensor;

/// Which stage limits decode throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeBound {
    /// The off-chip interface delivers lines slower than they decode.
    MemorySupply,
    /// Header processing (one group per cycle) limits throughput.
    L1Dispatch,
    /// Value expansion (one value per L2D per cycle) limits throughput.
    L2Expand,
}

/// Decode timing for one encoded tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeTiming {
    /// Cycles for the memory interface to deliver the stream.
    pub supply_cycles: u64,
    /// Cycles for the L1D to walk every group header.
    pub l1_cycles: u64,
    /// Cycles for the L2Ds to expand every value.
    pub l2_cycles: u64,
}

impl DecodeTiming {
    /// Total decode cycles: the stages are pipelined, so the slowest
    /// dominates.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.supply_cycles.max(self.l1_cycles).max(self.l2_cycles)
    }

    /// The limiting stage (ties resolve toward the earlier stage).
    #[must_use]
    pub fn bound(&self) -> DecodeBound {
        if self.supply_cycles >= self.l1_cycles && self.supply_cycles >= self.l2_cycles {
            DecodeBound::MemorySupply
        } else if self.l1_cycles >= self.l2_cycles {
            DecodeBound::L1Dispatch
        } else {
            DecodeBound::L2Expand
        }
    }

    /// `true` when decompression adds no cycles over raw streaming — the
    /// property the paper's design achieves ("ShapeShifter is completely
    /// transparent to the on-chip execution engine").
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.bound() == DecodeBound::MemorySupply
    }
}

/// The two-level decompressor configuration.
///
/// # Examples
///
/// ```
/// use ss_core::decompressor::DecompressorModel;
/// use ss_core::ShapeShifterCodec;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vals: Vec<i32> = (0..256).map(|i| 2048 + i).collect();
/// let t = Tensor::from_vec(Shape::flat(256), FixedType::U16, vals)?;
/// let enc = ShapeShifterCodec::new(16).encode(&t)?;
/// // A single-channel 64-bit interface with 16 L2Ds: the stream arrives
/// // slower than it decodes, so compression is transparent.
/// let model = DecompressorModel::new(64, 16);
/// assert!(model.timing(&enc).is_transparent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecompressorModel {
    line_bits: u64,
    num_l1d: u64,
    num_l2d: u64,
}

impl DecompressorModel {
    /// Creates a model with the given memory-interface width (bits
    /// delivered per core cycle), one L1 dispatcher, and `num_l2d`
    /// second-level decompressors (one per on-chip bank).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(line_bits: u64, num_l2d: u64) -> Self {
        assert!(line_bits > 0, "line width must be non-zero");
        assert!(num_l2d > 0, "need at least one L2D");
        Self {
            line_bits,
            num_l1d: 1,
            num_l2d,
        }
    }

    /// Sets the number of parallel L1 dispatchers. The paper places one
    /// decompressor hierarchy "per memory interface buffer": a dual-channel
    /// DDR4 system runs two independent streams, so headers dispatch at two
    /// groups per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `num_l1d == 0`.
    #[must_use]
    pub fn with_l1_count(mut self, num_l1d: u64) -> Self {
        assert!(num_l1d > 0, "need at least one L1D");
        self.num_l1d = num_l1d;
        self
    }

    /// Number of parallel L1 dispatchers.
    #[must_use]
    pub fn num_l1d(&self) -> u64 {
        self.num_l1d
    }

    /// Bits delivered per cycle by the memory interface.
    #[must_use]
    pub fn line_bits(&self) -> u64 {
        self.line_bits
    }

    /// Number of second-level decompressors.
    #[must_use]
    pub fn num_l2d(&self) -> u64 {
        self.num_l2d
    }

    /// Timing to stream-and-decode one encoded tensor.
    #[must_use]
    pub fn timing(&self, enc: &EncodedTensor) -> DecodeTiming {
        DecodeTiming {
            supply_cycles: enc.bit_len().div_ceil(self.line_bits),
            l1_cycles: (enc.groups() as u64).div_ceil(self.num_l1d),
            // Each L2D expands one value per cycle and a group stays on one
            // L2D; with groups spread round-robin the completion time is the
            // per-L2D value share, bounded below by one group's length.
            l2_cycles: (enc.len() as u64)
                .div_ceil(self.num_l2d)
                .max(enc.groups().min(1) as u64 * enc.group_size() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShapeShifterCodec;
    use ss_tensor::{FixedType, Shape, Tensor};

    fn encode(vals: Vec<i32>) -> EncodedTensor {
        let t = Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap();
        ShapeShifterCodec::new(16).encode(&t).unwrap()
    }

    #[test]
    fn wide_interface_makes_decode_transparent() {
        let enc = encode(vec![5; 1024]);
        let m = DecompressorModel::new(64, 16);
        let t = m.timing(&enc);
        // 1024 values in 64 groups; stream is tiny (width 3): supply is
        // still the long pole at 64 bits/cycle? Groups: 64 L1 cycles;
        // values/L2D: 64 cycles; supply: width-3 payload + metadata.
        assert_eq!(t.l1_cycles, 64);
        assert_eq!(t.l2_cycles, 64);
        assert!(t.cycles() >= 64);
    }

    #[test]
    fn narrow_interface_is_supply_bound() {
        let enc = encode((0..256).map(|i| i * 250).collect());
        let m = DecompressorModel::new(8, 64);
        let t = m.timing(&enc);
        assert_eq!(t.bound(), DecodeBound::MemorySupply);
        assert!(t.is_transparent());
    }

    #[test]
    fn single_l2d_is_expand_bound() {
        let enc = encode(vec![1; 256]);
        let m = DecompressorModel::new(1_000_000, 1);
        let t = m.timing(&enc);
        assert_eq!(t.bound(), DecodeBound::L2Expand);
        assert_eq!(t.l2_cycles, 256);
        assert!(!t.is_transparent());
    }

    #[test]
    fn paper_configuration_keeps_up_with_ddr4() {
        // The design point of §3: a dual-channel DDR4-3200 interface
        // (~410 bits per 1 GHz cycle), one L1D per channel, and 16 L2Ds
        // per channel (one per on-chip bank). Decoding must never be the
        // bottleneck, even for this barely-compressible uniform stream.
        let vals: Vec<i32> = (0..4096).map(|i| (i * 7919) % 4096).collect();
        let enc = encode(vals);
        let m = DecompressorModel::new(410, 32).with_l1_count(2);
        assert!(m.timing(&enc).is_transparent());
    }

    #[test]
    fn single_l1_throttles_highly_compressed_streams() {
        // A heavily compressed stream packs many groups per line: one
        // header per cycle cannot keep up — the motivation for one
        // decompressor hierarchy per memory channel.
        let enc = encode(vec![0; 4096]);
        let m = DecompressorModel::new(410, 64);
        assert_eq!(m.timing(&enc).bound(), DecodeBound::L1Dispatch);
        assert!(m.with_l1_count(8).timing(&enc).l1_cycles < m.timing(&enc).l1_cycles);
    }

    #[test]
    fn empty_stream() {
        let enc = encode(vec![]);
        let m = DecompressorModel::new(64, 4);
        assert_eq!(m.timing(&enc).cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one L2D")]
    fn zero_l2d_rejected() {
        let _ = DecompressorModel::new(64, 0);
    }
}
