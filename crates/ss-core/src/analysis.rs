//! The width-measurement machinery behind the paper's Section 2:
//! per-group width distributions (Figures 1–3), per-layer effective widths
//! (Table 1), and per-layer vs per-value comparisons (Figure 4).

use ss_tensor::{width, Signedness, Tensor};

/// Distribution of per-group widths for one tensor at one group size —
/// the data behind each curve of Figures 1–3.
///
/// # Examples
///
/// ```
/// use ss_core::analysis::WidthDistribution;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Tensor::from_vec(Shape::flat(8), FixedType::U8, vec![1, 1, 1, 1, 200, 1, 1, 1])?;
/// let d = WidthDistribution::of(&t, 4);
/// // First group needs 1 bit, second 8: half the groups fit in 1 bit.
/// assert!((d.cdf_at(1) - 0.5).abs() < 1e-12);
/// assert!((d.cdf_at(8) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthDistribution {
    /// `counts[w]` = number of groups whose width is exactly `w`.
    counts: Vec<u64>,
    group_size: usize,
    total_groups: u64,
}

impl WidthDistribution {
    /// Measures the per-group width distribution of a tensor.
    ///
    /// Each group's width comes from the u64-lane OR-fold
    /// (`width::group_width`) — the same word-parallel detector the
    /// codec's hot path uses — so sweeping the §2 figures over whole
    /// networks costs one streaming pass per granularity.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    #[must_use]
    pub fn of(tensor: &Tensor, group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be non-zero");
        let signedness = tensor.signedness();
        let max_w = match signedness {
            Signedness::Unsigned => tensor.dtype().bits(),
            Signedness::Signed => tensor.dtype().bits(),
        } as usize;
        let mut counts = vec![0u64; max_w + 1];
        let mut total = 0u64;
        for g in tensor.values().chunks(group_size) {
            let w = width::group_width(g, signedness) as usize;
            counts[w.min(max_w)] += 1;
            total += 1;
        }
        Self {
            counts,
            group_size,
            total_groups: total,
        }
    }

    /// The group size measured.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups measured.
    #[must_use]
    pub fn total_groups(&self) -> u64 {
        self.total_groups
    }

    /// Fraction of groups whose width is at most `w` (a point of the
    /// figure's cumulative curve).
    #[must_use]
    pub fn cdf_at(&self, w: u8) -> f64 {
        if self.total_groups == 0 {
            return 1.0;
        }
        let upto: u64 = self
            .counts
            .iter()
            .take(usize::from(w) + 1)
            .sum();
        upto as f64 / self.total_groups as f64
    }

    /// The whole cumulative curve, index = width.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|w| self.cdf_at(w as u8)).collect()
    }

    /// Mean group width — the effective width of Table 1 when groups are
    /// full-sized.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total_groups == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(w, &c)| w as u64 * c)
            .sum();
        sum as f64 / self.total_groups as f64
    }
}

/// Average per-value width: the "per value" bars of Figure 4, where each
/// value is charged only the bits it individually needs.
#[must_use]
pub fn per_value_width(tensor: &Tensor) -> f64 {
    if tensor.is_empty() {
        return 0.0;
    }
    let s = tensor.signedness();
    let sum: u64 = tensor
        .values()
        .iter()
        .map(|&v| u64::from(width::value_width(v, s)))
        .sum();
    sum as f64 / tensor.len() as f64
}

/// Work reduction from per-value width detection relative to the
/// profile-derived per-layer width (Figure 4's left axis): the fraction of
/// bit-serial compute cycles saved when each value is processed at its own
/// width instead of the layer's.
///
/// Returns 0.0 when the profiled width is zero (an all-zero layer).
#[must_use]
pub fn work_reduction(tensor: &Tensor, profiled_width: u8) -> f64 {
    if tensor.is_empty() || profiled_width == 0 {
        return 0.0;
    }
    1.0 - per_value_width(tensor) / f64::from(profiled_width)
}

/// One row of Table 1: per-layer effective widths at group size 16 plus
/// the overall reduction relative to the profile-derived widths (bit
/// volume weighted by each layer's value count).
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveWidthRow {
    /// Per-layer effective widths.
    pub widths: Vec<f64>,
    /// `1 - effective_bits / profiled_bits` over the whole network.
    pub reduction: f64,
}

/// Builds a Table-1 row from per-layer `(tensor, profiled_width)` pairs.
#[must_use]
pub fn effective_width_row(layers: &[(Tensor, u8)], group_size: usize) -> EffectiveWidthRow {
    let mut widths = Vec::with_capacity(layers.len());
    let mut eff_bits = 0.0;
    let mut prof_bits = 0.0;
    for (tensor, profiled) in layers {
        let eff = tensor.effective_width(group_size);
        widths.push(eff);
        eff_bits += eff * tensor.len() as f64;
        prof_bits += f64::from(*profiled) * tensor.len() as f64;
    }
    let reduction = if prof_bits > 0.0 {
        1.0 - eff_bits / prof_bits
    } else {
        0.0
    };
    EffectiveWidthRow { widths, reduction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap()
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let tensor = t((0..160).map(|i| (i * 97) % 1024).collect());
        let d = WidthDistribution::of(&tensor, 16);
        let cdf = d.cdf();
        for pair in cdf.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(d.total_groups(), 10);
    }

    #[test]
    fn smaller_groups_shift_the_cdf_left() {
        // Figure 1's observation: smaller groups need narrower widths.
        let vals: Vec<i32> = (0..4096)
            .map(|i| if i % 64 == 0 { 30_000 } else { i % 7 })
            .collect();
        let tensor = t(vals);
        let d16 = WidthDistribution::of(&tensor, 16);
        let d256 = WidthDistribution::of(&tensor, 256);
        assert!(d16.mean() < d256.mean());
        for w in 0..=16u8 {
            assert!(d16.cdf_at(w) + 1e-12 >= d256.cdf_at(w), "width {w}");
        }
    }

    #[test]
    fn mean_matches_tensor_effective_width() {
        let tensor = t((0..320).map(|i| (i * 31) % 900).collect());
        let d = WidthDistribution::of(&tensor, 16);
        assert!((d.mean() - tensor.effective_width(16)).abs() < 1e-12);
    }

    #[test]
    fn per_value_width_is_a_lower_bound() {
        let tensor = t((0..160).map(|i| (i * 11) % 500).collect());
        assert!(per_value_width(&tensor) <= tensor.effective_width(16));
        assert!(per_value_width(&tensor) <= f64::from(tensor.profiled_width()));
    }

    #[test]
    fn work_reduction_bounds() {
        let tensor = t(vec![1, 2, 3, 1000]);
        let r = work_reduction(&tensor, tensor.profiled_width());
        assert!((0.0..1.0).contains(&r), "reduction {r}");
        assert_eq!(work_reduction(&t(vec![]), 10), 0.0);
        assert_eq!(work_reduction(&tensor, 0), 0.0);
    }

    #[test]
    fn table1_row_reduction() {
        let layers = vec![(t(vec![1, 1, 1, 1]), 8u8), (t(vec![255; 4]), 8u8)];
        let row = effective_width_row(&layers, 4);
        assert_eq!(row.widths.len(), 2);
        // Layer 1 groups need 1 bit, layer 2 needs 8: eff = (1*4 + 8*4),
        // profiled = 8*8 -> reduction = 1 - 36/64.
        assert!((row.reduction - (1.0 - 36.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let tensor = t(vec![]);
        let d = WidthDistribution::of(&tensor, 16);
        assert_eq!(d.total_groups(), 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.cdf_at(3), 1.0);
    }
}
