//! The container-v2 chunk index: a small seekable header that restores
//! random access to an otherwise strictly sequential ShapeShifter stream.
//!
//! The paper's container packs groups back-to-back with no alignment, so a
//! group's start position is only known after every previous group has been
//! parsed — decode is sequential by stream design. The index fixes that at
//! a bounded metadata cost: the stream is cut every `chunk_groups` groups,
//! and for each chunk the index records the absolute bit offset of its
//! first group and the number of values it decodes to. Workers can then
//! seek straight to a chunk boundary and decode chunks concurrently,
//! reassembling the tensor bit-identically to the sequential parse
//! (DPRed's per-chunk containers and Dynamic Stripes' per-group streams
//! recover random access the same way).
//!
//! # Serialized layout
//!
//! The index serializes to a self-contained byte blob, LSB-first like the
//! stream itself:
//!
//! ```text
//! field               bits
//! entry count         32
//! chunk_groups        32
//! offset-delta width  7      bits per offset delta (0 iff one entry)
//! value-count width   7      bits per value count (>= 1)
//! offset deltas       (count - 1) x offset-delta width
//! value counts        count x value-count width
//! zero padding        to the next byte boundary
//! CRC-32 (IEEE)       32     over every preceding byte, little-endian
//! ```
//!
//! The first chunk always starts at bit 0, so only the gaps between
//! consecutive offsets travel (delta encoding keeps the common case — a
//! few dozen chunks over a multi-megabyte stream — to a handful of bytes).
//! The trailing CRC-32 guarantees that any single-bit corruption of the
//! index is detected as a typed [`CodecError`] before a worker ever seeks
//! to a bogus offset; burst errors up to 32 bits are likewise always
//! caught, and longer damage is caught with probability `1 - 2^-32`.

use ss_bitio::{BitReader, BitWriter};

use crate::CodecError;

/// One chunk's entry: where its first group starts and how many values it
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute bit offset of the chunk's first group in the stream.
    pub bit_offset: u64,
    /// Number of tensor values the chunk decodes to.
    pub values: u64,
}

/// The optional chunk index of a container-v2 stream.
///
/// Built by `ShapeShifterCodec::encode` when its index policy asks for
/// one; consumed by the parallel decode path. The index never changes the
/// payload stream — a v2 container's stream bytes are bit-identical to
/// the v1 encoding of the same tensor, the index travels alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndex {
    chunk_groups: u32,
    entries: Vec<ChunkEntry>,
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise — the
/// index is a few dozen bytes, so a lookup table would cost more cache
/// than it saves.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Smallest field width that can hold `v` (1 for zero, so a field is
/// never zero-width unless no field is stored at all).
fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Checked serialized-size arithmetic for an `n`-entry index with the
/// given field widths: header + entries, byte-padded, plus the CRC-32
/// trailer. Factored out of [`ChunkIndex::serialized_bits`] so the
/// overflow path is testable with an adversarial `n` that no real entry
/// vector could ever materialize.
fn serialized_bits_for(n: u64, odb: u32, vb: u32) -> Result<u64, CodecError> {
    n.saturating_sub(1)
        .checked_mul(u64::from(odb))
        .and_then(|deltas| n.checked_mul(u64::from(vb)).map(|vals| (deltas, vals)))
        .and_then(|(deltas, vals)| deltas.checked_add(vals))
        .and_then(|entries| entries.checked_add(32 + 32 + 7 + 7))
        .and_then(|body| body.checked_add(7))
        .map(|body| body / 8 * 8)
        .and_then(|padded| padded.checked_add(32))
        .ok_or(CodecError::CorruptIndex {
            reason: "serialized size overflows",
        })
}

impl ChunkIndex {
    /// Assembles an index from its parts. The codec calls this with the
    /// offsets it recorded while encoding; `entries` must be non-empty and
    /// start at bit offset 0.
    ///
    /// # Errors
    ///
    /// [`CodecError::CorruptIndex`] if `entries` is empty, does not start
    /// at offset 0, or `chunk_groups` is 0 — the structural invariants
    /// every index carries (the full stream-consistency checks live in
    /// [`ChunkIndex::validate`]).
    pub fn from_parts(chunk_groups: u32, entries: Vec<ChunkEntry>) -> Result<Self, CodecError> {
        if chunk_groups == 0 {
            return Err(CodecError::CorruptIndex {
                reason: "chunk size of zero groups",
            });
        }
        match entries.first() {
            None => {
                return Err(CodecError::CorruptIndex {
                    reason: "no entries",
                })
            }
            Some(first) if first.bit_offset != 0 => {
                return Err(CodecError::CorruptIndex {
                    reason: "first chunk does not start at bit 0",
                })
            }
            Some(_) => {}
        }
        Ok(Self {
            chunk_groups,
            entries,
        })
    }

    /// Groups per chunk (every chunk except possibly the last).
    #[must_use]
    pub fn chunk_groups(&self) -> usize {
        self.chunk_groups as usize
    }

    /// Number of chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.entries.len()
    }

    /// The per-chunk entries, in stream order.
    #[must_use]
    pub fn entries(&self) -> &[ChunkEntry] {
        &self.entries
    }

    /// Consumes the index, returning its entry buffer for reuse — the
    /// hook that lets `CodecSession::encode_into` rebuild a fresh index
    /// into the previous container's allocation instead of a new one.
    #[must_use]
    pub fn into_entries(self) -> Vec<ChunkEntry> {
        self.entries
    }

    /// Size of the serialized index in bits (header + entries + padding +
    /// checksum) — the metadata overhead a v2 container pays for random
    /// access.
    ///
    /// # Errors
    ///
    /// [`CodecError::CorruptIndex`] if the entry count is so large that
    /// the size arithmetic overflows `u64` — possible only for an index
    /// fabricated from a hostile header, never for one the codec built,
    /// but a wrong (wrapped) size here would mis-preallocate the
    /// serialization buffer, so the arithmetic is checked end to end.
    pub fn serialized_bits(&self) -> Result<u64, CodecError> {
        let (odb, vb) = self.field_widths();
        serialized_bits_for(self.entries.len() as u64, odb, vb)
    }

    /// The narrowest field widths that hold every offset delta and value
    /// count: `(offset_delta_bits, value_bits)`.
    fn field_widths(&self) -> (u32, u32) {
        let mut max_delta = 0u64;
        let mut prev = 0u64;
        let mut max_values = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                max_delta = max_delta.max(e.bit_offset.wrapping_sub(prev));
            }
            prev = e.bit_offset;
            max_values = max_values.max(e.values);
        }
        let odb = if self.entries.len() > 1 {
            bits_for(max_delta)
        } else {
            0
        };
        (odb, bits_for(max_values))
    }

    /// Serializes the index to its canonical byte blob (see the module
    /// docs for the layout). Deserializing the result with
    /// [`ChunkIndex::from_bytes`] reproduces the index exactly, and the
    /// encoding is canonical: equal indexes serialize to equal bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Stream`] on an internal bit-packing failure
    /// (unreachable for an index built by [`ChunkIndex::from_parts`]).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CodecError> {
        let (odb, vb) = self.field_widths();
        let mut w = BitWriter::with_capacity_bits(self.serialized_bits()?);
        w.write_bits(self.entries.len() as u64, 32)?;
        w.write_bits(u64::from(self.chunk_groups), 32)?;
        w.write_bits(u64::from(odb), 7)?;
        w.write_bits(u64::from(vb), 7)?;
        let mut prev = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                w.write_bits(e.bit_offset.wrapping_sub(prev), odb)?;
            }
            prev = e.bit_offset;
        }
        for e in &self.entries {
            w.write_bits(e.values, vb)?;
        }
        w.align_to(8)?;
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        Ok(bytes)
    }

    /// Deserializes an index from the blob [`ChunkIndex::to_bytes`]
    /// produced, verifying the checksum and every framing rule. Hostile
    /// input yields a typed error, never a panic and never an
    /// unbounded allocation.
    ///
    /// # Errors
    ///
    /// * [`CodecError::CorruptIndex`] if the checksum, framing or field
    ///   widths are inconsistent.
    /// * [`CodecError::Stream`] if a field read runs off the end.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let Some(body_len) = bytes.len().checked_sub(4) else {
            return Err(CodecError::CorruptIndex {
                reason: "shorter than its checksum",
            });
        };
        let (body, tail) = bytes.split_at(body_len);
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(tail);
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(CodecError::CorruptIndex {
                reason: "checksum mismatch",
            });
        }
        let mut r = BitReader::new(body);
        let count = r.read_bits(32)?;
        // ss-lint: allow(truncating-cast) -- field is 32 bits, fits u32
        let chunk_groups = r.read_bits(32)? as u32;
        // ss-lint: allow(truncating-cast) -- field is 7 bits, value <= 127
        let odb = r.read_bits(7)? as u32;
        // ss-lint: allow(truncating-cast) -- field is 7 bits, value <= 127
        let vb = r.read_bits(7)? as u32;
        if count == 0 {
            return Err(CodecError::CorruptIndex {
                reason: "no entries",
            });
        }
        if chunk_groups == 0 {
            return Err(CodecError::CorruptIndex {
                reason: "chunk size of zero groups",
            });
        }
        if odb > 64 || vb == 0 || vb > 64 {
            return Err(CodecError::CorruptIndex {
                reason: "entry field width outside 0..=64",
            });
        }
        if count > 1 && odb == 0 {
            return Err(CodecError::CorruptIndex {
                reason: "zero-width offset deltas for multiple entries",
            });
        }
        // Bound the allocation by what the blob can actually carry before
        // trusting the declared count.
        let needed = (count - 1)
            .checked_mul(u64::from(odb))
            .and_then(|d| d.checked_add(count.checked_mul(u64::from(vb))?))
            .ok_or(CodecError::CorruptIndex {
                reason: "entry count overflows the field arithmetic",
            })?;
        if needed > r.remaining_bits() {
            return Err(CodecError::CorruptIndex {
                reason: "declares more entries than the blob carries",
            });
        }
        // count * (odb + vb) <= remaining bits of a real blob, so count is
        // small enough to allocate for.
        // ss-lint: allow(truncating-cast) -- count bounded by blob bit length above
        let count = count as usize;
        let mut entries = Vec::with_capacity(count);
        let mut offset = 0u64;
        for i in 0..count {
            if i > 0 {
                let delta = r.read_bits(odb)?;
                offset = offset
                    .checked_add(delta)
                    .ok_or(CodecError::CorruptIndex {
                        reason: "offset delta overflows",
                    })?;
            }
            entries.push(ChunkEntry {
                bit_offset: offset,
                values: 0,
            });
        }
        for e in &mut entries {
            e.values = r.read_bits(vb)?;
        }
        if r.remaining_bits() >= 8 {
            return Err(CodecError::CorruptIndex {
                reason: "trailing bytes after the last entry",
            });
        }
        if r.remaining_bits() > 0 && r.read_bits(r.remaining_bits() as u32)? != 0 {
            return Err(CodecError::CorruptIndex {
                reason: "nonzero padding bits",
            });
        }
        Self::from_parts(chunk_groups, entries)
    }

    /// Cross-checks the index against the stream it claims to describe:
    /// the framing metadata (`group_size`, stream `bit_len`, element count
    /// `len`) must be consistent with every entry before any worker seeks
    /// into the stream.
    ///
    /// # Errors
    ///
    /// * [`CodecError::CorruptIndex`] for structural inconsistencies
    ///   (wrong chunk count, non-monotonic offsets, value-count drift).
    /// * [`CodecError::IndexOffsetOutOfBounds`] if an entry points past
    ///   the end of the stream.
    pub fn validate(
        &self,
        group_size: usize,
        bit_len: u64,
        len: usize,
    ) -> Result<(), CodecError> {
        let chunk_values = (self.chunk_groups as u64)
            .checked_mul(group_size as u64)
            .ok_or(CodecError::CorruptIndex {
                reason: "chunk size overflows",
            })?;
        if chunk_values == 0 {
            return Err(CodecError::CorruptIndex {
                reason: "chunk size of zero values",
            });
        }
        let expected_chunks = (len as u64).div_ceil(chunk_values);
        if self.entries.len() as u64 != expected_chunks {
            return Err(CodecError::CorruptIndex {
                reason: "chunk count disagrees with the element count",
            });
        }
        let mut prev_offset = 0u64;
        let mut total_values = 0u64;
        let last = self.entries.len() - 1;
        for (i, e) in self.entries.iter().enumerate() {
            if i == 0 {
                if e.bit_offset != 0 {
                    return Err(CodecError::CorruptIndex {
                        reason: "first chunk does not start at bit 0",
                    });
                }
            } else if e.bit_offset <= prev_offset {
                return Err(CodecError::CorruptIndex {
                    reason: "chunk offsets are not strictly increasing",
                });
            }
            if e.bit_offset >= bit_len {
                return Err(CodecError::IndexOffsetOutOfBounds {
                    chunk: i,
                    offset: e.bit_offset,
                    bit_len,
                });
            }
            let full = i < last;
            if full && e.values != chunk_values {
                return Err(CodecError::CorruptIndex {
                    reason: "interior chunk does not hold a full chunk of values",
                });
            }
            if !full && (e.values == 0 || e.values > chunk_values) {
                return Err(CodecError::CorruptIndex {
                    reason: "final chunk's value count outside 1..=chunk values",
                });
            }
            total_values = total_values
                .checked_add(e.values)
                .ok_or(CodecError::CorruptIndex {
                    reason: "value counts overflow",
                })?;
            prev_offset = e.bit_offset;
        }
        if total_values != len as u64 {
            return Err(CodecError::CorruptIndex {
                reason: "value counts disagree with the element count",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChunkIndex {
        ChunkIndex::from_parts(
            4,
            vec![
                ChunkEntry {
                    bit_offset: 0,
                    values: 64,
                },
                ChunkEntry {
                    bit_offset: 700,
                    values: 64,
                },
                ChunkEntry {
                    bit_offset: 1379,
                    values: 10,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrips_canonically() {
        let idx = sample();
        let bytes = idx.to_bytes().unwrap();
        assert_eq!(bytes.len() as u64 * 8, idx.serialized_bits().unwrap());
        let back = ChunkIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
        // Canonical: re-serializing reproduces the exact blob.
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn single_entry_roundtrips() {
        let idx = ChunkIndex::from_parts(
            1,
            vec![ChunkEntry {
                bit_offset: 0,
                values: 3,
            }],
        )
        .unwrap();
        let bytes = idx.to_bytes().unwrap();
        assert_eq!(ChunkIndex::from_bytes(&bytes).unwrap(), idx);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // CRC-32 detects all single-bit errors: flipping any bit of the
        // serialized index (including inside the checksum itself) must
        // surface as a typed error, never a silently different index.
        let bytes = sample().to_bytes().unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let r = ChunkIndex::from_bytes(&corrupt);
            assert!(r.is_err(), "flip of bit {bit} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes().unwrap();
        for keep in 0..bytes.len() {
            assert!(
                ChunkIndex::from_bytes(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn hostile_entry_count_is_bounded() {
        // A blob declaring 2^32 - 1 entries must be rejected before any
        // allocation is sized from the claim. Build one with a valid CRC.
        let mut w = BitWriter::new();
        w.write_bits(u64::from(u32::MAX), 32).unwrap();
        w.write_bits(1, 32).unwrap();
        w.write_bits(64, 7).unwrap();
        w.write_bits(64, 7).unwrap();
        w.align_to(8).unwrap();
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ChunkIndex::from_bytes(&bytes),
            Err(CodecError::CorruptIndex { .. })
        ));
    }

    #[test]
    fn validate_cross_checks_framing() {
        let idx = sample();
        // Consistent framing: group 16, 4 groups per chunk, 138 values,
        // stream long enough for the last offset.
        idx.validate(16, 1500, 138).unwrap();
        // Wrong element count.
        assert!(idx.validate(16, 1500, 139).is_err());
        // Stream too short for the last chunk's offset.
        assert!(matches!(
            idx.validate(16, 1300, 138),
            Err(CodecError::IndexOffsetOutOfBounds { chunk: 2, .. })
        ));
        // Wrong chunk count for the element count.
        assert!(idx.validate(16, 1500, 600).is_err());
        // Interior chunk must be full.
        let bad = ChunkIndex::from_parts(
            4,
            vec![
                ChunkEntry {
                    bit_offset: 0,
                    values: 63,
                },
                ChunkEntry {
                    bit_offset: 700,
                    values: 65,
                },
            ],
        )
        .unwrap();
        assert!(matches!(
            bad.validate(16, 1500, 128),
            Err(CodecError::CorruptIndex { .. })
        ));
    }

    #[test]
    fn from_parts_enforces_structure() {
        assert!(ChunkIndex::from_parts(0, vec![]).is_err());
        assert!(ChunkIndex::from_parts(4, vec![]).is_err());
        assert!(ChunkIndex::from_parts(
            4,
            vec![ChunkEntry {
                bit_offset: 5,
                values: 1
            }]
        )
        .is_err());
    }

    #[test]
    fn serialized_size_arithmetic_is_checked() {
        // An adversarial entry count from a hostile header must yield a
        // typed error, not a wrapped (wrong) preallocation size. 2^59
        // entries x 64-bit fields overflows u64 in both the delta and the
        // value-count term.
        assert!(matches!(
            serialized_bits_for(1 << 59, 64, 64),
            Err(CodecError::CorruptIndex { .. })
        ));
        // Value-count term alone fits; adding the fixed header overflows.
        assert!(matches!(
            serialized_bits_for(u64::MAX / 64, 0, 64),
            Err(CodecError::CorruptIndex { .. })
        ));
        // Sane sizes still agree with the serializer (see
        // `roundtrips_canonically` for the end-to-end identity).
        assert_eq!(serialized_bits_for(1, 0, 1).unwrap(), (78 + 1 + 7) / 8 * 8 + 32);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
