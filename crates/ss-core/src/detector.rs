//! The width-detection hardware unit of the paper's Figure 5c, modelled at
//! the signal level.
//!
//! The unit computes, for a group of values arriving in parallel:
//!
//! 1. one OR tree per bit position — signal `or[i]` is the OR of bit `i`
//!    across every value in the group;
//! 2. a leading-1 detector over the OR signals — the position of the most
//!    significant asserted signal, reported in `log2(P)` bits.
//!
//! Negative values are first converted to sign-magnitude "placing the sign
//! at the rightmost (least significant) place" (paper §3), so the detector
//! body only ever sees magnitudes (with the sign occupying bit 0).

use ss_tensor::{width, Signedness};

/// Signal-level model of the per-group width detector.
///
/// # Examples
///
/// ```
/// use ss_core::WidthDetector;
/// use ss_tensor::Signedness;
///
/// let det = WidthDetector::new(16, Signedness::Unsigned);
/// // Figure 5c's example: four activations whose highest set bit is
/// // position 11, so 12 bits suffice.
/// let w = det.detect(&[0x0801, 0x0102, 0x0403, 0x0204]);
/// assert_eq!(w, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WidthDetector {
    container_bits: u8,
    signedness: Signedness,
}

impl WidthDetector {
    /// Creates a detector for values stored in `container_bits`-bit
    /// containers of the given signedness.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= container_bits <= 16` (the paper's range).
    #[must_use]
    pub fn new(container_bits: u8, signedness: Signedness) -> Self {
        assert!(
            (1..=16).contains(&container_bits),
            "container width {container_bits} outside 1..=16"
        );
        Self {
            container_bits,
            signedness,
        }
    }

    /// Container width this detector was built for.
    #[must_use]
    pub fn container_bits(&self) -> u8 {
        self.container_bits
    }

    /// The per-bit-position OR signals for a group — the outputs of the OR
    /// trees in Figure 5c, after sign-magnitude conversion.
    ///
    /// Bit `i` of the result is 1 iff any group member has bit `i` set in
    /// its (sign-magnitude) encoding. Zeros contribute no sign bit: the
    /// codec elides them entirely, so they must not force a 1 into
    /// position 0 (the word-parallel kernel encodes zero as 0 in both
    /// signedness modes).
    ///
    /// Computed u64-at-a-time by [`width::group_or`] — two 32-bit lane
    /// encodings ORed per machine word, folded once at the end — rather
    /// than a per-value scalar loop; the scalar arithmetic definition is
    /// pinned against it in this module's tests and the
    /// `kernel_differential` suite.
    #[must_use]
    pub fn or_signals(&self, group: &[i32]) -> u32 {
        width::group_or(group, self.signedness)
    }

    /// The detected width: position of the leading 1 across the OR
    /// signals, plus one. Zero for an all-zero group.
    ///
    /// The hardware reports this in `log2(P)` bits via the "leading 1"
    /// detector; this model returns it as a plain integer and
    /// [`WidthDetector::detect_encoded`] gives the wire encoding.
    #[must_use]
    pub fn detect(&self, group: &[i32]) -> u8 {
        // ss-lint: allow(truncating-cast) -- 32 - leading_zeros of a u32 is in 0..=32
        (32 - self.or_signals(group).leading_zeros()) as u8
    }

    /// The width as it would appear on the detector's output wires:
    /// `width - 1` in `prefix_bits()` bits, with all-zero groups reported
    /// as width 1 (they carry no payload, so the field is don't-care; the
    /// codec pins it to the smallest encoding).
    #[must_use]
    pub fn detect_encoded(&self, group: &[i32]) -> u8 {
        self.detect(group).max(1) - 1
    }

    /// Number of bits of the width field (`log2(P)` in the paper: 4 for
    /// 16-bit containers, 3 for 8-bit).
    #[must_use]
    pub fn prefix_bits(&self) -> u8 {
        // Widths 1..=container are encoded as width-1 -> ceil(log2(P)).
        // ss-lint: allow(truncating-cast) -- leading_zeros of a u8 operand is in 0..=8
        (8 - (self.container_bits - 1).leading_zeros() as u8).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_arithmetic_definition() {
        let det = WidthDetector::new(16, Signedness::Signed);
        let groups: [&[i32]; 5] = [
            &[0, 0, 0],
            &[1, -1],
            &[100, -3, 0, 7],
            &[-32767],
            &[5, 5, 5, 5],
        ];
        for g in groups {
            assert_eq!(
                det.detect(g),
                width::group_width(g, Signedness::Signed),
                "group {g:?}"
            );
        }
    }

    #[test]
    fn or_signals_accumulate_bits() {
        let det = WidthDetector::new(8, Signedness::Unsigned);
        assert_eq!(det.or_signals(&[0b0001, 0b0100]), 0b0101);
        assert_eq!(det.or_signals(&[]), 0);
    }

    #[test]
    fn sign_occupies_bit_zero() {
        let det = WidthDetector::new(8, Signedness::Signed);
        // -2 encodes as (2 << 1) | 1 = 0b101.
        assert_eq!(det.or_signals(&[-2]), 0b101);
        // +2 encodes as 0b100: bit 0 clear.
        assert_eq!(det.or_signals(&[2]), 0b100);
    }

    #[test]
    fn zeros_do_not_assert_the_sign_wire() {
        let det = WidthDetector::new(8, Signedness::Signed);
        assert_eq!(det.or_signals(&[0, 0, 0]), 0);
        assert_eq!(det.detect(&[0, 0, 0]), 0);
    }

    #[test]
    fn prefix_bits_match_paper() {
        // 16b containers: 4-bit P field; 8b containers: 3-bit P field
        // (Figure 6's example uses 3 bits for 8b data).
        assert_eq!(WidthDetector::new(16, Signedness::Unsigned).prefix_bits(), 4);
        assert_eq!(WidthDetector::new(8, Signedness::Unsigned).prefix_bits(), 3);
        assert_eq!(WidthDetector::new(2, Signedness::Unsigned).prefix_bits(), 1);
    }

    #[test]
    fn encoded_width_is_width_minus_one() {
        let det = WidthDetector::new(16, Signedness::Unsigned);
        assert_eq!(det.detect_encoded(&[0x0FFF]), 11);
        assert_eq!(det.detect_encoded(&[0]), 0); // all-zero pins to width 1
        assert_eq!(det.detect_encoded(&[0xFFFF]), 15);
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn rejects_wide_containers() {
        let _ = WidthDetector::new(17, Signedness::Unsigned);
    }
}
