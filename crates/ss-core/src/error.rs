use std::error::Error;
use std::fmt;

use ss_bitio::BitIoError;
use ss_tensor::TensorError;

/// Errors produced by the ShapeShifter codec.
///
/// A decoder fed a corrupted or truncated stream must fail cleanly — the
/// memory container travels over DDR4 and a robust implementation surfaces
/// framing problems instead of producing garbage tensors.
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking change, so downstream `match`es keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The underlying bit stream ended early or was malformed.
    Stream(BitIoError),
    /// A decoded group declared a width wider than the tensor's container.
    WidthExceedsContainer {
        /// Group index within the stream.
        group: usize,
        /// The declared width.
        width: u8,
        /// The container width.
        container: u8,
    },
    /// A decoded value does not fit the tensor's container (corrupt
    /// payload or wrong container metadata).
    CorruptValue {
        /// Flat index of the offending value.
        index: usize,
        /// The decoded value.
        value: i32,
    },
    /// Tensor reconstruction failed (defensive; indicates a codec bug).
    Tensor(TensorError),
    /// A group size of zero was requested.
    InvalidGroupSize,
    /// The stream holds more bits than the declared element count can
    /// account for: decoding produced every value with bits left over.
    /// A well-formed container consumes its stream exactly, so trailing
    /// bits mean the framing metadata and the stream disagree.
    TrailingBits {
        /// Unconsumed bits left in the stream after the last value.
        remaining: u64,
    },
    /// The optional chunk index (container v2) is corrupt: its checksum,
    /// framing or internal consistency checks failed before any payload
    /// was decoded.
    CorruptIndex {
        /// Which consistency check failed.
        reason: &'static str,
    },
    /// A chunk-index entry's bit offset points outside the stream.
    IndexOffsetOutOfBounds {
        /// Index entry at fault.
        chunk: usize,
        /// The offending absolute bit offset.
        offset: u64,
        /// The stream length in bits.
        bit_len: u64,
    },
    /// An indexed chunk did not consume exactly the bit span its index
    /// entry claims — the index and the stream disagree.
    IndexChunkMismatch {
        /// Index entry at fault.
        chunk: usize,
        /// Bits the index allots to the chunk.
        expected_bits: u64,
        /// Bits the chunk's groups actually consumed.
        consumed_bits: u64,
    },
    /// A container names a scheme wire id that no registered
    /// [`crate::registry::ContainerScheme`] claims. Carries the offending
    /// byte so callers can report exactly what the stream asked for.
    UnknownScheme {
        /// The unrecognized wire id byte.
        id: u8,
    },
    /// Two schemes were registered under the same wire id. Wire ids are
    /// forever (they are written into container headers), so a collision
    /// is a configuration bug surfaced at registration, never at decode.
    DuplicateScheme {
        /// The contested wire id byte.
        id: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Stream(e) => write!(f, "bit stream error: {e}"),
            CodecError::WidthExceedsContainer {
                group,
                width,
                container,
            } => write!(
                f,
                "group {group} declares width {width} beyond the {container}-bit container"
            ),
            CodecError::CorruptValue { index, value } => {
                write!(f, "decoded value {value} at index {index} is corrupt")
            }
            CodecError::Tensor(e) => write!(f, "tensor reconstruction failed: {e}"),
            CodecError::InvalidGroupSize => write!(f, "group size must be non-zero"),
            CodecError::TrailingBits { remaining } => write!(
                f,
                "stream has {remaining} unconsumed bit(s) after the declared element count"
            ),
            CodecError::CorruptIndex { reason } => {
                write!(f, "corrupt chunk index: {reason}")
            }
            CodecError::IndexOffsetOutOfBounds {
                chunk,
                offset,
                bit_len,
            } => write!(
                f,
                "index entry {chunk} points at bit {offset} beyond the {bit_len}-bit stream"
            ),
            CodecError::IndexChunkMismatch {
                chunk,
                expected_bits,
                consumed_bits,
            } => write!(
                f,
                "indexed chunk {chunk} consumed {consumed_bits} bit(s) of its {expected_bits}-bit span"
            ),
            CodecError::UnknownScheme { id } => {
                write!(f, "unknown container scheme wire id {id}")
            }
            CodecError::DuplicateScheme { id } => {
                write!(f, "scheme wire id {id} registered twice")
            }
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Stream(e) => Some(e),
            CodecError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BitIoError> for CodecError {
    fn from(e: BitIoError) -> Self {
        CodecError::Stream(e)
    }
}

impl From<TensorError> for CodecError {
    fn from(e: TensorError) -> Self {
        CodecError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = CodecError::from(BitIoError::FieldTooWide { bits: 99 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("bit stream"));
    }

    #[test]
    fn scheme_errors_carry_the_id() {
        assert!(CodecError::UnknownScheme { id: 7 }.to_string().contains('7'));
        assert!(CodecError::DuplicateScheme { id: 1 }.to_string().contains('1'));
        assert!(CodecError::UnknownScheme { id: 7 }.source().is_none());
    }
}
