//! The container-scheme plug-in registry: an open set of storage schemes
//! behind one stable wire protocol.
//!
//! Containers used to name their codec through a closed enum, so every
//! new storage scheme had to be hand-threaded through pack/unpack, the
//! session, the chunk index, the pipeline and the shard-store
//! fingerprint. This module opens that set:
//!
//! * [`ContainerScheme`] — the trait a storage scheme implements: a
//!   stable one-byte wire id, encode-into/decode-into over the shared
//!   bit-stream machinery, optional chunk-index participation, and the
//!   shard-store fingerprint hook.
//! * [`SchemeRegistry`] — resolves wire ids to scheme objects at unpack
//!   time. Unregistered ids are a typed [`CodecError::UnknownScheme`],
//!   never a panic or a misdispatch; colliding registrations are a typed
//!   [`CodecError::DuplicateScheme`] at registration time.
//! * [`SchemeId`] — the wire id newtype shared by the `SSPK` header
//!   (byte 7), the `ss-store` record metadata and the SSRP serve config.
//!
//! # Wire-id stability
//!
//! A scheme's wire id is **forever**: it is written into container
//! headers and shard files, so re-using or re-numbering an id silently
//! misdispatches old data. The four built-in ids are pinned by
//! [`SchemeId::SHAPESHIFTER`] (0), [`SchemeId::DELTA`] (1),
//! [`SchemeId::DPRED`] (2) and [`SchemeId::ADABITS`] (3) and by the
//! golden-vector suite; third-party schemes should claim ids from 128 up.

use std::fmt;
use std::sync::{Arc, OnceLock};

use ss_bitio::BitWriter;
use ss_tensor::{FixedType, Signedness, Tensor};

use crate::codec::{IndexPolicy, ShapeShifterCodec};
use crate::index::{ChunkEntry, ChunkIndex};
use crate::scheme::{AdaBitsScheme, DeltaShapeShifter, DpRed};
use crate::{checked, CodecConfig, CodecError, ExecPolicy};

/// A container scheme's one-byte wire id.
///
/// Any byte is representable — validity is a property of the registry
/// that resolves it, not of the id itself, so headers parse permissively
/// and unregistered ids surface as [`CodecError::UnknownScheme`] exactly
/// where dispatch would happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SchemeId(u8);

impl SchemeId {
    /// The paper's per-group container (zero elision + width prefix).
    pub const SHAPESHIFTER: SchemeId = SchemeId(0);
    /// The Diffy-style delta extension.
    pub const DELTA: SchemeId = SchemeId(1);
    /// DPRed per-group precision storage (no zero elision).
    pub const DPRED: SchemeId = SchemeId(2);
    /// AdaBits MSB-first bit-plane storage for multi-width serving.
    pub const ADABITS: SchemeId = SchemeId(3);

    /// Wraps a raw wire byte.
    #[must_use]
    pub const fn new(id: u8) -> Self {
        Self(id)
    }

    /// The raw wire byte.
    #[must_use]
    pub const fn as_byte(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for SchemeId {
    fn from(b: u8) -> Self {
        Self(b)
    }
}

impl From<SchemeId> for u8 {
    fn from(id: SchemeId) -> Self {
        id.0
    }
}

/// The framing metadata a scheme needs to decode a raw stream — exactly
/// what an `SSPK` header or an `ss-store` record carries per tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFrame {
    /// Stream length in bits.
    pub bit_len: u64,
    /// Value container type.
    pub dtype: FixedType,
    /// Element count.
    pub len: usize,
    /// Grouping granularity the stream was encoded at.
    pub group_size: usize,
}

/// A pluggable container storage scheme.
///
/// Implementations are stateless (per-call parameters carry the group
/// size and framing), `Send + Sync`, and registered once under a stable
/// wire id. The contract, pinned by DESIGN.md §16 and the golden-vector
/// suite:
///
/// * **Wire-id stability** — [`ContainerScheme::wire_id`] never changes
///   for a shipped scheme; the byte is persisted in headers and shards.
/// * **Encode framing** — [`ContainerScheme::encode_into`] clears the
///   writer and leaves exactly the scheme's stream in it; a returned
///   [`ChunkIndex`] uses stream-relative bit offsets.
/// * **Decode framing** — [`ContainerScheme::decode_into`] clears `out`,
///   validates the frame against the stream, and fails with a typed
///   [`CodecError`] on any disagreement — never a panic, never a silently
///   wrong tensor.
/// * **Fingerprint** — [`ContainerScheme::fingerprint`] must be a pure
///   function of `(wire id, group size, dtype)`; shard stores compare it
///   across processes and hosts.
pub trait ContainerScheme: fmt::Debug + Send + Sync {
    /// The scheme's stable wire id (header byte 7 / shard record codec
    /// byte).
    fn wire_id(&self) -> SchemeId;

    /// Display name used in figures and diagnostics.
    fn name(&self) -> &'static str;

    /// Encodes `tensor` at `group_size` into `w` (cleared first),
    /// returning the chunk index when the scheme participates in indexing
    /// and `policy` asked for one.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidGroupSize`] for group sizes outside 1..=256;
    /// otherwise internal bit-packing failures (unreachable for valid
    /// tensors).
    fn encode_into(
        &self,
        tensor: &Tensor,
        group_size: usize,
        policy: IndexPolicy,
        w: &mut BitWriter,
    ) -> Result<Option<ChunkIndex>, CodecError>;

    /// Decodes a raw stream into `out` (cleared first). `index` is the
    /// container's chunk index when one travelled with the stream; a
    /// scheme that does not participate in indexing ignores it. `threads`
    /// caps decode fan-out (1 = sequential, the session path).
    ///
    /// # Errors
    ///
    /// Typed [`CodecError`] variants for truncation, framing
    /// disagreements, or corrupt payloads.
    fn decode_into(
        &self,
        stream: &[u8],
        frame: &StreamFrame,
        index: Option<&ChunkIndex>,
        threads: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError>;

    /// Whether the scheme emits and honors container-v2 chunk indexes.
    /// Schemes answering `false` always encode to a v1 (index-free)
    /// container, whatever the policy.
    fn supports_index(&self) -> bool {
        false
    }

    /// The shard-store configuration fingerprint for a record stored
    /// under this scheme: FNV-1a over the wire id, group size, container
    /// bits and signedness. The default is the historic `ss-store` recipe
    /// — override only for schemes whose decode depends on more
    /// configuration than `(id, group size, dtype)`.
    fn fingerprint(&self, group_size: u16, dtype: FixedType) -> u64 {
        fingerprint_bytes(self.wire_id(), group_size, dtype)
    }
}

/// The shared FNV-1a fingerprint recipe (also used by `ss-store` for
/// records whose scheme object is not at hand).
#[must_use]
pub fn fingerprint_bytes(id: SchemeId, group_size: u16, dtype: FixedType) -> u64 {
    let gs = group_size.to_le_bytes();
    let signed = match dtype.signedness() {
        Signedness::Signed => 1u8,
        Signedness::Unsigned => 0,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    // ss-lint: allow(panic-freedom) -- gs is u16::to_le_bytes(): exactly 2 bytes
    for b in [id.as_byte(), gs[0], gs[1], dtype.bits(), signed] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Resolves wire ids to registered schemes.
///
/// The blessed instance is [`SchemeRegistry::global`] (the four built-in
/// schemes); custom registries compose via [`SchemeRegistry::empty`] +
/// [`SchemeRegistry::register`] for tests and embedders that restrict or
/// extend the scheme set.
pub struct SchemeRegistry {
    slots: Vec<Option<Arc<dyn ContainerScheme>>>,
}

impl fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for s in self.slots.iter().flatten() {
            d.entry(&s.wire_id().as_byte(), &s.name());
        }
        d.finish()
    }
}

impl SchemeRegistry {
    /// A registry with no schemes.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            slots: vec![None; 256],
        }
    }

    /// A registry holding the four built-in schemes (ids 0–3).
    #[must_use]
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for scheme in [
            Arc::new(ShapeShifterContainer) as Arc<dyn ContainerScheme>,
            Arc::new(DeltaContainer),
            Arc::new(DpRedContainer),
            Arc::new(AdaBitsContainer),
        ] {
            // The built-in ids are the distinct constants 0–3, so the
            // duplicate check cannot fire; `global_registry_resolves_builtin_ids`
            // pins that.
            let id = scheme.wire_id();
            debug_assert!(r.lookup(id).is_none());
            // ss-lint: allow(panic-freedom) -- slots has 256 entries; a u8 index is always in bounds
            r.slots[usize::from(id.as_byte())] = Some(scheme);
        }
        r
    }

    /// The process-wide registry of built-in schemes.
    pub fn global() -> &'static SchemeRegistry {
        static GLOBAL: OnceLock<SchemeRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SchemeRegistry::builtin)
    }

    /// Registers a scheme under its wire id.
    ///
    /// # Errors
    ///
    /// [`CodecError::DuplicateScheme`] if the id is already claimed —
    /// wire ids are persisted in containers, so collisions are refused at
    /// registration rather than discovered at decode.
    pub fn register(&mut self, scheme: Arc<dyn ContainerScheme>) -> Result<(), CodecError> {
        let id = scheme.wire_id();
        let slot = &mut self.slots[usize::from(id.as_byte())];
        if slot.is_some() {
            return Err(CodecError::DuplicateScheme { id: id.as_byte() });
        }
        *slot = Some(scheme);
        Ok(())
    }

    /// Resolves a wire id, or `None` if nothing is registered under it.
    #[must_use]
    pub fn lookup(&self, id: SchemeId) -> Option<&dyn ContainerScheme> {
        // ss-lint: allow(panic-freedom) -- slots has 256 entries; a u8 index is always in bounds
        self.slots[usize::from(id.as_byte())].as_deref()
    }

    /// Resolves a wire id.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnknownScheme`] carrying the offending byte — the
    /// typed error every unpack path surfaces for unregistered ids.
    pub fn get(&self, id: SchemeId) -> Result<&dyn ContainerScheme, CodecError> {
        self.lookup(id)
            .ok_or(CodecError::UnknownScheme { id: id.as_byte() })
    }

    /// The registered wire ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = SchemeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| SchemeId::new(i as u8))
    }
}

/// Bounds-checks a group size the way every scheme constructor does, as a
/// typed error instead of a panic (wire input reaches this path).
fn checked_group_size(group_size: usize) -> Result<(), CodecError> {
    if (1..=256).contains(&group_size) {
        Ok(())
    } else {
        Err(CodecError::InvalidGroupSize)
    }
}

/// Wire id 0: the paper's `(Z, P, payload)` container, with full
/// chunk-index participation. Byte-identical to [`ShapeShifterCodec::encode`]
/// — both run the same sequential group loop and cut index chunks at the
/// same policy-determined boundaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShapeShifterContainer;

impl ContainerScheme for ShapeShifterContainer {
    fn wire_id(&self) -> SchemeId {
        SchemeId::SHAPESHIFTER
    }

    fn name(&self) -> &'static str {
        "ShapeShifter"
    }

    fn encode_into(
        &self,
        tensor: &Tensor,
        group_size: usize,
        policy: IndexPolicy,
        w: &mut BitWriter,
    ) -> Result<Option<ChunkIndex>, CodecError> {
        let codec = ShapeShifterCodec::from_config(
            CodecConfig::new()
                .with_group_size(group_size)
                .with_index_policy(policy)
                .with_exec(ExecPolicy::Sequential),
        )?;
        w.clear();
        let values = tensor.values();
        let dtype = tensor.dtype();
        let (groups, metadata_bits, payload_bits, index) =
            match codec.index_chunk_groups(values.len()) {
                Some(chunk_groups) => {
                    // Same chunk boundaries as the one-shot indexed encode:
                    // the index is a pure function of (config, len).
                    let chunk_values = chunk_groups * codec.group_size();
                    let mut entries = Vec::new();
                    let mut groups = 0usize;
                    let mut metadata_bits = 0u64;
                    let mut payload_bits = 0u64;
                    for chunk in values.chunks(chunk_values) {
                        entries.push(ChunkEntry {
                            bit_offset: w.bit_len(),
                            values: chunk.len() as u64,
                        });
                        let (g, m, p) = codec.encode_groups_into(chunk, dtype, w)?;
                        groups += g;
                        metadata_bits += m;
                        payload_bits += p;
                    }
                    // `index_chunk_groups` rejects chunk sizes beyond u32.
                    // ss-lint: allow(truncating-cast) -- bounded by index_chunk_groups' u32 guard
                    let index = ChunkIndex::from_parts(chunk_groups as u32, entries)?;
                    checked::index_bookkeeping(&index, codec.group_size(), w.bit_len(), values.len());
                    (groups, metadata_bits, payload_bits, Some(index))
                }
                None => {
                    let (g, m, p) = codec.encode_groups_into(values, dtype, w)?;
                    (g, m, p, None)
                }
            };
        // Counter parity with the one-shot encode (and the session).
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(ss_trace::Counter::EncodeCalls, 1);
            rec.add(ss_trace::Counter::EncodeValues, tensor.len() as u64);
            rec.add(ss_trace::Counter::EncodeBits, w.bit_len());
            rec.add(ss_trace::Counter::EncodeMetadataBits, metadata_bits);
            rec.add(ss_trace::Counter::EncodePayloadBits, payload_bits);
            rec.add(ss_trace::Counter::EncodeGroups, groups as u64);
        }
        Ok(index)
    }

    fn decode_into(
        &self,
        stream: &[u8],
        frame: &StreamFrame,
        index: Option<&ChunkIndex>,
        threads: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        let codec = ShapeShifterCodec::from_config(
            CodecConfig::new()
                .with_group_size(frame.group_size)
                .with_index_policy(IndexPolicy::None)
                .with_exec(ExecPolicy::Sequential),
        )?;
        match index {
            Some(idx) => {
                *out =
                    codec.decode_stream_indexed(stream, frame.bit_len, frame.dtype, frame.len, idx, threads)?;
                Ok(())
            }
            None => codec.decode_stream_into(stream, frame.bit_len, frame.dtype, frame.len, out),
        }
    }

    fn supports_index(&self) -> bool {
        true
    }
}

/// Wire id 1: the Diffy-style delta container (no index participation).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaContainer;

impl ContainerScheme for DeltaContainer {
    fn wire_id(&self) -> SchemeId {
        SchemeId::DELTA
    }

    fn name(&self) -> &'static str {
        "Delta-ShapeShifter"
    }

    fn encode_into(
        &self,
        tensor: &Tensor,
        group_size: usize,
        _policy: IndexPolicy,
        w: &mut BitWriter,
    ) -> Result<Option<ChunkIndex>, CodecError> {
        checked_group_size(group_size)?;
        w.clear();
        DeltaShapeShifter::new(group_size).encode_into(tensor, w)?;
        Ok(None)
    }

    fn decode_into(
        &self,
        stream: &[u8],
        frame: &StreamFrame,
        _index: Option<&ChunkIndex>,
        _threads: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        checked_group_size(frame.group_size)?;
        DeltaShapeShifter::new(frame.group_size).decode_into(
            stream,
            frame.bit_len,
            frame.dtype,
            frame.len,
            out,
        )
    }
}

/// Wire id 2: DPRed per-group precision storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpRedContainer;

impl ContainerScheme for DpRedContainer {
    fn wire_id(&self) -> SchemeId {
        SchemeId::DPRED
    }

    fn name(&self) -> &'static str {
        "DPRed"
    }

    fn encode_into(
        &self,
        tensor: &Tensor,
        group_size: usize,
        _policy: IndexPolicy,
        w: &mut BitWriter,
    ) -> Result<Option<ChunkIndex>, CodecError> {
        checked_group_size(group_size)?;
        w.clear();
        DpRed::new(group_size).encode_into(tensor, w)?;
        Ok(None)
    }

    fn decode_into(
        &self,
        stream: &[u8],
        frame: &StreamFrame,
        _index: Option<&ChunkIndex>,
        _threads: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        checked_group_size(frame.group_size)?;
        DpRed::new(frame.group_size).decode_into(stream, frame.bit_len, frame.dtype, frame.len, out)
    }
}

/// Wire id 3: AdaBits MSB-first bit-plane storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaBitsContainer;

impl ContainerScheme for AdaBitsContainer {
    fn wire_id(&self) -> SchemeId {
        SchemeId::ADABITS
    }

    fn name(&self) -> &'static str {
        "AdaBits"
    }

    fn encode_into(
        &self,
        tensor: &Tensor,
        group_size: usize,
        _policy: IndexPolicy,
        w: &mut BitWriter,
    ) -> Result<Option<ChunkIndex>, CodecError> {
        checked_group_size(group_size)?;
        w.clear();
        AdaBitsScheme::new(group_size).encode_into(tensor, w)?;
        Ok(None)
    }

    fn decode_into(
        &self,
        stream: &[u8],
        frame: &StreamFrame,
        _index: Option<&ChunkIndex>,
        _threads: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        checked_group_size(frame.group_size)?;
        AdaBitsScheme::new(frame.group_size).decode_into(
            stream,
            frame.bit_len,
            frame.dtype,
            frame.len,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::Shape;

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn global_registry_resolves_builtin_ids() {
        let r = SchemeRegistry::global();
        assert_eq!(r.get(SchemeId::SHAPESHIFTER).unwrap().name(), "ShapeShifter");
        assert_eq!(r.get(SchemeId::DELTA).unwrap().name(), "Delta-ShapeShifter");
        assert_eq!(r.get(SchemeId::DPRED).unwrap().name(), "DPRed");
        assert_eq!(r.get(SchemeId::ADABITS).unwrap().name(), "AdaBits");
        assert_eq!(r.ids().count(), 4);
    }

    #[test]
    fn unknown_id_is_typed() {
        let r = SchemeRegistry::global();
        for id in 4..=255u8 {
            match r.get(SchemeId::new(id)) {
                Err(CodecError::UnknownScheme { id: got }) => assert_eq!(got, id),
                other => panic!("id {id}: expected UnknownScheme, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_registration_is_typed() {
        let mut r = SchemeRegistry::empty();
        r.register(Arc::new(DeltaContainer)).unwrap();
        assert_eq!(
            r.register(Arc::new(DeltaContainer)).unwrap_err(),
            CodecError::DuplicateScheme { id: 1 }
        );
    }

    #[test]
    fn registry_shapeshifter_matches_one_shot_codec() {
        let vals: Vec<i32> = (0..300).map(|i| (i * 37) % 2000 - 1000).collect();
        let tensor = t(vals);
        for policy in [IndexPolicy::None, IndexPolicy::EveryGroups(3), IndexPolicy::Auto] {
            let one_shot = ShapeShifterCodec::new(16)
                .with_index_policy(policy)
                .encode(&tensor)
                .unwrap();
            let scheme = ShapeShifterContainer;
            let mut w = BitWriter::new();
            let index = scheme.encode_into(&tensor, 16, policy, &mut w).unwrap();
            assert_eq!(w.as_bytes(), one_shot.bytes());
            assert_eq!(w.bit_len(), one_shot.bit_len());
            assert_eq!(index.as_ref(), one_shot.index());
        }
    }

    #[test]
    fn registry_delta_matches_one_shot_scheme() {
        let tensor = t(vec![1000, 1002, 1001, 999, 0, 0, 998, 30_000]);
        let (bytes, bits) = DeltaShapeShifter::new(4).encode(&tensor).unwrap();
        let mut w = BitWriter::new();
        let index = DeltaContainer
            .encode_into(&tensor, 4, IndexPolicy::Auto, &mut w)
            .unwrap();
        assert!(index.is_none());
        assert_eq!(w.as_bytes(), &bytes[..]);
        assert_eq!(w.bit_len(), bits);
    }

    #[test]
    fn every_builtin_roundtrips_through_the_trait() {
        let vals: Vec<i32> = (0..200)
            .map(|i| if i % 5 == 0 { 0 } else { (i * 91) % 3000 - 1500 })
            .collect();
        let tensor = t(vals);
        for id in SchemeRegistry::global().ids() {
            let scheme = SchemeRegistry::global().get(id).unwrap();
            let mut w = BitWriter::new();
            let index = scheme
                .encode_into(&tensor, 16, IndexPolicy::None, &mut w)
                .unwrap();
            let frame = StreamFrame {
                bit_len: w.bit_len(),
                dtype: tensor.dtype(),
                len: tensor.len(),
                group_size: 16,
            };
            let mut out = Vec::new();
            scheme
                .decode_into(w.as_bytes(), &frame, index.as_ref(), 1, &mut out)
                .unwrap();
            assert_eq!(out, tensor.values(), "scheme {}", scheme.name());
        }
    }

    #[test]
    fn invalid_group_size_is_typed_not_a_panic() {
        let tensor = t(vec![1, 2, 3]);
        for id in SchemeRegistry::global().ids() {
            let scheme = SchemeRegistry::global().get(id).unwrap();
            let mut w = BitWriter::new();
            for gs in [0usize, 257, 1 << 20] {
                assert_eq!(
                    scheme
                        .encode_into(&tensor, gs, IndexPolicy::None, &mut w)
                        .unwrap_err(),
                    CodecError::InvalidGroupSize,
                    "scheme {} gs {gs}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn fingerprints_differ_across_schemes_and_configs() {
        let a = fingerprint_bytes(SchemeId::SHAPESHIFTER, 16, FixedType::I16);
        let b = fingerprint_bytes(SchemeId::DPRED, 16, FixedType::I16);
        let c = fingerprint_bytes(SchemeId::SHAPESHIFTER, 64, FixedType::I16);
        let d = fingerprint_bytes(SchemeId::SHAPESHIFTER, 16, FixedType::U16);
        assert!(a != b && a != c && a != d && b != c);
        // The trait default is the shared recipe.
        assert_eq!(
            ShapeShifterContainer.fingerprint(16, FixedType::I16),
            a
        );
    }
}
