//! Codec configuration: the [`CodecConfig`] builder, the [`ExecPolicy`]
//! execution knob and the [`MeasureReport`] accounting struct.
//!
//! Before this module existed the public API had forked into ad-hoc
//! `*_with_threads` variants — one extra method per operation, each taking
//! a raw `usize` whose meaning ("exactly this many workers, no
//! small-tensor heuristic") lived only in doc comments. [`ExecPolicy`]
//! collapses that fork into one typed parameter carried by the codec
//! itself, and [`CodecConfig`] is the single builder through which every
//! knob (group size, chunk-index policy, execution policy) travels —
//! including into `CodecSession` and the `ss-pipeline` batch engine.

use crate::codec::IndexPolicy;
use crate::{par, CodecError};

/// How a codec operation maps onto worker threads.
///
/// The policy is orthogonal to the output: every policy produces
/// **bit-identical** streams and accounting (property-tested), it only
/// changes how the work is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPolicy {
    /// Single-threaded, always. This is the oracle path the parallel
    /// implementations are differential-tested against, and the right
    /// choice inside an outer worker pool (e.g. `ss-pipeline`, which runs
    /// one sequential session per worker).
    Sequential,
    /// Exactly this many workers, regardless of tensor size (0 is treated
    /// as 1). No small-tensor heuristic — what benchmarks and
    /// bit-identity tests need.
    Threads(usize),
    /// Sequential below the parallel-worthwhile threshold, otherwise one
    /// worker per available core (honoring the `SS_THREADS` environment
    /// knob). The right default for one-shot calls.
    #[default]
    Auto,
}

impl ExecPolicy {
    /// Resolves the policy to a concrete worker count for a tensor of
    /// `len` values. `parallel_min` is the tensor size below which `Auto`
    /// stays sequential.
    #[must_use]
    pub(crate) fn threads_for(self, len: usize, parallel_min: usize) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(n) => n.max(1),
            ExecPolicy::Auto => {
                if len < parallel_min {
                    1
                } else {
                    par::thread_count()
                }
            }
        }
    }
}

/// Builder for a [`crate::ShapeShifterCodec`] (and, through it, for
/// `CodecSession` and the `ss-pipeline` engine).
///
/// Marked `#[non_exhaustive]` so future knobs can be added without a
/// breaking change; construct it with [`CodecConfig::new`] /
/// [`CodecConfig::default`] and the `with_*` methods.
///
/// # Examples
///
/// ```
/// use ss_core::{CodecConfig, ExecPolicy, IndexPolicy};
///
/// let codec = CodecConfig::new()
///     .with_group_size(16)
///     .with_index_policy(IndexPolicy::Auto)
///     .with_exec(ExecPolicy::Sequential)
///     .build()
///     .expect("group size is valid");
/// assert_eq!(codec.group_size(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct CodecConfig {
    /// Values per group (the paper's default is 16).
    pub group_size: usize,
    /// When `encode` writes a container-v2 chunk index.
    pub index_policy: IndexPolicy,
    /// How operations map onto worker threads.
    pub exec: ExecPolicy,
}

impl Default for CodecConfig {
    /// The paper's defaults: group size 16, automatic chunk indexing,
    /// automatic execution policy.
    fn default() -> Self {
        Self {
            group_size: 16,
            index_policy: IndexPolicy::default(),
            exec: ExecPolicy::default(),
        }
    }
}

impl CodecConfig {
    /// The default configuration (group size 16, `Auto` index and exec
    /// policies).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the group size. Validity (1..=256) is checked by
    /// [`CodecConfig::build`], not here, so builders can be chained
    /// without intermediate `Result`s.
    #[must_use]
    pub fn with_group_size(mut self, group_size: usize) -> Self {
        self.group_size = group_size;
        self
    }

    /// Sets the chunk-index policy.
    #[must_use]
    pub fn with_index_policy(mut self, policy: IndexPolicy) -> Self {
        self.index_policy = policy;
        self
    }

    /// Sets the execution policy.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Builds the codec, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidGroupSize`] if `group_size` is 0 or exceeds
    /// 256 (the paper's largest evaluated group).
    pub fn build(self) -> Result<crate::ShapeShifterCodec, CodecError> {
        crate::ShapeShifterCodec::from_config(self)
    }
}

/// The exact bit accounting of a tensor under the ShapeShifter container,
/// as computed by `ShapeShifterCodec::measure` *without* materializing the
/// stream.
///
/// Replaces the opaque `(u64, u64, usize)` tuple the old API returned —
/// call sites read `report.metadata_bits` instead of remembering which
/// tuple slot held what. The accounting identity
/// `total_bits() == metadata_bits + payload_bits` matches
/// `EncodedTensor::bit_len()` bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeasureReport {
    /// Bits spent on `Z` vectors and `P` prefixes.
    pub metadata_bits: u64,
    /// Bits spent on non-zero value payloads.
    pub payload_bits: u64,
    /// Number of groups the tensor packs into.
    pub groups: usize,
}

impl MeasureReport {
    /// Total stream bits: metadata plus payload, equal to the encoded
    /// stream's `bit_len()`.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.metadata_bits + self.payload_bits
    }

    /// The old tuple shape `(metadata_bits, payload_bits, groups)`.
    #[deprecated(
        since = "0.2.0",
        note = "read the named `MeasureReport` fields instead"
    )]
    #[must_use]
    pub fn into_tuple(self) -> (u64, u64, usize) {
        (self.metadata_bits, self.payload_bits, self.groups)
    }
}

impl From<MeasureReport> for (u64, u64, usize) {
    fn from(r: MeasureReport) -> Self {
        (r.metadata_bits, r.payload_bits, r.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_knob() {
        let cfg = CodecConfig::new()
            .with_group_size(64)
            .with_index_policy(IndexPolicy::EveryGroups(4))
            .with_exec(ExecPolicy::Threads(3));
        assert_eq!(cfg.group_size, 64);
        assert_eq!(cfg.index_policy, IndexPolicy::EveryGroups(4));
        assert_eq!(cfg.exec, ExecPolicy::Threads(3));
        let codec = cfg.build().unwrap();
        assert_eq!(codec.group_size(), 64);
        assert_eq!(codec.index_policy(), IndexPolicy::EveryGroups(4));
        assert_eq!(codec.exec_policy(), ExecPolicy::Threads(3));
    }

    #[test]
    fn build_rejects_invalid_group_sizes() {
        for bad in [0usize, 257, 1 << 20] {
            assert_eq!(
                CodecConfig::new().with_group_size(bad).build().unwrap_err(),
                CodecError::InvalidGroupSize,
                "group size {bad}"
            );
        }
    }

    #[test]
    fn exec_policy_resolution() {
        assert_eq!(ExecPolicy::Sequential.threads_for(1 << 30, 1), 1);
        assert_eq!(ExecPolicy::Threads(0).threads_for(10, 1), 1);
        assert_eq!(ExecPolicy::Threads(7).threads_for(10, 1 << 20), 7);
        assert_eq!(ExecPolicy::Auto.threads_for(10, 1 << 16), 1);
        assert!(ExecPolicy::Auto.threads_for(1 << 20, 1 << 16) >= 1);
    }

    #[test]
    fn measure_report_accounting() {
        let r = MeasureReport {
            metadata_bits: 20,
            payload_bits: 39,
            groups: 1,
        };
        assert_eq!(r.total_bits(), 59);
        let (m, p, g): (u64, u64, usize) = r.into();
        assert_eq!((m, p, g), (20, 39, 1));
        #[allow(deprecated)]
        let t = r.into_tuple();
        assert_eq!(t, (20, 39, 1));
    }
}
