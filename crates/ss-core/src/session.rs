//! [`CodecSession`]: a reusable encode/decode context that amortizes
//! every buffer across calls.
//!
//! The one-shot [`crate::ShapeShifterCodec`] API allocates a fresh
//! [`BitWriter`] per encode and a fresh value vector per decode. That is
//! the right shape for single tensors, but a batch engine pushing
//! thousands of tensors through one worker pays the allocator on every
//! call. A `CodecSession` owns the scratch instead — the bit writer, the
//! decode value buffer and the chunk-index entry buffer — and the
//! `*_into` methods recycle the *output* containers too, so a
//! steady-state loop over same-sized tensors performs **zero heap
//! allocations per tensor** (asserted by a counting-allocator test in
//! `tests/session_alloc.rs`).
//!
//! Sessions are scheduling-transparent: a session encodes and decodes on
//! the calling thread (the natural fit for `ss-pipeline`, which runs one
//! session per worker), and its output is **bit-identical** to the
//! one-shot API under every [`crate::ExecPolicy`] — both call into the
//! same group loop ([`ShapeShifterCodec::encode_groups_into`] /
//! `decode_stream_into`) and cut index chunks at the same
//! policy-determined boundaries, so identity holds by construction and is
//! re-checked by the property suite in `tests/session_reuse.rs` and the
//! golden-vector corpus. That shared group loop is the word-parallel
//! [`crate::kernels`] path — fused zero-bitmap/width scans on encode,
//! bulk field extraction on decode — so sessions get the kernel speedups
//! without any session-specific code.

use ss_bitio::BitWriter;
use ss_tensor::{FixedType, Tensor};

use crate::codec::{EncodedTensor, IndexPolicy, ShapeShifterCodec};
use crate::index::{ChunkEntry, ChunkIndex};
use crate::registry::{ContainerScheme, SchemeId, StreamFrame};
use crate::{checked, CodecConfig, CodecError, ExecPolicy};

/// A scheme-encoded stream plus its framing — the registry-era analogue
/// of [`EncodedTensor`], produced by [`CodecSession::encode_with_scheme`]
/// and consumed by [`CodecSession::decode_with_scheme`]. Carries the wire
/// id so the stream is self-describing for store and serve layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeStream {
    /// The scheme that produced the stream (its stable wire id).
    pub scheme: SchemeId,
    /// The stream bytes.
    pub bytes: Vec<u8>,
    /// Exact stream length in bits.
    pub bit_len: u64,
    /// Value container type.
    pub dtype: FixedType,
    /// Element count.
    pub len: usize,
    /// Grouping granularity the stream was encoded at.
    pub group_size: usize,
    /// The chunk index, when the scheme participates in indexing and the
    /// policy produced one.
    pub index: Option<ChunkIndex>,
}

impl Default for SchemeStream {
    fn default() -> Self {
        Self {
            scheme: SchemeId::SHAPESHIFTER,
            bytes: Vec::new(),
            bit_len: 0,
            dtype: FixedType::U8,
            len: 0,
            group_size: 16,
            index: None,
        }
    }
}

impl SchemeStream {
    /// The decode framing for this stream.
    #[must_use]
    pub fn frame(&self) -> StreamFrame {
        StreamFrame {
            bit_len: self.bit_len,
            dtype: self.dtype,
            len: self.len,
            group_size: self.group_size,
        }
    }
}

/// A reusable encode/decode context: one codec configuration plus the
/// scratch buffers that the one-shot API would otherwise allocate per
/// call. See the [module docs](self) for the reuse contract.
///
/// # Examples
///
/// ```
/// use ss_core::prelude::*;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), CodecError> {
/// let mut session = CodecSession::new(CodecConfig::new())?;
/// let mut encoded = EncodedTensor::default();
/// let mut decoded = Tensor::zeros(Shape::flat(0), FixedType::I16);
/// for round in 0..3 {
///     let t = Tensor::from_vec(
///         Shape::flat(4),
///         FixedType::I16,
///         vec![round, 0, -7, 300],
///     )?;
///     session.encode_into(&t, &mut encoded)?; // buffers reused each round
///     session.decode_into(&encoded, &mut decoded)?;
///     assert_eq!(decoded, t);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CodecSession {
    codec: ShapeShifterCodec,
    /// Reusable encode stream buffer (cleared, never shrunk, per call).
    w: BitWriter,
    /// Reusable decode value buffer; swapped with the output tensor's
    /// storage each `decode_into`, so both grow once to the high-water
    /// mark and then cycle.
    values: Vec<i32>,
    /// Reusable chunk-index entry buffer for encodes whose policy writes
    /// an index. Reclaimed from the output container's previous index.
    entries: Vec<ChunkEntry>,
}

impl CodecSession {
    /// Creates a session from a configuration.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidGroupSize`] if the config's group size is 0 or
    /// exceeds 256.
    pub fn new(config: CodecConfig) -> Result<Self, CodecError> {
        Ok(Self {
            codec: ShapeShifterCodec::from_config(config)?,
            w: BitWriter::new(),
            values: Vec::new(),
            entries: Vec::new(),
        })
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> CodecConfig {
        self.codec.config()
    }

    /// The codec this session wraps (same configuration, one-shot API).
    #[must_use]
    pub fn codec(&self) -> &ShapeShifterCodec {
        &self.codec
    }

    /// Encodes `tensor` into an existing container, reusing both the
    /// session's scratch and the container's buffers.
    ///
    /// `out` is fully overwritten; its previous contents only determine
    /// how much allocated capacity the call starts with. The resulting
    /// container — stream bytes, accounting and chunk index alike — is
    /// **bit-identical** to `self.codec().encode(tensor)`.
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::encode`].
    pub fn encode_into(
        &mut self,
        tensor: &Tensor,
        out: &mut EncodedTensor,
    ) -> Result<(), CodecError> {
        let values = tensor.values();
        let dtype = tensor.dtype();
        self.w.clear();
        // Reclaim the output container's previous index entries as this
        // call's build buffer (keep whichever buffer is larger).
        if let Some(prev) = out.index.take() {
            let prev = prev.into_entries();
            if prev.capacity() > self.entries.capacity() {
                self.entries = prev;
            }
        }
        self.entries.clear();

        let (groups, metadata_bits, payload_bits, index) =
            match self.codec.index_chunk_groups(values.len()) {
                Some(chunk_groups) => {
                    // Same chunk boundaries as the one-shot indexed encode:
                    // the index is a pure function of (config, len), never
                    // of the session or its history.
                    let chunk_values = chunk_groups * self.codec.group_size();
                    let mut entries = std::mem::take(&mut self.entries);
                    let mut groups = 0usize;
                    let mut metadata_bits = 0u64;
                    let mut payload_bits = 0u64;
                    for chunk in values.chunks(chunk_values) {
                        entries.push(ChunkEntry {
                            bit_offset: self.w.bit_len(),
                            values: chunk.len() as u64,
                        });
                        let (g, m, p) = self.codec.encode_groups_into(chunk, dtype, &mut self.w)?;
                        groups += g;
                        metadata_bits += m;
                        payload_bits += p;
                    }
                    // `index_chunk_groups` rejects chunk sizes beyond u32,
                    // so the cast is lossless.
                    // ss-lint: allow(truncating-cast) -- bounded by index_chunk_groups' u32 guard
                    let index = ChunkIndex::from_parts(chunk_groups as u32, entries)?;
                    checked::index_bookkeeping(
                        &index,
                        self.codec.group_size(),
                        self.w.bit_len(),
                        values.len(),
                    );
                    (groups, metadata_bits, payload_bits, Some(index))
                }
                None => {
                    let (g, m, p) = self.codec.encode_groups_into(values, dtype, &mut self.w)?;
                    (g, m, p, None)
                }
            };

        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(ss_trace::Counter::EncodeCalls, 1);
            rec.add(ss_trace::Counter::EncodeValues, tensor.len() as u64);
            rec.add(ss_trace::Counter::EncodeBits, self.w.bit_len());
            rec.add(ss_trace::Counter::EncodeMetadataBits, metadata_bits);
            rec.add(ss_trace::Counter::EncodePayloadBits, payload_bits);
            rec.add(ss_trace::Counter::EncodeGroups, groups as u64);
        }

        out.bytes.clear();
        out.bytes.extend_from_slice(self.w.as_bytes());
        out.bit_len = self.w.bit_len();
        out.len = tensor.len();
        out.dtype = dtype;
        out.group_size = self.codec.group_size();
        out.groups = groups;
        out.metadata_bits = metadata_bits;
        out.payload_bits = payload_bits;
        out.index = index;
        Ok(())
    }

    /// Decodes a container into an existing tensor, reusing the session's
    /// value scratch and the tensor's storage (swapped, not copied).
    ///
    /// `out` is fully overwritten: it takes the container's dtype, a flat
    /// shape of the decoded length, and the decoded values. The result is
    /// identical to `self.codec().decode(encoded)` — the session parses
    /// the stream sequentially, which every container supports (a chunk
    /// index, if present, is side metadata the sequential parse ignores).
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::decode`].
    pub fn decode_into(
        &mut self,
        encoded: &EncodedTensor,
        out: &mut Tensor,
    ) -> Result<(), CodecError> {
        // Decode under the *container's* group size (which may differ from
        // the session's), exactly as the one-shot decode does.
        self.decode_stream_into(
            &encoded.bytes,
            encoded.bit_len,
            encoded.dtype,
            encoded.len,
            encoded.group_size,
            out,
        )
    }

    /// Decodes a raw ShapeShifter stream (framing supplied by the caller,
    /// e.g. parsed from an `SSPK` container header) into an existing
    /// tensor, reusing the session's value scratch exactly like
    /// [`CodecSession::decode_into`].
    ///
    /// This is the per-record decode path of the shard store (`ss-store`):
    /// a `ModelStore::get` parses one record's container header, then
    /// hands the stream here so thousands of lookups share one scratch
    /// allocation. The parse is sequential — a chunk index, if the
    /// container carried one, is side metadata this path ignores.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidGroupSize`] if `group_size` is 0 or exceeds
    /// 256; otherwise as [`ShapeShifterCodec::decode`].
    pub fn decode_stream_into(
        &mut self,
        stream: &[u8],
        bit_len: u64,
        dtype: ss_tensor::FixedType,
        len: usize,
        group_size: usize,
        out: &mut Tensor,
    ) -> Result<(), CodecError> {
        let codec = ShapeShifterCodec::from_config(
            CodecConfig::new()
                .with_group_size(group_size)
                .with_index_policy(IndexPolicy::None)
                .with_exec(ExecPolicy::Sequential),
        )?;
        codec.decode_stream_into(stream, bit_len, dtype, len, &mut self.values)?;
        // Swap the decoded buffer into the tensor and keep its previous
        // storage as the next call's scratch. The range re-validation in
        // `replace_flat` cannot fail: every decoded value passed the
        // container check in `decode_groups`.
        let scratch = std::mem::take(&mut self.values);
        self.values = out.replace_flat(dtype, scratch)?;
        Ok(())
    }

    /// Encodes `tensor` under an arbitrary registered scheme into an
    /// existing [`SchemeStream`], reusing the session's stream scratch.
    ///
    /// The group size is the session's; `out` is fully overwritten. The
    /// stream bytes are bit-identical to the scheme's one-shot
    /// `encode_into` by construction (both run on the same writer path).
    ///
    /// # Errors
    ///
    /// As [`ContainerScheme::encode_into`].
    pub fn encode_with_scheme(
        &mut self,
        scheme: &dyn ContainerScheme,
        tensor: &Tensor,
        policy: IndexPolicy,
        out: &mut SchemeStream,
    ) -> Result<(), CodecError> {
        let index = scheme.encode_into(tensor, self.codec.group_size(), policy, &mut self.w)?;
        out.scheme = scheme.wire_id();
        out.bytes.clear();
        out.bytes.extend_from_slice(self.w.as_bytes());
        out.bit_len = self.w.bit_len();
        out.dtype = tensor.dtype();
        out.len = tensor.len();
        out.group_size = self.codec.group_size();
        out.index = index;
        Ok(())
    }

    /// Decodes a [`SchemeStream`] into an existing tensor, reusing the
    /// session's value scratch (swapped, not copied). The parse is
    /// sequential — a chunk index, if the stream carries one, is side
    /// metadata this path ignores, exactly like
    /// [`CodecSession::decode_into`].
    ///
    /// # Errors
    ///
    /// As [`ContainerScheme::decode_into`].
    pub fn decode_with_scheme(
        &mut self,
        scheme: &dyn ContainerScheme,
        stream: &SchemeStream,
        out: &mut Tensor,
    ) -> Result<(), CodecError> {
        self.decode_scheme_stream_into(scheme, &stream.bytes, &stream.frame(), out)
    }

    /// Decodes a raw scheme stream (framing supplied by the caller, e.g.
    /// parsed from an `SSPK` container header) into an existing tensor —
    /// the scheme-generic sibling of [`CodecSession::decode_stream_into`],
    /// shared by the container `unpack_with` path for **every** registered
    /// scheme.
    ///
    /// # Errors
    ///
    /// As [`ContainerScheme::decode_into`].
    pub fn decode_scheme_stream_into(
        &mut self,
        scheme: &dyn ContainerScheme,
        stream: &[u8],
        frame: &StreamFrame,
        out: &mut Tensor,
    ) -> Result<(), CodecError> {
        scheme.decode_into(stream, frame, None, 1, &mut self.values)?;
        // Swap the decoded buffer into the tensor and keep its previous
        // storage as the next call's scratch, exactly as
        // `decode_stream_into` does. The range re-validation cannot fail:
        // every scheme's decode checked each value against the container.
        let scratch = std::mem::take(&mut self.values);
        self.values = out.replace_flat(frame.dtype, scratch)?;
        Ok(())
    }

    /// One-shot encode through the session (allocates the container, but
    /// still reuses the session's stream scratch).
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::encode`].
    pub fn encode(&mut self, tensor: &Tensor) -> Result<EncodedTensor, CodecError> {
        let mut out = EncodedTensor::default();
        self.encode_into(tensor, &mut out)?;
        Ok(out)
    }

    /// One-shot decode through the session (allocates the tensor, but
    /// still reuses the session's value scratch).
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::decode`].
    pub fn decode(&mut self, encoded: &EncodedTensor) -> Result<Tensor, CodecError> {
        let mut out = Tensor::zeros(ss_tensor::Shape::flat(0), encoded.dtype);
        self.decode_into(encoded, &mut out)?;
        Ok(out)
    }

    /// Bytes of stream-scratch capacity currently held (the encode
    /// high-water mark; diagnostic only).
    #[must_use]
    pub fn scratch_capacity_bytes(&self) -> usize {
        self.w.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    fn tensor(len: usize, seed: i32) -> Tensor {
        let vals: Vec<i32> = (0..len as i32)
            .map(|i| {
                let x = (i.wrapping_mul(31) ^ seed) % 500;
                if x % 3 == 0 {
                    0
                } else {
                    x - 250
                }
            })
            .collect();
        Tensor::from_vec(Shape::flat(len), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn session_matches_one_shot_including_index() {
        let cfg = CodecConfig::new().with_index_policy(IndexPolicy::EveryGroups(4));
        let codec = cfg.build().unwrap();
        let mut session = CodecSession::new(cfg).unwrap();
        let mut out = EncodedTensor::default();
        for len in [0usize, 1, 15, 16, 17, 1000] {
            let t = tensor(len, 7);
            session.encode_into(&t, &mut out).unwrap();
            let one_shot = codec.encode(&t).unwrap();
            assert_eq!(out, one_shot, "len {len}");
            let mut back = Tensor::zeros(Shape::flat(0), FixedType::I16);
            session.decode_into(&out, &mut back).unwrap();
            assert_eq!(back, t, "len {len}");
        }
    }

    #[test]
    fn reuse_across_mixed_sizes_is_clean() {
        let mut session = CodecSession::new(CodecConfig::new()).unwrap();
        let mut out = EncodedTensor::default();
        let mut back = Tensor::zeros(Shape::flat(0), FixedType::I16);
        // Shrinking and growing between calls must not leak stale state.
        for (round, len) in [1000usize, 3, 0, 517, 64].into_iter().enumerate() {
            let t = tensor(len, round as i32);
            session.encode_into(&t, &mut out).unwrap();
            session.decode_into(&out, &mut back).unwrap();
            assert_eq!(back, t, "round {round} len {len}");
        }
    }

    #[test]
    fn session_convenience_calls_match_one_shot() {
        let cfg = CodecConfig::new();
        let mut session = CodecSession::new(cfg).unwrap();
        let t = tensor(333, 1);
        let enc = session.encode(&t).unwrap();
        assert_eq!(enc, cfg.build().unwrap().encode(&t).unwrap());
        assert_eq!(session.decode(&enc).unwrap(), t);
    }

    #[test]
    fn decode_under_foreign_group_size() {
        // Session configured for group 16 must decode a group-64 container.
        let foreign = CodecConfig::new().with_group_size(64).build().unwrap();
        let t = tensor(200, 9);
        let enc = foreign.encode(&t).unwrap();
        let mut session = CodecSession::new(CodecConfig::new()).unwrap();
        let mut back = Tensor::zeros(Shape::flat(0), FixedType::I16);
        session.decode_into(&enc, &mut back).unwrap();
        assert_eq!(back, t);
    }
}
