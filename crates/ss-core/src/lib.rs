#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! ShapeShifter: fine-grain per-group data width adaptation (MICRO 2019).
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`WidthDetector`] — the hardware width-detection unit of Figure 5c
//!   (per-bit OR trees plus a leading-1 detector), modelled gate-for-gate
//!   and verified against the arithmetic definition.
//! * [`ShapeShifterCodec`] — the lossless off-chip memory container of §3 /
//!   Figure 6: values are grouped (16 by default), each group stores a
//!   zero bit-vector `Z`, a width prefix `P`, and only its non-zero values
//!   at `P` bits each in sign-magnitude form.
//! * [`ChunkIndex`] — the optional container-v2 chunk index: per-chunk bit
//!   offsets and value counts (delta-encoded, CRC-32-guarded) that let
//!   decode fan chunks out across worker threads while staying
//!   bit-identical to the sequential parse. v1 streams carry no index and
//!   decode sequentially, unchanged.
//! * [`scheme`] — the off-chip compression schemes compared throughout the
//!   evaluation: no compression, per-layer Profile (Proteus), ShapeShifter,
//!   Eyeriss/SCNN-style zero run-length encoding, the outlier-aware
//!   storage formats of Figure 16, plus the DPRed per-group precision and
//!   AdaBits bit-plane schemes from the related work. All report exact
//!   bit counts.
//! * [`registry`] — the container-scheme plug-in registry: the
//!   [`ContainerScheme`] trait (stable wire ids, encode/decode over the
//!   shared bit-stream machinery, fingerprint hook) and the
//!   [`SchemeRegistry`] that resolves wire ids at unpack time.
//! * [`decompressor`] — the two-level (L1D/L2D) streaming decompressor of
//!   Figure 6d as a cycle-approximate model, used to check the decoder
//!   keeps up with the DDR4 stream.
//! * [`analysis`] — the measurement machinery behind §2: per-group width
//!   CDFs (Figures 1–3), per-layer effective widths (Table 1), and
//!   per-layer vs per-value width/work comparisons (Figure 4).
//!
//! # Quick start
//!
//! ```
//! use ss_core::ShapeShifterCodec;
//! use ss_tensor::{FixedType, Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Tensor::from_vec(
//!     Shape::flat(8),
//!     FixedType::I16,
//!     vec![3, 0, -1, 0, 0, 0, 200, -7],
//! )?;
//! let codec = ShapeShifterCodec::new(16);
//! let encoded = codec.encode(&t)?;
//! assert!(encoded.bit_len() < t.container_bits()); // it compressed
//! let back = codec.decode(&encoded)?;
//! assert_eq!(back, t); // losslessly
//! # Ok(())
//! # }
//! ```

pub mod analysis;
mod checked;
mod codec;
mod config;
pub mod decompressor;
mod detector;
mod error;
pub mod index;
pub mod kernels;
pub mod par;
pub mod registry;
pub mod scheme;
mod session;

pub use codec::{EncodedTensor, IndexPolicy, ShapeShifterCodec};
pub use config::{CodecConfig, ExecPolicy, MeasureReport};
pub use detector::WidthDetector;
pub use error::CodecError;
pub use index::{ChunkEntry, ChunkIndex};
pub use registry::{ContainerScheme, SchemeId, SchemeRegistry, StreamFrame};
pub use session::{CodecSession, SchemeStream};

/// The blessed public surface, re-exported for glob import.
///
/// ```
/// use ss_core::prelude::*;
///
/// let codec = CodecConfig::new()
///     .with_exec(ExecPolicy::Sequential)
///     .build()
///     .expect("valid config");
/// let mut session = CodecSession::new(codec.config()).expect("valid config");
/// # let _ = (codec, &mut session);
/// ```
pub mod prelude {
    pub use crate::codec::{EncodedTensor, IndexPolicy, ShapeShifterCodec};
    pub use crate::config::{CodecConfig, ExecPolicy, MeasureReport};
    pub use crate::error::CodecError;
    pub use crate::registry::{ContainerScheme, SchemeId, SchemeRegistry, StreamFrame};
    pub use crate::session::{CodecSession, SchemeStream};
}
