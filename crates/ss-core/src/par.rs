//! Thread-count selection, group-aligned chunking and the workspace's
//! only thread-spawning primitives.
//!
//! ShapeShifter groups (paper §3) are encoded independently of one another:
//! each group's `Z`/`P`/payload fields depend only on its own values. Any
//! split of a tensor on a group boundary can therefore be encoded by
//! independent workers and spliced back in order into the canonical stream
//! (see [`ss_bitio::BitWriter::append_writer`]). This module holds the
//! policy decisions that parallel path needs — how many workers to use and
//! where to cut — and, by workspace rule (`ss-lint`'s
//! `concurrency-containment`), it is the **only** module allowed to spawn
//! threads or take locks. The splice-ordering argument that keeps parallel
//! output bit-identical to the sequential oracle is made once, here:
//!
//! * [`scoped_map`] returns chunk results **in input order** because each
//!   worker writes to its own pre-allocated slot and the scope joins every
//!   worker before the results are read;
//! * [`par_map`] scatters work-stolen results back by index for the same
//!   order guarantee.
//!
//! Worker panics propagate to the caller (via scope join /
//! [`std::panic::resume_unwind`]); they are never swallowed.

/// Number of worker threads the codec should use.
///
/// Honors the `SS_THREADS` environment variable when it parses to a positive
/// integer, otherwise falls back to [`std::thread::available_parallelism`]
/// (1 if that is unavailable). The same variable steers the experiment
/// harness's `par_map`, so one knob controls both layers.
#[must_use]
pub fn thread_count() -> usize {
    // ss-lint: allow(determinism) -- SS_THREADS is the documented thread-count knob; chunking on group boundaries keeps the stream bit-identical at any count
    std::env::var("SS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            // ss-lint: allow(determinism) -- parallelism only affects wall-clock, never the encoded bytes
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Values per worker chunk: the smallest multiple of `group_size` that
/// spreads `len` values over at most `threads` chunks.
///
/// Cutting on group boundaries is what makes chunk encodings splice into a
/// stream bit-identical to the sequential one — a group never straddles two
/// workers.
#[must_use]
pub(crate) fn chunk_values(len: usize, group_size: usize, threads: usize) -> usize {
    debug_assert!(group_size >= 1);
    let total_groups = len.div_ceil(group_size).max(1);
    total_groups.div_ceil(threads.max(1)) * group_size
}

/// Maps `f` over `chunk_len`-sized chunks of `items` on one scoped worker
/// thread per chunk, returning the chunk results **in input order**.
///
/// The order guarantee is structural: worker `i` writes only to slot `i`,
/// and [`std::thread::scope`] joins every worker before the slots are
/// collected. This is the primitive behind the codec's parallel
/// encode/measure paths, whose output must be bit-identical to the
/// sequential scan.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope re-raises it on join).
pub fn scoped_map<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(chunk_len.max(1)).collect();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(chunks.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        for (slot, chunk) in slots.iter_mut().zip(&chunks) {
            s.spawn(move || *slot = Some(f(chunk)));
        }
    });
    // The scope joined every worker, so every slot is filled.
    slots.into_iter().flatten().collect()
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// preserving input order.
///
/// Work-stealing over an atomic counter: each worker accumulates
/// `(index, result)` pairs locally so no lock is ever taken on the hot
/// path, and the caller's thread scatters them back into input order.
/// Used by the experiment harness (via `ss-bench`) to fan out per-model
/// measurements whose costs vary wildly.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(local) => {
                    for (i, r) in local {
                        if let Some(slot) = results.get_mut(i) {
                            *slot = Some(r);
                        }
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Every index in 0..len was claimed exactly once, so every slot is
    // filled once the workers have joined.
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_group_aligned_and_cover() {
        for len in [0usize, 1, 15, 16, 17, 255, 256, 4096, 4097] {
            for group in [1usize, 7, 16, 256] {
                for threads in [1usize, 2, 3, 8, 64] {
                    let chunk = chunk_values(len, group, threads);
                    assert_eq!(chunk % group, 0, "len {len} group {group} threads {threads}");
                    assert!(chunk > 0);
                    // At most `threads` chunks.
                    assert!(len.div_ceil(chunk) <= threads.max(1));
                }
            }
        }
    }

    #[test]
    fn scoped_map_preserves_chunk_order() {
        let items: Vec<u32> = (0..1000).collect();
        let sums = scoped_map(&items, 64, |chunk| chunk.iter().sum::<u32>());
        let expect: Vec<u32> = items.chunks(64).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
        assert!(scoped_map(&Vec::<u32>::new(), 64, |c| c.len()).is_empty());
        // chunk_len of 0 is clamped, not a panic.
        assert_eq!(scoped_map(&[1u32, 2], 0, |c| c.len()), vec![1, 1]);
    }

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 7, 64] {
            assert_eq!(par_map(items.clone(), threads, |&x| x * x), expect);
        }
        assert!(par_map(Vec::<u64>::new(), 4, |&x| x).is_empty());
        assert_eq!(par_map(vec![9u64], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64u32).collect::<Vec<_>>(), 4, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_override_wins() {
        // Serialized by cargo's per-process test env: this test only checks
        // the parse-and-filter logic via a scoped set/remove.
        std::env::set_var("SS_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("SS_THREADS", "0");
        let fallback = thread_count();
        assert!(fallback >= 1, "0 must fall back, got {fallback}");
        std::env::set_var("SS_THREADS", "not-a-number");
        assert!(thread_count() >= 1);
        std::env::remove_var("SS_THREADS");
        assert!(thread_count() >= 1);
    }
}
