//! Thread-count selection and group-aligned chunking for the parallel
//! codec paths.
//!
//! ShapeShifter groups (paper §3) are encoded independently of one another:
//! each group's `Z`/`P`/payload fields depend only on its own values. Any
//! split of a tensor on a group boundary can therefore be encoded by
//! independent workers and spliced back in order into the canonical stream
//! (see [`ss_bitio::BitWriter::append_writer`]). This module holds the two
//! policy decisions that parallel path needs: how many workers to use and
//! where to cut.

/// Number of worker threads the codec should use.
///
/// Honors the `SS_THREADS` environment variable when it parses to a positive
/// integer, otherwise falls back to [`std::thread::available_parallelism`]
/// (1 if that is unavailable). The same variable steers the experiment
/// harness's `par_map`, so one knob controls both layers.
#[must_use]
pub fn thread_count() -> usize {
    std::env::var("SS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Values per worker chunk: the smallest multiple of `group_size` that
/// spreads `len` values over at most `threads` chunks.
///
/// Cutting on group boundaries is what makes chunk encodings splice into a
/// stream bit-identical to the sequential one — a group never straddles two
/// workers.
#[must_use]
pub(crate) fn chunk_values(len: usize, group_size: usize, threads: usize) -> usize {
    debug_assert!(group_size >= 1);
    let total_groups = len.div_ceil(group_size).max(1);
    total_groups.div_ceil(threads.max(1)) * group_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_group_aligned_and_cover() {
        for len in [0usize, 1, 15, 16, 17, 255, 256, 4096, 4097] {
            for group in [1usize, 7, 16, 256] {
                for threads in [1usize, 2, 3, 8, 64] {
                    let chunk = chunk_values(len, group, threads);
                    assert_eq!(chunk % group, 0, "len {len} group {group} threads {threads}");
                    assert!(chunk > 0);
                    // At most `threads` chunks.
                    assert!(len.div_ceil(chunk) <= threads.max(1));
                }
            }
        }
    }

    #[test]
    fn env_override_wins() {
        // Serialized by cargo's per-process test env: this test only checks
        // the parse-and-filter logic via a scoped set/remove.
        std::env::set_var("SS_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("SS_THREADS", "0");
        let fallback = thread_count();
        assert!(fallback >= 1, "0 must fall back, got {fallback}");
        std::env::set_var("SS_THREADS", "not-a-number");
        assert!(thread_count() >= 1);
        std::env::remove_var("SS_THREADS");
        assert!(thread_count() >= 1);
    }
}
