//! The ShapeShifter memory container codec (paper §3, Figure 6).

use ss_bitio::{BitReader, BitWriter};
use ss_tensor::{width, FixedType, Shape, Signedness, Tensor};
use ss_trace::{Counter, WidthCounts, WidthHist};

use crate::index::{ChunkEntry, ChunkIndex};
use crate::{
    checked, kernels, par, CodecConfig, CodecError, ExecPolicy, MeasureReport, WidthDetector,
};

/// Below this many values the automatic paths stay sequential: spawning and
/// splicing costs more than the encode itself on small tensors.
pub(crate) const PARALLEL_MIN_VALUES: usize = 1 << 16;

/// The [`IndexPolicy::Auto`] chunking floor: a chunk covers at least this
/// many values, so the per-chunk decode work dwarfs the seek + join cost.
const AUTO_CHUNK_MIN_VALUES: usize = 1 << 16;

/// The [`IndexPolicy::Auto`] chunk-count ceiling: however large the
/// tensor, the index stays a few dozen entries (and the parallel paths
/// spawn a bounded number of workers).
const AUTO_MAX_CHUNKS: usize = 64;

/// When (and how) `encode` writes the container-v2 chunk index.
///
/// The policy is a property of the *codec configuration*, never of the
/// encode-time thread count: encoding the same tensor with 1 or 8 workers
/// produces the same index (and the same stream bytes), so the v2
/// container is deterministic across hosts — a requirement for the
/// golden-vector suite and the checked-in `BENCH_codec.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexPolicy {
    /// Never write an index: the v1 container, byte-identical to what
    /// every earlier release produced.
    None,
    /// Cut the stream every this-many groups. Chunk sizes this small only
    /// make sense in tests and golden vectors; production use wants
    /// [`IndexPolicy::Auto`].
    EveryGroups(usize),
    /// Index tensors that span more than one chunk, sizing chunks to
    /// cover at least [`AUTO_CHUNK_MIN_VALUES`] values and capping the
    /// index at [`AUTO_MAX_CHUNKS`] entries. Small tensors stay v1 —
    /// their index would cost more than the parallelism recovers.
    #[default]
    Auto,
}

/// One indexed chunk's bit range and value/group window, precomputed so
/// decode workers can parse their runs without touching shared state.
struct ChunkSpan {
    chunk: usize,
    start: u64,
    end: u64,
    values: usize,
    value_base: usize,
    group_base: usize,
}

/// One worker's contribution to a parallel encode.
struct ChunkStream {
    w: BitWriter,
    groups: usize,
    metadata_bits: u64,
    payload_bits: u64,
}

/// Lossless per-group codec for the ShapeShifter off-chip container.
///
/// For each group of up to `group_size` values the stream stores:
///
/// * `Z` — one bit per value, 1 marking a zero (zeros carry no payload);
/// * `P` — the group's width minus one, in `log2(Pmax)` bits (4 bits for
///   16-bit containers, 3 for 8-bit, matching Figure 6's example);
/// * the non-zero values, in order, at `P` bits each; signed containers
///   store sign-magnitude with the sign at the least-significant bit.
///
/// Groups are packed back-to-back with no alignment — the stream is decoded
/// sequentially, exactly as the paper's access model requires.
///
/// The paper's metadata accounting holds by construction: a full group of
/// sixteen 16-bit values costs `16 + 4` metadata bits against a 256-bit
/// uncompressed footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeShifterCodec {
    group_size: usize,
    index_policy: IndexPolicy,
    exec: ExecPolicy,
}

/// An encoded tensor: the packed stream plus the metadata needed to decode
/// it and the accounting the evaluation reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTensor {
    pub(crate) bytes: Vec<u8>,
    pub(crate) bit_len: u64,
    pub(crate) len: usize,
    pub(crate) dtype: FixedType,
    pub(crate) group_size: usize,
    pub(crate) groups: usize,
    pub(crate) metadata_bits: u64,
    pub(crate) payload_bits: u64,
    /// Container-v2 chunk index, when the codec's policy wrote one. The
    /// stream bytes are identical either way; the index is side metadata.
    pub(crate) index: Option<ChunkIndex>,
}

impl Default for EncodedTensor {
    /// An empty container (zero values, zero bits) — the valid encoding
    /// of the empty tensor, and the natural starting point for the
    /// buffer-reusing `CodecSession::encode_into` API.
    fn default() -> Self {
        Self {
            bytes: Vec::new(),
            bit_len: 0,
            len: 0,
            dtype: FixedType::U8,
            group_size: 16,
            groups: 0,
            metadata_bits: 0,
            payload_bits: 0,
            index: None,
        }
    }
}

impl ShapeShifterCodec {
    /// Creates a codec with the given group size (the paper finds 16 "a
    /// good balance between compression rate and metadata overhead").
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256 (the paper's largest
    /// evaluated group).
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        assert!(
            (1..=256).contains(&group_size),
            "group size {group_size} outside 1..=256"
        );
        Self {
            group_size,
            index_policy: IndexPolicy::Auto,
            exec: ExecPolicy::Auto,
        }
    }

    /// Builds a codec from a [`CodecConfig`] — the non-panicking
    /// constructor behind [`CodecConfig::build`].
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidGroupSize`] if the config's group size is 0
    /// or exceeds 256.
    pub fn from_config(config: CodecConfig) -> Result<Self, CodecError> {
        if !(1..=256).contains(&config.group_size) {
            return Err(CodecError::InvalidGroupSize);
        }
        Ok(Self {
            group_size: config.group_size,
            index_policy: config.index_policy,
            exec: config.exec,
        })
    }

    /// This codec's configuration as a [`CodecConfig`] builder value.
    #[must_use]
    pub fn config(&self) -> CodecConfig {
        CodecConfig::new()
            .with_group_size(self.group_size)
            .with_index_policy(self.index_policy)
            .with_exec(self.exec)
    }

    /// The same codec with a different execution policy (builder style).
    ///
    /// The policy only changes scheduling: every policy produces
    /// bit-identical streams and accounting.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The configured execution policy.
    #[must_use]
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec
    }

    /// The same codec with a different chunk-index policy (builder style).
    ///
    /// `IndexPolicy::None` reproduces the v1 container byte-for-byte;
    /// `IndexPolicy::EveryGroups(n)` pins the chunk size for tests and
    /// golden vectors. The policy changes only whether an index travels
    /// alongside the stream — the stream bytes themselves are identical
    /// under every policy.
    #[must_use]
    pub fn with_index_policy(mut self, policy: IndexPolicy) -> Self {
        self.index_policy = policy;
        self
    }

    /// The configured group size.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The configured chunk-index policy.
    #[must_use]
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Resolves the index policy for a tensor of `len` values: `Some`
    /// groups-per-chunk when an index is worth writing (the tensor spans
    /// more than one chunk), `None` for a v1 stream.
    pub(crate) fn index_chunk_groups(&self, len: usize) -> Option<usize> {
        let chunk_groups = match self.index_policy {
            IndexPolicy::None => return None,
            IndexPolicy::EveryGroups(n) => n.max(1),
            IndexPolicy::Auto => {
                let per_chunk = AUTO_CHUNK_MIN_VALUES.max(len.div_ceil(AUTO_MAX_CHUNKS));
                per_chunk.div_ceil(self.group_size)
            }
        };
        // The serialized index stores groups-per-chunk in a u32; a policy
        // that somehow exceeds it falls back to an unindexed stream rather
        // than truncating.
        if chunk_groups > u32::MAX as usize {
            return None;
        }
        let chunk_values = chunk_groups.saturating_mul(self.group_size);
        (len > chunk_values).then_some(chunk_groups)
    }

    /// Encodes a tensor into a ShapeShifter stream.
    ///
    /// Scheduling follows the codec's [`ExecPolicy`]: under the default
    /// `Auto`, large tensors are encoded in parallel — the tensor is cut
    /// on group boundaries, each chunk is encoded by a scoped worker
    /// thread into its own [`BitWriter`], and the chunk streams are
    /// spliced back in order. Because groups are self-contained (paper §3)
    /// and splicing preserves every bit phase, the output is
    /// **bit-identical** to a sequential encode — the sequential path
    /// remains both the small-tensor fast path and the oracle the
    /// property tests compare against. The `Auto` worker count comes from
    /// [`par::thread_count`] (`SS_THREADS` or the machine's available
    /// parallelism).
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError::Stream`] on internal bit-packing failures
    /// (unreachable for valid tensors, by the tensor's container
    /// invariant).
    pub fn encode(&self, tensor: &Tensor) -> Result<EncodedTensor, CodecError> {
        let threads = self.exec.threads_for(tensor.len(), PARALLEL_MIN_VALUES);
        self.encode_resolved(tensor, threads)
    }

    /// [`ShapeShifterCodec::encode`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::encode`].
    #[deprecated(
        since = "0.2.0",
        note = "use `with_exec(ExecPolicy::Threads(n))` (or `Sequential`) and `encode`"
    )]
    pub fn encode_with_threads(
        &self,
        tensor: &Tensor,
        threads: usize,
    ) -> Result<EncodedTensor, CodecError> {
        self.encode_resolved(tensor, threads)
    }

    /// The encode body, with the worker count already resolved
    /// (`threads <= 1` is the pure sequential path; any higher count
    /// parallelizes regardless of tensor size — no small-tensor
    /// heuristic — which is what the bit-identity tests and the perf
    /// baseline need).
    fn encode_resolved(
        &self,
        tensor: &Tensor,
        threads: usize,
    ) -> Result<EncodedTensor, CodecError> {
        let dtype = tensor.dtype();
        let values = tensor.values();
        let capacity_hint = tensor.container_bits() / 2;

        let (chunk, index) = match self.index_chunk_groups(values.len()) {
            Some(chunk_groups) => {
                self.encode_indexed(values, dtype, capacity_hint, chunk_groups, threads)?
            }
            None => (
                self.encode_unindexed(values, dtype, capacity_hint, threads)?,
                None,
            ),
        };

        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::EncodeCalls, 1);
            rec.add(Counter::EncodeValues, tensor.len() as u64);
            rec.add(Counter::EncodeBits, chunk.w.bit_len());
            rec.add(Counter::EncodeMetadataBits, chunk.metadata_bits);
            rec.add(Counter::EncodePayloadBits, chunk.payload_bits);
            rec.add(Counter::EncodeGroups, chunk.groups as u64);
        }

        Ok(EncodedTensor {
            bit_len: chunk.w.bit_len(),
            bytes: chunk.w.into_bytes(),
            len: tensor.len(),
            dtype,
            group_size: self.group_size,
            groups: chunk.groups,
            metadata_bits: chunk.metadata_bits,
            payload_bits: chunk.payload_bits,
            index,
        })
    }

    /// The v1 encode body: cut at thread-count-derived group boundaries,
    /// encode the chunks on scoped workers, splice in order. No index is
    /// recorded, so chunking is free to follow the worker count.
    fn encode_unindexed(
        &self,
        values: &[i32],
        dtype: FixedType,
        capacity_hint: u64,
        threads: usize,
    ) -> Result<ChunkStream, CodecError> {
        let chunk_values = par::chunk_values(values.len(), self.group_size, threads.max(1));
        if values.len() <= chunk_values {
            // One worker would get everything: skip the workers entirely.
            return self.encode_chunk(values, dtype, capacity_hint);
        }
        let chunk_count = values.len().div_ceil(chunk_values);
        let per_chunk_hint = capacity_hint / chunk_count as u64;
        let parts = par::scoped_map(values, chunk_values, |chunk| {
            self.encode_chunk(chunk, dtype, per_chunk_hint)
        });
        let mut merged = ChunkStream {
            w: BitWriter::with_capacity_bits(capacity_hint),
            groups: 0,
            metadata_bits: 0,
            payload_bits: 0,
        };
        for part in parts {
            let part = part?;
            merged.groups += part.groups;
            merged.metadata_bits += part.metadata_bits;
            merged.payload_bits += part.payload_bits;
            merged.w.append_writer(part.w)?;
        }
        Ok(merged)
    }

    /// The v2 encode body: cut at the *index* chunk boundaries (a policy
    /// decision, deliberately independent of the worker count so the
    /// resulting container is deterministic), encode each chunk, and
    /// record its bit offset and value count while splicing. Workers each
    /// take a contiguous run of chunks, so `threads` stays the number of
    /// OS threads spawned however many chunks the index has.
    fn encode_indexed(
        &self,
        values: &[i32],
        dtype: FixedType,
        capacity_hint: u64,
        chunk_groups: usize,
        threads: usize,
    ) -> Result<(ChunkStream, Option<ChunkIndex>), CodecError> {
        // `index_chunk_groups` only returns sizes strictly below the
        // tensor length, so the product cannot overflow and there are at
        // least two chunks.
        let chunk_values = chunk_groups * self.group_size;
        let chunks: Vec<&[i32]> = values.chunks(chunk_values).collect();
        let per_chunk_hint = capacity_hint / chunks.len() as u64;
        let parts: Vec<Result<ChunkStream, CodecError>> = if threads.max(1) <= 1 {
            chunks
                .iter()
                .map(|c| self.encode_chunk(c, dtype, per_chunk_hint))
                .collect()
        } else {
            let per_worker = chunks.len().div_ceil(threads).max(1);
            par::scoped_map(&chunks, per_worker, |run| {
                run.iter()
                    .map(|c| self.encode_chunk(c, dtype, per_chunk_hint))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let mut merged = ChunkStream {
            w: BitWriter::with_capacity_bits(capacity_hint),
            groups: 0,
            metadata_bits: 0,
            payload_bits: 0,
        };
        let mut entries = Vec::with_capacity(chunks.len());
        for (chunk, part) in chunks.iter().zip(parts) {
            let part = part?;
            entries.push(ChunkEntry {
                bit_offset: merged.w.bit_len(),
                values: chunk.len() as u64,
            });
            merged.groups += part.groups;
            merged.metadata_bits += part.metadata_bits;
            merged.payload_bits += part.payload_bits;
            merged.w.append_writer(part.w)?;
        }
        // `index_chunk_groups` rejects chunk sizes beyond u32, so the cast
        // is lossless.
        // ss-lint: allow(truncating-cast) -- bounded by index_chunk_groups' u32 guard
        let index = ChunkIndex::from_parts(chunk_groups as u32, entries)?;
        checked::index_bookkeeping(&index, self.group_size, merged.w.bit_len(), values.len());
        Ok((merged, Some(index)))
    }

    /// Sequentially encodes one group-aligned slice of values — the body
    /// shared by the sequential path and every parallel worker.
    fn encode_chunk(
        &self,
        values: &[i32],
        dtype: FixedType,
        capacity_hint: u64,
    ) -> Result<ChunkStream, CodecError> {
        let mut w = BitWriter::with_capacity_bits(capacity_hint);
        let (groups, metadata_bits, payload_bits) =
            self.encode_groups_into(values, dtype, &mut w)?;
        Ok(ChunkStream {
            w,
            groups,
            metadata_bits,
            payload_bits,
        })
    }

    /// Appends the group encodings of `values` to an existing writer,
    /// returning `(groups, metadata_bits, payload_bits)` — the inner loop
    /// shared by [`ShapeShifterCodec::encode_chunk`] and the
    /// buffer-reusing `CodecSession`, so session output is bit-identical
    /// to the one-shot API by construction.
    ///
    /// The loop runs on the word-parallel [`kernels`]: one fused
    /// [`kernels::scan_gather`] pass per group yields the zero bit-vector
    /// as whole `u64` words (streamed out via `BitWriter::write_words`),
    /// the OR-folded group width, *and* the compacted non-zero payloads,
    /// which are packed as an equal-width field run via
    /// `BitWriter::pack_fields` — each value is loaded once and no bit is
    /// pushed individually. The retired per-value loop survives as the
    /// differential oracle in the `kernel_differential` suite.
    pub(crate) fn encode_groups_into(
        &self,
        values: &[i32],
        dtype: FixedType,
        w: &mut BitWriter,
    ) -> Result<(usize, u64, u64), CodecError> {
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u32::from(det.prefix_bits());
        let signedness = dtype.signedness();
        let mut groups = 0usize;
        let mut metadata_bits = 0u64;
        let mut payload_bits = 0u64;
        // Tracing state is accumulated locally and submitted once per chunk
        // so the untraced path pays one branch per group, not an atomic op.
        let rec = ss_trace::global();
        let tracing = rec.enabled();
        let mut group_widths = WidthCounts::new();
        let mut zeros_elided = 0u64;
        let mut fields = [0u64; kernels::MAX_GROUP];

        for group in values.chunks(self.group_size) {
            groups += 1;
            let (scan, n) = kernels::scan_gather(group, signedness, &mut fields);
            // Z vector: 1 marks a zero value, emitted as whole 64-bit
            // words (group sizes up to 256 are supported).
            w.write_words(&scan.z, group.len() as u64)?;
            let p = scan.width();
            if tracing {
                zeros_elided += u64::from(scan.zero_count());
                group_widths.observe(p, 1);
            }
            w.write_bits(u64::from(scan.encoded_width()), prefix_bits)?;
            metadata_bits += group.len() as u64 + u64::from(prefix_bits);
            // `n <= group.len() <= MAX_GROUP` by construction, so the
            // slice always exists; the fallback is unreachable.
            let run = fields.get(..n).unwrap_or(&[]);
            w.pack_fields(run, u32::from(p))?;
            payload_bits += u64::from(p) * run.len() as u64;
        }
        if tracing {
            rec.record_widths(WidthHist::CodecGroupWidth, &group_widths);
            rec.add(Counter::EncodeZerosElided, zeros_elided);
        }
        Ok((groups, metadata_bits, payload_bits))
    }

    /// Computes the exact encoded size of a tensor *without* materializing
    /// the stream — the accounting identity
    /// `total_bits() = metadata + payload` holds against
    /// [`ShapeShifterCodec::encode`] bit-for-bit, at a fraction of the
    /// cost. Used by the traffic schemes on multi-million value layers.
    ///
    /// Scheduling follows the codec's [`ExecPolicy`]: parallel runs cut
    /// on group-aligned chunks exactly like
    /// [`ShapeShifterCodec::encode`]; per-chunk sums are
    /// order-independent, so the totals match the sequential scan (and
    /// `encode`) exactly.
    ///
    /// # Panics
    ///
    /// Never panics for a valid tensor.
    #[must_use]
    pub fn measure(&self, tensor: &Tensor) -> MeasureReport {
        let threads = self.exec.threads_for(tensor.len(), PARALLEL_MIN_VALUES);
        self.measure_resolved(tensor, threads)
    }

    /// [`ShapeShifterCodec::measure`] with an explicit worker count,
    /// returning the old `(metadata_bits, payload_bits, groups)` tuple.
    #[deprecated(
        since = "0.2.0",
        note = "use `with_exec(ExecPolicy::Threads(n))` and `measure`, which returns a named `MeasureReport`"
    )]
    #[must_use]
    pub fn measure_with_threads(&self, tensor: &Tensor, threads: usize) -> (u64, u64, usize) {
        self.measure_resolved(tensor, threads).into()
    }

    /// The measure body, with the worker count already resolved
    /// (`threads == 1` is the pure sequential scan).
    fn measure_resolved(&self, tensor: &Tensor, threads: usize) -> MeasureReport {
        let dtype = tensor.dtype();
        let values = tensor.values();
        let chunk_values = par::chunk_values(values.len(), self.group_size, threads.max(1));
        let (meta, payload, groups) = if values.len() <= chunk_values {
            self.measure_chunk(values, dtype)
        } else {
            par::scoped_map(values, chunk_values, |chunk| {
                self.measure_chunk(chunk, dtype)
            })
            .into_iter()
            .fold((0, 0, 0), |(m, p, g), (cm, cp, cg)| {
                (m + cm, p + cp, g + cg)
            })
        };
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::MeasureCalls, 1);
            rec.add(Counter::MeasureValues, tensor.len() as u64);
            rec.add(Counter::MeasureBits, meta + payload);
        }
        MeasureReport {
            metadata_bits: meta,
            payload_bits: payload,
            groups,
        }
    }

    /// Sequential measurement of one group-aligned slice, on the same
    /// fused [`kernels::scan_group`] pass as the encoder: the group width
    /// comes from one lane fold and the non-zero count from the zero
    /// bitmap's popcount, so measuring costs one streaming read of the
    /// values — no per-value compare-and-max, no second zero-count scan.
    fn measure_chunk(&self, values: &[i32], dtype: FixedType) -> (u64, u64, usize) {
        let signedness = dtype.signedness();
        let det = WidthDetector::new(dtype.bits(), signedness);
        let prefix_bits = u64::from(det.prefix_bits());
        let mut metadata = 0u64;
        let mut payload = 0u64;
        let mut groups = 0usize;
        let rec = ss_trace::global();
        let tracing = rec.enabled();
        let mut group_widths = WidthCounts::new();
        for group in values.chunks(self.group_size) {
            groups += 1;
            metadata += group.len() as u64 + prefix_bits;
            let scan = kernels::scan_group(group, signedness);
            if tracing {
                group_widths.observe(scan.width(), 1);
            }
            payload += u64::from(scan.width())
                * (group.len() as u64 - u64::from(scan.zero_count()));
        }
        if tracing {
            rec.record_widths(WidthHist::CodecGroupWidth, &group_widths);
        }
        (metadata, payload, groups)
    }

    /// Decodes a ShapeShifter stream back into the original tensor.
    ///
    /// Two paths exist, chosen by the container version:
    ///
    /// * **v1 (no chunk index)** — decoding is sequential by stream
    ///   design: a group's start position is only known after the previous
    ///   group's `Z` vector and `P` prefix have been parsed (groups are
    ///   packed back-to-back with no alignment — paper §3: "the incoming
    ///   stream will be decoded sequentially"). v1 streams decode exactly
    ///   as every earlier release decoded them.
    /// * **v2 (chunk index present)** — the container's optional index
    ///   records each chunk's absolute bit offset and value count, so
    ///   decode fans chunks out across [`par::scoped_map`] workers, each
    ///   parsing its own range-confined reader, and splices the results
    ///   back in order. The stream bytes are identical to v1 — the index
    ///   is side metadata — so the output is **bit-identical** to the
    ///   sequential parse (property-tested), and the sequential path
    ///   remains the oracle.
    ///
    /// The worker count follows [`par::thread_count`] (`SS_THREADS` or the
    /// machine's available parallelism); small tensors stay sequential.
    ///
    /// # Errors
    ///
    /// * [`CodecError::Stream`] if the stream is truncated.
    /// * [`CodecError::WidthExceedsContainer`] / [`CodecError::CorruptValue`]
    ///   if the stream's contents are inconsistent with its metadata.
    /// * [`CodecError::TrailingBits`] if the declared element count is
    ///   reached with stream bits left unconsumed.
    /// * [`CodecError::CorruptIndex`] /
    ///   [`CodecError::IndexOffsetOutOfBounds`] /
    ///   [`CodecError::IndexChunkMismatch`] if a chunk index is present
    ///   but disagrees with the framing metadata or the stream.
    pub fn decode(&self, encoded: &EncodedTensor) -> Result<Tensor, CodecError> {
        let threads = self.exec.threads_for(encoded.len, PARALLEL_MIN_VALUES);
        self.decode_resolved(encoded, threads)
    }

    /// [`ShapeShifterCodec::decode`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::decode`].
    #[deprecated(
        since = "0.2.0",
        note = "use `with_exec(ExecPolicy::Threads(n))` (or `Sequential`) and `decode`"
    )]
    pub fn decode_with_threads(
        &self,
        encoded: &EncodedTensor,
        threads: usize,
    ) -> Result<Tensor, CodecError> {
        self.decode_resolved(encoded, threads)
    }

    /// The decode body, with the worker count already resolved.
    ///
    /// `threads <= 1` always takes the sequential parse (an index, if
    /// present, is ignored — the stream is self-contained); higher counts
    /// fan indexed containers out regardless of tensor size, which is what
    /// the differential tests and the perf baseline need. Unindexed (v1)
    /// containers decode sequentially whatever `threads` says.
    fn decode_resolved(
        &self,
        encoded: &EncodedTensor,
        threads: usize,
    ) -> Result<Tensor, CodecError> {
        let codec = ShapeShifterCodec::new(encoded.group_size);
        let data = match encoded.index.as_ref() {
            Some(index) if threads > 1 && index.chunk_count() > 1 => codec
                .decode_stream_indexed(
                    &encoded.bytes,
                    encoded.bit_len,
                    encoded.dtype,
                    encoded.len,
                    index,
                    threads,
                )?,
            _ => {
                codec.decode_stream(&encoded.bytes, encoded.bit_len, encoded.dtype, encoded.len)?
            }
        };
        Ok(Tensor::from_vec(
            Shape::flat(encoded.len),
            encoded.dtype,
            data,
        )?)
    }

    /// Decodes a raw ShapeShifter stream given its framing metadata
    /// (stream length in bits, container type, element count) — the form
    /// the metadata takes when it travels separately from the stream, as
    /// in the paper's per-layer descriptors or the `SSPK` file container.
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::decode`].
    pub fn decode_stream(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: FixedType,
        len: usize,
    ) -> Result<Vec<i32>, CodecError> {
        // No preallocation from `len` here: it is untrusted framing
        // metadata until `decode_stream_into` has bounded it against the
        // stream length (a hostile header must not OOM the process).
        let mut data: Vec<i32> = Vec::new();
        self.decode_stream_into(bytes, bit_len, dtype, len, &mut data)?;
        Ok(data)
    }

    /// [`ShapeShifterCodec::decode_stream`] into a caller-owned buffer —
    /// the body behind both the one-shot path and `CodecSession`'s
    /// allocation-free `decode_into`. `data` is cleared first; on success
    /// it holds exactly `len` decoded values.
    pub(crate) fn decode_stream_into(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: FixedType,
        len: usize,
        data: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        data.clear();
        if bit_len > bytes.len() as u64 * 8 {
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bytes.len() as u64 * 8,
            }));
        }
        // Every encoded value costs at least its Z bit, so a stream of
        // `bit_len` bits cannot hold more than `bit_len` values. Rejecting
        // inflated (possibly hostile) length metadata here keeps the
        // preallocation bounded by the input size.
        if len as u64 > bit_len {
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bit_len,
            }));
        }
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        // Hoisted out of the per-value loop: the signedness of the stream
        // is a property of the container, not of any value.
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        data.reserve(len);
        self.decode_groups(&mut r, &det, dtype, signed, len, 0, 0, data)?;
        // A well-formed container is consumed exactly: its framing metadata
        // (bit length + element count) and its group contents agree. This is
        // a hard typed error, not a debug assertion, because hostile streams
        // can reach it and the decoder must never panic on input.
        if !r.is_at_end() {
            return Err(CodecError::TrailingBits {
                remaining: r.remaining_bits(),
            });
        }
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::DecodeCalls, 1);
            rec.add(Counter::DecodeValues, data.len() as u64);
        }
        Ok(())
    }

    /// Decodes a raw stream *with* its container-v2 chunk index: validates
    /// the index against the framing metadata, then fans contiguous runs
    /// of chunks out across scoped workers, each parsing its own
    /// range-confined [`BitReader`]. Bit-identical to
    /// [`ShapeShifterCodec::decode_stream`] on well-formed input.
    ///
    /// # Errors
    ///
    /// Same as [`ShapeShifterCodec::decode`]; every index/stream
    /// disagreement surfaces as a typed error before or during the parse —
    /// never a panic, never a silently wrong tensor.
    pub fn decode_stream_indexed(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: FixedType,
        len: usize,
        index: &ChunkIndex,
        threads: usize,
    ) -> Result<Vec<i32>, CodecError> {
        if bit_len > bytes.len() as u64 * 8 {
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bytes.len() as u64 * 8,
            }));
        }
        if len as u64 > bit_len {
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bit_len,
            }));
        }
        index.validate(self.group_size, bit_len, len)?;
        let entries = index.entries();
        let chunk_groups = index.chunk_groups();
        let mut spans = Vec::with_capacity(entries.len());
        let mut value_base = 0usize;
        for (i, e) in entries.iter().enumerate() {
            let end = entries.get(i + 1).map_or(bit_len, |next| next.bit_offset);
            spans.push(ChunkSpan {
                chunk: i,
                start: e.bit_offset,
                end,
                // validate() proved the per-chunk counts sum to `len`.
                // ss-lint: allow(truncating-cast) -- validate() bounds each count by len: usize
                values: e.values as usize,
                value_base,
                group_base: i * chunk_groups,
            });
            value_base += e.values as usize;
        }
        let per_worker = spans.len().div_ceil(threads.max(1)).max(1);
        let parts: Vec<Result<Vec<i32>, CodecError>> = if spans.len() <= per_worker {
            // One worker would get everything: parse on the calling thread.
            vec![self.decode_span_run(bytes, dtype, &spans)]
        } else {
            par::scoped_map(&spans, per_worker, |run| {
                self.decode_span_run(bytes, dtype, run)
            })
        };
        let mut data: Vec<i32> = Vec::with_capacity(len);
        for part in parts {
            data.append(&mut part?);
        }
        // No trailing-bits check is needed here: validate() pins the last
        // span's end to `bit_len` and decode_span_run demands every span
        // be consumed exactly.
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::DecodeCalls, 1);
            rec.add(Counter::DecodeValues, data.len() as u64);
            rec.add(Counter::DecodeIndexHits, 1);
            rec.add(Counter::DecodeChunksFanned, entries.len() as u64);
        }
        Ok(data)
    }

    /// Parses one worker's contiguous run of indexed chunks, confining
    /// each chunk to its own bit range so a corrupt chunk can never read
    /// its neighbour's bits (or starve them).
    fn decode_span_run(
        &self,
        bytes: &[u8],
        dtype: FixedType,
        spans: &[ChunkSpan],
    ) -> Result<Vec<i32>, CodecError> {
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        let total = spans.iter().map(|s| s.values).sum();
        let mut data: Vec<i32> = Vec::with_capacity(total);
        for span in spans {
            let mut r = BitReader::with_bit_range(bytes, span.start, span.end)?;
            self.decode_groups(
                &mut r,
                &det,
                dtype,
                signed,
                span.values,
                span.group_base,
                span.value_base,
                &mut data,
            )?;
            // The chunk must consume its allotted span exactly, for the
            // same reason the sequential parse rejects trailing bits.
            if !r.is_at_end() {
                return Err(CodecError::IndexChunkMismatch {
                    chunk: span.chunk,
                    expected_bits: span.end - span.start,
                    consumed_bits: r.consumed_bits(),
                });
            }
        }
        Ok(data)
    }

    /// Parses `count` values' worth of groups from `r`, appending to
    /// `data` — the group-parse body shared by the sequential parse and
    /// every indexed-chunk worker. `group_base` / `value_base` seed error
    /// positions so chunk-local parses report stream-global indices.
    ///
    /// Payloads are read in bulk: the zero bitmap's popcount gives the
    /// exact number of equal-width fields in the group, which
    /// `BitReader::read_fields` extracts with one unaligned load each
    /// instead of a per-field byte loop; the scatter pass then interleaves
    /// them with the elided zeros, validating each value in stream order
    /// so error indices are unchanged from the scalar parse.
    #[allow(clippy::too_many_arguments)]
    fn decode_groups(
        &self,
        r: &mut BitReader<'_>,
        det: &WidthDetector,
        dtype: FixedType,
        signed: bool,
        count: usize,
        group_base: usize,
        value_base: usize,
        data: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        let prefix_bits = u32::from(det.prefix_bits());
        let start_len = data.len();
        let mut group_idx = group_base;

        // Z vector as packed 64-bit words (group_size <= 256 -> 4 words),
        // read straight off the stream with no per-bit buffer traffic.
        let mut zwords = [0u64; 4];
        let mut fields = [0u64; kernels::MAX_GROUP];
        while data.len() - start_len < count {
            let group_len = (count - (data.len() - start_len)).min(self.group_size);
            // Only the words covering `group_len` are overwritten; zero
            // counting below must therefore walk the same active range
            // (stale words from a longer previous group may follow).
            let mut zeros = 0usize;
            for (word, start) in zwords.iter_mut().zip((0..group_len).step_by(64)) {
                let take = (group_len - start).min(64);
                *word = r.read_bits(take as u32)?;
                // read_bits returns clean high bits, so whole-word
                // popcounts only ever see in-range zero markers.
                zeros += word.count_ones() as usize;
            }
            // The P field stores width-1 in at most 5 bits.
            // ss-lint: allow(truncating-cast) -- prefix field is <= 5 bits wide, value <= 31
            let p = r.read_bits(prefix_bits)? as u8 + 1;
            if p > dtype.bits() {
                return Err(CodecError::WidthExceedsContainer {
                    group: group_idx,
                    width: p,
                    container: dtype.bits(),
                });
            }
            // Bulk-extract every payload field in the group at once; the
            // per-value work below is only scatter + validation.
            let payloads = group_len - zeros.min(group_len);
            let slots = fields.get_mut(..payloads).unwrap_or(&mut []);
            r.read_fields(u32::from(p), slots)?;
            let mut next = slots.iter();
            for (word_idx, word) in zwords.iter().enumerate() {
                let start = word_idx * 64;
                if start >= group_len {
                    break;
                }
                let take = (group_len - start).min(64);
                for bit in 0..take {
                    if word >> bit & 1 == 1 {
                        data.push(0);
                    } else {
                        // The popcount above sized `slots` to the exact
                        // number of clear bits, so the iterator cannot
                        // run dry.
                        let raw = next.next().copied().unwrap_or(0);
                        let v = if signed {
                            width::from_sign_magnitude(raw as u32)
                        } else {
                            raw as i32
                        };
                        if !dtype.contains(v) || v == 0 {
                            // A payload slot decoding to zero is corrupt:
                            // zeros travel in Z, never in the payload.
                            return Err(CodecError::CorruptValue {
                                index: value_base + (data.len() - start_len),
                                value: v,
                            });
                        }
                        checked::canonical_payload(
                            raw,
                            v,
                            p,
                            signed,
                            value_base + (data.len() - start_len),
                        );
                        data.push(v);
                    }
                }
            }
            checked::group_invariants(&zwords, group_len, payloads, p, dtype.bits(), group_idx);
            group_idx += 1;
        }
        Ok(())
    }
}

impl Default for ShapeShifterCodec {
    /// The paper's default group size of 16.
    fn default() -> Self {
        Self::new(16)
    }
}

impl EncodedTensor {
    /// The packed stream bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Exact stream length in bits (the off-chip traffic this tensor
    /// costs under ShapeShifter compression).
    #[must_use]
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    /// Original element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the original tensor was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The original container type.
    #[must_use]
    pub fn dtype(&self) -> FixedType {
        self.dtype
    }

    /// Group size used for encoding.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of encoded groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Bits spent on `Z` vectors and `P` prefixes.
    #[must_use]
    pub fn metadata_bits(&self) -> u64 {
        self.metadata_bits
    }

    /// Bits spent on value payloads.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.payload_bits
    }

    /// The container-v2 chunk index, if the codec's policy wrote one
    /// (`None` for v1 containers).
    #[must_use]
    pub fn index(&self) -> Option<&ChunkIndex> {
        self.index.as_ref()
    }

    /// Serialized size of the chunk index in bits — 0 for v1 containers.
    /// Deliberately **not** part of [`EncodedTensor::bit_len`]: the index
    /// is side metadata, and the traffic accounting the figures report
    /// measures the stream alone.
    #[must_use]
    pub fn index_bits(&self) -> u64 {
        // The size arithmetic cannot overflow for an index the codec
        // built (entry counts are bounded by the tensor length), so the
        // checked path's error collapses to 0 rather than forcing a
        // `Result` onto every accounting caller.
        self.index
            .as_ref()
            .and_then(|i| i.serialized_bits().ok())
            .unwrap_or(0)
    }

    /// Uncompressed footprint in bits.
    #[must_use]
    pub fn uncompressed_bits(&self) -> u64 {
        self.len as u64 * u64::from(self.dtype.bits())
    }

    /// Compression ratio: compressed / uncompressed (lower is better).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.bit_len as f64 / self.uncompressed_bits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dtype: FixedType, vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), dtype, vals).unwrap()
    }

    #[test]
    fn paper_figure6_worked_example() {
        // Figure 6a: two groups of eight 8b values; group A needs 6 bits,
        // group B needs 3.
        let group_a = vec![0x25, 0x00, 0x01, 0x00, 0x07, 0x00, 0x00, 0x3F];
        let group_b = vec![0x01, 0x02, 0x00, 0x00, 0x03, 0x05, 0x00, 0x07];
        let mut vals = group_a;
        vals.extend(&group_b);
        let tensor = t(FixedType::U8, vals);
        let codec = ShapeShifterCodec::new(8);
        let enc = codec.encode(&tensor).unwrap();

        // Group A: Z=8b, P=3b, 4 non-zeros x 6b = 24b -> 35 bits.
        // Group B: Z=8b, P=3b, 5 non-zeros x 3b = 15b -> 26 bits.
        assert_eq!(enc.bit_len(), 35 + 26);
        assert_eq!(enc.metadata_bits(), 2 * (8 + 3));
        assert_eq!(enc.payload_bits(), 4 * 6 + 5 * 3);
        assert_eq!(enc.uncompressed_bits(), 128);
        assert_eq!(codec.decode(&enc).unwrap(), tensor);
    }

    #[test]
    fn paper_metadata_accounting() {
        // "this scheme requires 4 + 16 bits of metadata per group of
        // sixteen 16b values."
        let tensor = t(FixedType::U16, (1..=16).collect());
        let enc = ShapeShifterCodec::new(16).encode(&tensor).unwrap();
        assert_eq!(enc.groups(), 1);
        assert_eq!(enc.metadata_bits(), 16 + 4);
    }

    #[test]
    fn all_zero_tensor_costs_only_metadata() {
        let tensor = t(FixedType::I16, vec![0; 64]);
        let enc = ShapeShifterCodec::new(16).encode(&tensor).unwrap();
        assert_eq!(enc.payload_bits(), 0);
        assert_eq!(enc.bit_len(), 4 * (16 + 4));
        assert_eq!(ShapeShifterCodec::new(16).decode(&enc).unwrap(), tensor);
    }

    #[test]
    fn signed_values_roundtrip() {
        let tensor = t(
            FixedType::I16,
            vec![-32767, 32767, 0, -1, 1, 0, 0, -255, 255, 64, -64, 0, 3, -3, 2, -2],
        );
        let codec = ShapeShifterCodec::default();
        let enc = codec.encode(&tensor).unwrap();
        assert_eq!(codec.decode(&enc).unwrap(), tensor);
    }

    #[test]
    fn partial_final_group_roundtrips() {
        let tensor = t(FixedType::U8, vec![9, 0, 200]);
        let codec = ShapeShifterCodec::new(16);
        let enc = codec.encode(&tensor).unwrap();
        assert_eq!(enc.groups(), 1);
        // Z is only 3 bits wide for the short group.
        assert_eq!(enc.metadata_bits(), 3 + 3);
        assert_eq!(codec.decode(&enc).unwrap(), tensor);
    }

    #[test]
    fn empty_tensor() {
        let tensor = t(FixedType::U8, vec![]);
        let codec = ShapeShifterCodec::new(16);
        let enc = codec.encode(&tensor).unwrap();
        assert_eq!(enc.bit_len(), 0);
        assert!(enc.is_empty());
        assert_eq!(codec.decode(&enc).unwrap(), tensor);
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let tensor = t(FixedType::U16, (100..116).collect());
        let codec = ShapeShifterCodec::new(16);
        let mut enc = codec.encode(&tensor).unwrap();
        enc.bit_len /= 2;
        let err = codec.decode(&enc).unwrap_err();
        assert!(matches!(err, CodecError::Stream(_)), "got {err}");
    }

    #[test]
    fn corrupt_payload_zero_detected() {
        // Hand-craft a stream whose payload slot holds a zero.
        let mut w = BitWriter::new();
        w.write_bits(0b00, 2).unwrap(); // Z: both non-zero
        w.write_bits(0, 3).unwrap(); // P: width 1
        w.write_bits(1, 1).unwrap(); // value 1 (fine)
        w.write_bits(0, 1).unwrap(); // value 0 (corrupt: zeros travel in Z)
        let enc = EncodedTensor {
            bit_len: w.bit_len(),
            bytes: w.into_bytes(),
            len: 2,
            dtype: FixedType::U8,
            group_size: 2,
            groups: 1,
            metadata_bits: 5,
            payload_bits: 2,
            index: None,
        };
        let err = ShapeShifterCodec::new(2).decode(&enc).unwrap_err();
        assert!(matches!(err, CodecError::CorruptValue { index: 1, .. }));
    }

    #[test]
    fn wide_group_width_detected() {
        // A 12-bit container uses a 4-bit P field which can declare widths
        // up to 16: a corrupt header declaring width 16 must be rejected.
        let mut w = BitWriter::new();
        w.write_bits(0b0, 1).unwrap(); // Z: one non-zero value
        w.write_bits(0b1111, 4).unwrap(); // P declares width 16 > container 12
        w.write_bits(0xFFFF, 16).unwrap();
        let enc = EncodedTensor {
            bit_len: w.bit_len(),
            bytes: w.into_bytes(),
            len: 1,
            dtype: FixedType::unsigned(12).unwrap(),
            group_size: 1,
            groups: 1,
            metadata_bits: 5,
            payload_bits: 16,
            index: None,
        };
        let err = ShapeShifterCodec::new(1).decode(&enc).unwrap_err();
        assert!(matches!(
            err,
            CodecError::WidthExceedsContainer {
                width: 16,
                container: 12,
                ..
            }
        ));
    }

    #[test]
    fn smaller_groups_never_hurt_payload() {
        // Finer groups can only reduce each group's width.
        let vals: Vec<i32> = (0..256).map(|i| (i * 37) % 1000).collect();
        let tensor = t(FixedType::U16, vals);
        let p16 = ShapeShifterCodec::new(16)
            .encode(&tensor)
            .unwrap()
            .payload_bits();
        let p256 = ShapeShifterCodec::new(256)
            .encode(&tensor)
            .unwrap()
            .payload_bits();
        assert!(p16 <= p256);
    }

    #[test]
    fn measure_matches_encode_exactly() {
        let vals: Vec<i32> = (0..777).map(|i| ((i * 131) % 4000) - 2000).collect();
        let tensor = t(FixedType::I16, vals);
        for group in [1usize, 7, 16, 64, 256] {
            let codec = ShapeShifterCodec::new(group);
            let enc = codec.encode(&tensor).unwrap();
            let report = codec.measure(&tensor);
            assert_eq!(report.metadata_bits, enc.metadata_bits(), "group {group}");
            assert_eq!(report.payload_bits, enc.payload_bits(), "group {group}");
            assert_eq!(report.groups, enc.groups(), "group {group}");
            assert_eq!(report.total_bits(), enc.bit_len(), "group {group}");
        }
    }

    #[test]
    fn automatic_parallel_path_matches_sequential_oracle() {
        // Large enough to clear PARALLEL_MIN_VALUES so encode()/measure()
        // take the parallel route on multi-core hosts; awkward length so
        // the final chunk ends in a partial group.
        let vals: Vec<i32> = (0..(PARALLEL_MIN_VALUES + 1037))
            .map(|i| ((i * 2_654_435_761) % 4001) as i32 - 2000)
            .collect();
        let tensor = t(FixedType::I16, vals);
        for group in [16usize, 256] {
            let codec = ShapeShifterCodec::new(group);
            let auto = codec.encode(&tensor).unwrap();
            let oracle = codec
                .with_exec(ExecPolicy::Sequential)
                .encode(&tensor)
                .unwrap();
            assert_eq!(auto, oracle, "group {group}");
            let forced = codec
                .with_exec(ExecPolicy::Threads(8))
                .encode(&tensor)
                .unwrap();
            assert_eq!(forced, oracle, "group {group}");
            assert_eq!(
                codec.measure(&tensor),
                codec.with_exec(ExecPolicy::Threads(8)).measure(&tensor)
            );
            assert_eq!(codec.decode(&forced).unwrap(), tensor);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn with_threads_shims_delegate_to_exec_policy() {
        // The deprecated `*_with_threads` names must stay exact aliases
        // of the ExecPolicy-driven API until they are removed.
        let vals: Vec<i32> = (0..5000).map(|i| ((i * 97) % 600) - 300).collect();
        let tensor = t(FixedType::I16, vals);
        let codec = ShapeShifterCodec::new(16);
        for threads in [1usize, 4] {
            let via_policy = codec.with_exec(ExecPolicy::Threads(threads));
            let shim = codec.encode_with_threads(&tensor, threads).unwrap();
            assert_eq!(shim, via_policy.encode(&tensor).unwrap());
            assert_eq!(
                codec.measure_with_threads(&tensor, threads),
                via_policy.measure(&tensor).into()
            );
            assert_eq!(
                codec.decode_with_threads(&shim, threads).unwrap(),
                via_policy.decode(&shim).unwrap()
            );
        }
    }

    #[test]
    fn ratio_reflects_compression() {
        let tensor = t(FixedType::U16, vec![1; 160]);
        let enc = ShapeShifterCodec::new(16).encode(&tensor).unwrap();
        assert!(enc.ratio() < 0.2, "ratio {}", enc.ratio());
    }
}
