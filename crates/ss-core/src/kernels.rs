//! Word-parallel hot-path kernels: the software analogue of the paper's
//! Figure 5c width-detection hardware.
//!
//! The hardware gets group widths almost for free — one OR tree per bit
//! position plus a leading-1 detector. A scalar software loop pays a
//! compare-and-max (or an OR) per *value*. These kernels recover most of
//! the hardware's parallelism on a 64-bit machine:
//!
//! * [`scan_group`] makes a single fused pass over a group, packing two
//!   32-bit sign-magnitude encodings per 64-bit lane and OR-ing lanes
//!   together, while simultaneously building the group's zero bit-vector
//!   `Z` as whole `u64` words. One lane fold and one `leading_zeros` at
//!   the end yield the group width; the Z words go to
//!   `BitWriter::write_words` without any per-value bit pushes.
//! * [`gather_nonzero`] compacts the non-zero payload encodings of a group
//!   into a dense field buffer for `BitWriter::pack_fields`, without a
//!   branch per value.
//!
//! The scalar equivalents (`ss_tensor::width::group_width_scalar`, the
//! per-value loops retained in [`WidthDetector`](crate::WidthDetector))
//! stay in the tree as the differential-test oracle; the
//! `kernel_differential` suite pins these kernels against them.

use ss_tensor::Signedness;

/// Largest group the fixed-size scan buffers cover. The container format
/// caps groups at 256 values, so four `u64` zero-bitmap words suffice.
pub const MAX_GROUP: usize = 256;

/// The result of one fused pass over a group: its zero bit-vector as
/// whole words, and the OR of all (sign-magnitude) value encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupScan {
    /// Zero bit-vector, LSB-first: bit `i` of `z[i / 64]` is 1 iff value
    /// `i` of the group is zero. Words beyond the group length are zero.
    pub z: [u64; 4],
    /// OR of the sign-magnitude encodings of every value in the group —
    /// the outputs of Figure 5c's per-bit OR trees.
    pub or: u32,
}

impl GroupScan {
    /// The detected group width: position of the leading 1 across the OR
    /// signals, plus one. Zero for an all-zero group.
    #[must_use]
    pub fn width(&self) -> u8 {
        // ss-lint: allow(truncating-cast) -- 32 - leading_zeros of a u32 is in 0..=32
        (32 - self.or.leading_zeros()) as u8
    }

    /// The width as stored in the container's `P` field: `width - 1`,
    /// with all-zero groups pinned to the smallest encoding.
    #[must_use]
    pub fn encoded_width(&self) -> u8 {
        self.width().max(1) - 1
    }

    /// Number of zero values in the group (popcount of the Z words).
    #[must_use]
    pub fn zero_count(&self) -> u32 {
        let [a, b, c, d] = self.z;
        a.count_ones() + b.count_ones() + c.count_ones() + d.count_ones()
    }
}

/// Scans a group once, producing its zero bit-vector as whole `u64` words
/// and the OR-fold of its sign-magnitude encodings.
///
/// Zeros never assert the sign wire: a zero value contributes `0` to the
/// OR in both signedness modes (the codec elides zeros entirely, so they
/// must not force a 1 into bit position 0).
///
/// Groups longer than [`MAX_GROUP`] values are not representable in the
/// container format; the tail beyond 256 values is ignored in release
/// builds and asserts in debug builds.
#[must_use]
pub fn scan_group(values: &[i32], signedness: Signedness) -> GroupScan {
    debug_assert!(
        values.len() <= MAX_GROUP,
        "group of {} values exceeds the {MAX_GROUP}-value container cap",
        values.len()
    );
    match signedness {
        Signedness::Unsigned => scan_with(values, encode_unsigned),
        Signedness::Signed => scan_with(values, encode_signed),
    }
}

/// Compacts the sign-magnitude encodings of the group's non-zero values
/// into the front of `out`, returning how many there are.
///
/// The loop is branch-free in the common case: every value's encoding is
/// written, and the cursor only advances past slots holding non-zeros, so
/// zeros are overwritten by the next value instead of branching. `out`
/// must be at least as long as `values` (a `[u64; MAX_GROUP]` scratch
/// buffer covers every legal group).
#[must_use]
pub fn gather_nonzero(values: &[i32], signedness: Signedness, out: &mut [u64]) -> usize {
    debug_assert!(
        out.len() >= values.len(),
        "gather buffer of {} slots cannot hold a {}-value group",
        out.len(),
        values.len()
    );
    match signedness {
        Signedness::Unsigned => gather_with(values, out, encode_unsigned),
        Signedness::Signed => gather_with(values, out, encode_signed),
    }
}

/// [`scan_group`] and [`gather_nonzero`] fused into one pass: each value
/// is loaded and encoded exactly once, feeding the zero bitmap, the OR
/// lanes, *and* the compacted payload buffer — the shape the encoder's
/// per-group hot loop wants. Returns the scan and the non-zero count.
///
/// Equivalent by construction to calling the two kernels separately
/// (pinned by a unit test below); the same buffer-length contract as
/// [`gather_nonzero`] applies.
#[must_use]
pub fn scan_gather(values: &[i32], signedness: Signedness, out: &mut [u64]) -> (GroupScan, usize) {
    debug_assert!(
        values.len() <= MAX_GROUP,
        "group of {} values exceeds the {MAX_GROUP}-value container cap",
        values.len()
    );
    debug_assert!(
        out.len() >= values.len(),
        "gather buffer of {} slots cannot hold a {}-value group",
        out.len(),
        values.len()
    );
    match signedness {
        Signedness::Unsigned => scan_gather_with(values, out, encode_unsigned),
        Signedness::Signed => scan_gather_with(values, out, encode_signed),
    }
}

fn scan_gather_with(
    values: &[i32],
    out: &mut [u64],
    enc: impl Fn(i32) -> u32 + Copy,
) -> (GroupScan, usize) {
    let mut z = [0u64; 4];
    let mut lanes = 0u64;
    let mut n = 0usize;
    for (slot, chunk) in z.iter_mut().zip(values.chunks(64)) {
        let mut zw = 0u64;
        for (bit, &v) in chunk.iter().enumerate() {
            // ss-lint: allow(truncating-cast) -- enumerate over <= 64 items
            let bit = bit as u32;
            let e = enc(v);
            // Alternate encodings between the low and high 32-bit lane;
            // only the OR matters, so placement order is free.
            lanes |= u64::from(e) << ((bit & 1) << 5);
            zw |= u64::from(v == 0) << bit;
            if let Some(s) = out.get_mut(n) {
                *s = u64::from(e);
            }
            n += usize::from(v != 0);
        }
        *slot = zw;
    }
    // ss-lint: allow(truncating-cast) -- folding the two 32-bit lanes is the point
    let or = (lanes | (lanes >> 32)) as u32;
    (GroupScan { z, or }, n)
}

/// Zero bitmap of up to 64 values as one word: bit `i` is 1 iff
/// `values[i] == 0`. Bits at and above `values.len()` are 0. This is the
/// single-word form of the extractor fused into [`scan_group`], for
/// callers (like the zero-RLE token counter) that only need `Z`.
#[must_use]
pub fn zero_bitmap64(values: &[i32]) -> u64 {
    debug_assert!(values.len() <= 64, "bitmap word holds at most 64 values");
    let mut z = 0u64;
    for (i, &v) in values.iter().take(64).enumerate() {
        // ss-lint: allow(truncating-cast) -- enumerate over <= 64 items
        // ss-lint: allow(shift-bound) -- take(64) bounds i < 64
        z |= u64::from(v == 0) << (i as u32);
    }
    z
}

/// Sign-magnitude encoding used on the wire for signed containers: the
/// magnitude shifted up one, with the sign at the least-significant place
/// (paper §3). Zero encodes to 0 and never asserts the sign bit.
#[inline]
fn encode_signed(v: i32) -> u32 {
    (v.unsigned_abs() << 1) | u32::from(v < 0)
}

/// Unsigned containers store the value verbatim.
#[inline]
fn encode_unsigned(v: i32) -> u32 {
    debug_assert!(v >= 0, "negative value {v} in an unsigned container");
    v.unsigned_abs()
}

fn scan_with(values: &[i32], enc: impl Fn(i32) -> u32 + Copy) -> GroupScan {
    let mut z = [0u64; 4];
    let mut lanes = 0u64;
    for (slot, chunk) in z.iter_mut().zip(values.chunks(64)) {
        let mut zw = 0u64;
        let mut bit = 0u32;
        let mut pairs = chunk.chunks_exact(2);
        for pair in &mut pairs {
            if let [a, b] = *pair {
                lanes |= u64::from(enc(a)) | (u64::from(enc(b)) << 32);
                // ss-lint: allow(shift-bound) -- bit advances by 2 per pair of a <= 64-item chunk, so bit <= 62 and bit + 1 <= 63
                zw |= (u64::from(a == 0) << bit) | (u64::from(b == 0) << (bit + 1));
                bit += 2;
            }
        }
        for &v in pairs.remainder() {
            lanes |= u64::from(enc(v));
            // ss-lint: allow(shift-bound) -- bit < chunk.len() <= 64 when the remainder item exists, so bit <= 63
            zw |= u64::from(v == 0) << bit;
            bit += 1;
        }
        *slot = zw;
    }
    // ss-lint: allow(truncating-cast) -- folding the two 32-bit lanes is the point
    let or = (lanes | (lanes >> 32)) as u32;
    GroupScan { z, or }
}

fn gather_with(values: &[i32], out: &mut [u64], enc: impl Fn(i32) -> u32 + Copy) -> usize {
    let mut n = 0usize;
    for &v in values {
        if let Some(slot) = out.get_mut(n) {
            *slot = u64::from(enc(v));
        }
        n += usize::from(v != 0);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::width;

    fn scalar_zero_bitmap(values: &[i32]) -> [u64; 4] {
        let mut z = [0u64; 4];
        for (i, &v) in values.iter().enumerate() {
            if v == 0 {
                z[i / 64] |= 1u64 << (i % 64);
            }
        }
        z
    }

    #[test]
    fn scan_matches_scalar_width_and_bitmap() {
        let groups: [&[i32]; 6] = [
            &[],
            &[0, 0, 0, 0],
            &[3, 0, -1, 0, 0, 0, 200, -7],
            &[-32768, 32767],
            &[1; 17],
            &[0, 5, 0, 0, 9, 0, 0, 0, 0, 0, 0, 1],
        ];
        for g in groups {
            let scan = scan_group(g, Signedness::Signed);
            assert_eq!(
                scan.width(),
                width::group_width_scalar(g, Signedness::Signed),
                "width of {g:?}"
            );
            assert_eq!(scan.z, scalar_zero_bitmap(g), "bitmap of {g:?}");
            assert_eq!(
                u64::from(scan.zero_count()),
                g.iter().filter(|&&v| v == 0).count() as u64
            );
        }
    }

    #[test]
    fn scan_covers_full_256_value_groups() {
        let values: Vec<i32> = (0..256).map(|i| if i % 3 == 0 { 0 } else { i - 128 }).collect();
        let scan = scan_group(&values, Signedness::Signed);
        assert_eq!(scan.z, scalar_zero_bitmap(&values));
        assert_eq!(
            scan.width(),
            width::group_width_scalar(&values, Signedness::Signed)
        );
    }

    #[test]
    fn zeros_do_not_assert_the_sign_wire() {
        let scan = scan_group(&[0, 0, 0], Signedness::Signed);
        assert_eq!(scan.or, 0);
        assert_eq!(scan.width(), 0);
        assert_eq!(scan.encoded_width(), 0);
        assert_eq!(scan.zero_count(), 3);
    }

    #[test]
    fn unsigned_values_stored_verbatim() {
        let scan = scan_group(&[0b0001, 0b0100], Signedness::Unsigned);
        assert_eq!(scan.or, 0b0101);
        assert_eq!(scan.width(), 3);
    }

    #[test]
    fn gather_compacts_nonzeros_in_order() {
        let mut out = [0u64; MAX_GROUP];
        let n = gather_nonzero(&[3, 0, -1, 0, 0, 0, 200, -7], Signedness::Signed, &mut out);
        assert_eq!(n, 4);
        let expect: Vec<u64> = [3, -1, 200, -7]
            .iter()
            .map(|&v: &i32| u64::from(width::to_sign_magnitude(v)))
            .collect();
        assert_eq!(&out[..n], expect.as_slice());
    }

    #[test]
    fn scan_gather_equals_the_two_kernels() {
        let groups: [&[i32]; 5] = [
            &[],
            &[0; 16],
            &[3, 0, -1, 0, 0, 0, 200, -7],
            &[-32768, 32767, 0, 1],
            &[7; 130],
        ];
        for signedness in [Signedness::Unsigned, Signedness::Signed] {
            for g in groups {
                if signedness == Signedness::Unsigned && g.iter().any(|&v| v < 0) {
                    continue;
                }
                let mut fused = [0u64; MAX_GROUP];
                let mut separate = [0u64; MAX_GROUP];
                let (scan, n) = scan_gather(g, signedness, &mut fused);
                assert_eq!(scan, scan_group(g, signedness), "{g:?} ({signedness:?})");
                let m = gather_nonzero(g, signedness, &mut separate);
                assert_eq!(n, m, "{g:?}");
                assert_eq!(fused[..n], separate[..m], "{g:?}");
            }
        }
    }

    #[test]
    fn zero_bitmap64_matches_scalar() {
        let values = [3, 0, -1, 0, 0, 0, 200, -7, 0];
        assert_eq!(zero_bitmap64(&values), scalar_zero_bitmap(&values)[0]);
        assert_eq!(zero_bitmap64(&[]), 0);
        assert_eq!(zero_bitmap64(&[0; 64]), u64::MAX);
    }

    #[test]
    fn gather_handles_all_zero_and_all_nonzero() {
        let mut out = [0u64; MAX_GROUP];
        assert_eq!(gather_nonzero(&[0; 16], Signedness::Signed, &mut out), 0);
        let n = gather_nonzero(&[7; 16], Signedness::Unsigned, &mut out);
        assert_eq!(n, 16);
        assert!(out[..n].iter().all(|&f| f == 7));
    }
}
