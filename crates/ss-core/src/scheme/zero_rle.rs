//! Zero run-length compression as used by Eyeriss and SCNN — the
//! paper's "Zero compression" bars.

use ss_tensor::{Tensor, TensorStats};

use crate::kernels;
use crate::scheme::{CompressionScheme, SchemeCtx};

/// Zero run-length encoding: the stream is a sequence of
/// `(run, value)` tokens where `run` counts the zeros preceding `value`,
/// in `run_bits` bits (Eyeriss uses 5-bit runs for 16-bit data). Runs
/// longer than the field encodes are split with explicit zero values, and
/// trailing zeros cost a final token.
///
/// Unlike ShapeShifter this scheme can *expand* dense data — every
/// non-zero value pays the run field on top of its full-width container —
/// which is exactly what Figure 8a shows on the TF-quantized models whose
/// zero population the quantizer destroyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZeroRle {
    run_bits: u8,
}

impl ZeroRle {
    /// Creates the scheme with the given run-length field width.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= run_bits <= 16`.
    #[must_use]
    pub fn new(run_bits: u8) -> Self {
        assert!(
            (1..=16).contains(&run_bits),
            "run field width {run_bits} outside 1..=16"
        );
        Self { run_bits }
    }

    /// Maximum zero-run a single token can express.
    #[must_use]
    pub fn max_run(&self) -> u64 {
        (1 << self.run_bits) - 1
    }

    /// Number of `(run, value)` tokens needed for a value slice.
    ///
    /// Counted a bitmap word at a time: [`kernels::zero_bitmap64`] turns
    /// 64 values into one zero mask, and each non-zero position is
    /// visited by clearing trailing set bits — a run of `L` zeros before
    /// a value contributes `L / (max_run + 1)` saturated `(max_run, 0)`
    /// tokens plus the value's own token, with runs carried across word
    /// boundaries. Equivalent to the per-value state machine retained in
    /// [`ZeroRle::token_count_scalar`], the differential-test reference.
    #[must_use]
    pub fn token_count(&self, values: &[i32]) -> u64 {
        // One saturated token consumes max_run zeros plus the explicit
        // zero travelling in its value slot.
        let span = self.max_run() + 1;
        let mut tokens = 0u64;
        let mut run = 0u64;
        for chunk in values.chunks(64) {
            let used = chunk.len() as u64;
            let mask = if used == 64 { u64::MAX } else { (1u64 << used) - 1 };
            let mut nz = !kernels::zero_bitmap64(chunk) & mask;
            let mut pos = 0u64;
            while nz != 0 {
                let i = u64::from(nz.trailing_zeros());
                // Positions pos..i are all zeros: the carried run ends at
                // this value.
                let zeros = run + (i - pos);
                tokens += zeros / span + 1;
                run = 0;
                pos = i + 1;
                nz &= nz - 1;
            }
            run += used - pos;
        }
        if run > 0 {
            // Trailing zeros: full saturated tokens plus a terminator for
            // the remainder.
            tokens += run / span + u64::from(!run.is_multiple_of(span));
        }
        tokens
    }

    /// The per-value reference implementation of
    /// [`ZeroRle::token_count`]: a literal transcription of the token
    /// state machine, kept as the oracle the word-parallel counter is
    /// differential-tested against.
    #[must_use]
    pub fn token_count_scalar(&self, values: &[i32]) -> u64 {
        let max_run = self.max_run();
        let mut tokens = 0u64;
        let mut run = 0u64;
        for &v in values {
            if v == 0 {
                if run == max_run {
                    // The run field is saturated: this zero travels in the
                    // token's value slot, closing a (max_run, 0) token.
                    tokens += 1;
                    run = 0;
                } else {
                    run += 1;
                }
            } else {
                tokens += 1;
                run = 0;
            }
        }
        if run > 0 {
            tokens += 1; // trailing zeros need a terminator token
        }
        tokens
    }
}

impl Default for ZeroRle {
    /// Eyeriss's 5-bit run-length field.
    fn default() -> Self {
        Self::new(5)
    }
}

impl CompressionScheme for ZeroRle {
    fn name(&self) -> &str {
        "Zero compression"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        self.token_count(tensor.values())
            * (u64::from(self.run_bits) + u64::from(tensor.dtype().bits()))
    }

    fn compressed_bits_from_stats(&self, stats: &TensorStats, _ctx: &SchemeCtx) -> Option<u64> {
        Some(
            stats.zero_rle_tokens(self.max_run())
                * (u64::from(self.run_bits) + u64::from(stats.dtype().bits())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap()
    }

    #[test]
    fn dense_data_expands() {
        let tensor = t(vec![1; 32]);
        let scheme = ZeroRle::default();
        let ratio = scheme.ratio(&tensor, &SchemeCtx::unprofiled());
        assert!(ratio > 1.0, "dense data must expand, ratio {ratio}");
        assert_eq!(
            scheme.compressed_bits(&tensor, &SchemeCtx::unprofiled()),
            32 * (5 + 16)
        );
    }

    #[test]
    fn sparse_data_compresses() {
        let mut vals = vec![0i32; 31];
        vals.push(9);
        let tensor = t(vals);
        let scheme = ZeroRle::default();
        // One token: run 31 + value 9.
        assert_eq!(scheme.token_count(tensor.values()), 1);
        assert!(scheme.ratio(&tensor, &SchemeCtx::unprofiled()) < 0.05);
    }

    #[test]
    fn run_saturation_splits_tokens() {
        let scheme = ZeroRle::default();
        // 31 zeros fill the 5-bit run field; the 32nd travels as an
        // explicit zero value, then 5 needs its own token.
        let mut vals = vec![0i32; 31];
        vals.push(0); // saturating zero becomes the token's value
        vals.push(5);
        assert_eq!(scheme.token_count(&vals), 2);
        // Exactly 31 zeros + a value still fits one token.
        let mut vals = vec![0i32; 31];
        vals.push(5);
        assert_eq!(scheme.token_count(&vals), 1);
    }

    #[test]
    fn trailing_zeros_cost_a_token() {
        let scheme = ZeroRle::default();
        assert_eq!(scheme.token_count(&[1, 0, 0]), 2);
        assert_eq!(scheme.token_count(&[0, 0]), 1);
        assert_eq!(scheme.token_count(&[]), 0);
    }

    #[test]
    fn long_zero_tensor() {
        let scheme = ZeroRle::new(2); // max run 3
        // 8 zeros: (3,0) consumes 4, (3,0) consumes 4 -> 2 tokens.
        assert_eq!(scheme.token_count(&[0; 8]), 2);
        // 9 zeros: 2 full tokens + 1 trailing zero -> 3 tokens.
        assert_eq!(scheme.token_count(&[0; 9]), 3);
    }

    #[test]
    fn bitmap_counter_matches_scalar_reference() {
        // Runs that straddle 64-value bitmap words, saturate multiple
        // times, start at position 0, and trail off the end.
        let mut vals = vec![0i32; 70];
        vals.push(5);
        vals.extend_from_slice(&[1, 0, 0, 0, 0, 0, 0, 0, 2]);
        vals.extend(vec![0i32; 130]);
        vals.push(-3);
        vals.extend(vec![0i32; 65]);
        for run_bits in [1u8, 2, 5, 16] {
            let scheme = ZeroRle::new(run_bits);
            assert_eq!(
                scheme.token_count(&vals),
                scheme.token_count_scalar(&vals),
                "run_bits {run_bits}"
            );
            assert_eq!(scheme.token_count(&[]), scheme.token_count_scalar(&[]));
        }
    }
}
