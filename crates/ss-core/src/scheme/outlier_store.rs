//! Outlier-aware storage formats (Park et al.), the comparison points of
//! the paper's Figure 16.

use ss_quant::OutlierQuantized;

/// Bits per outlier in both schemes: "16b for the value and 16 for the
/// position index" (paper §5.4).
const OUTLIER_BITS: u64 = 32;

/// The plain outlier-aware storage format: every common value (zeros
/// included) at the short width, outliers at 32 bits each.
#[must_use]
pub fn outlier_aware_bits(oq: &OutlierQuantized) -> u64 {
    let common = (oq.tensor().len() - oq.outlier_count()) as u64;
    common * u64::from(oq.common_bits()) + oq.outlier_count() as u64 * OUTLIER_BITS
}

/// Outlier-aware with zero skipping: one flag bit per non-outlier value;
/// zero common values cost only the flag, non-zero common values the flag
/// plus the short width. Outliers cost 32 bits.
#[must_use]
pub fn outlier_aware_zs_bits(oq: &OutlierQuantized) -> u64 {
    let t = oq.tensor();
    let non_outlier = (t.len() - oq.outlier_count()) as u64;
    let zeros = t.num_zero() as u64;
    let nonzero_common = non_outlier - zeros;
    non_outlier + nonzero_common * u64::from(oq.common_bits())
        + oq.outlier_count() as u64 * OUTLIER_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_quant::OutlierAwareQuantizer;
    use ss_tensor::{FixedType, Shape, Tensor};

    fn quantized(vals: Vec<i32>) -> OutlierQuantized {
        let t = Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap();
        OutlierAwareQuantizer::new(4, 0.25).unwrap().quantize(&t).unwrap()
    }

    #[test]
    fn plain_format_accounting() {
        // 4 values, threshold lands on the max -> 1 outlier, 3 common.
        let oq = quantized(vec![1, 2, 0, 30_000]);
        assert_eq!(oq.outlier_count(), 1);
        assert_eq!(outlier_aware_bits(&oq), 3 * 4 + 32);
    }

    #[test]
    fn zs_format_charges_flags_and_skips_zeros() {
        let oq = quantized(vec![1, 2, 0, 30_000]);
        // After quantization 1 and 2 may round to 0 at this scale; count
        // what actually survived.
        let zeros = oq.tensor().num_zero() as u64;
        let nonzero_common = 3 - zeros;
        assert_eq!(
            outlier_aware_zs_bits(&oq),
            3 + nonzero_common * 4 + 32
        );
    }

    #[test]
    fn zs_beats_plain_on_sparse_data() {
        let mut vals = vec![0i32; 94];
        vals.extend([5_000, 6_000, 7_000, 8_000, 9_000, 30_000]);
        let oq = quantized(vals);
        assert!(outlier_aware_zs_bits(&oq) < outlier_aware_bits(&oq));
    }

    #[test]
    fn plain_beats_zs_on_dense_data() {
        let vals: Vec<i32> = (1..=100).map(|i| i * 100).collect();
        let oq = quantized(vals);
        // Dense: the per-value flag is pure overhead.
        assert!(outlier_aware_bits(&oq) < outlier_aware_zs_bits(&oq));
    }
}
