//! Diffy-style delta encoding on top of the ShapeShifter container.
//!
//! The paper's related work notes "Diffy improves upon ShapeShifter by
//! using it to encode activations as deltas … exploit[ing] the spatial
//! value correlation found in the activation values of neural networks
//! implementing computational imaging tasks" (§6). This module implements
//! that extension: within each group the first value is stored absolutely
//! and the rest as differences from their predecessor, then the group is
//! packed with the usual `(Z, P, payload)` container. Correlated
//! neighbours produce small deltas — narrower groups — while the
//! group-local encoding preserves ShapeShifter's sequential-decode and
//! per-group random-access properties.

use ss_bitio::{BitReader, BitWriter};
use ss_tensor::{width, Tensor};

use crate::scheme::{CompressionScheme, SchemeCtx};
use crate::CodecError;

/// Delta-ShapeShifter compression.
///
/// Deltas of `b`-bit values need up to `b + 1` bits of sign-magnitude
/// (magnitude up to the container maximum plus a sign), so the width
/// prefix is one bit wider than plain ShapeShifter's and the scheme only
/// pays off when values actually correlate — on uncorrelated data it is
/// slightly *worse* than [`crate::scheme::ShapeShifterScheme`], exactly
/// the trade Diffy makes by specializing for imaging workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeltaShapeShifter {
    group_size: usize,
}

impl DeltaShapeShifter {
    /// Creates the scheme at the given group size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256.
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        assert!(
            (1..=256).contains(&group_size),
            "group size {group_size} outside 1..=256"
        );
        Self { group_size }
    }

    /// The configured group size.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Width-prefix bits: group widths range over `0..=container+1`.
    fn prefix_bits(container_bits: u8) -> u32 {
        u32::from(8 - (container_bits).leading_zeros() as u8)
    }

    /// The per-group deltas for positions `1..`: `v[i] - v[i-1]`. The
    /// absolute first value is stored separately at container width so
    /// its magnitude does not inflate the shared delta width `P`.
    fn deltas(group: &[i32]) -> Vec<i32> {
        group.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Fused accounting scan of one group's deltas: the OR-fold of their
    /// sign-magnitude encodings (whose leading 1 gives the shared delta
    /// width, exactly as the Figure 5c detector would) and the non-zero
    /// delta count, in one pass with no materialized delta buffer —
    /// [`DeltaShapeShifter::compressed_bits`] runs this over
    /// multi-million-value layers. Zero deltas encode to 0 and so never
    /// assert the sign wire, matching the encoder's Z elision.
    fn delta_scan(group: &[i32]) -> (u8, u64) {
        let mut or = 0u32;
        let mut nonzero = 0u64;
        for w in group.windows(2) {
            if let [a, b] = *w {
                let d = b - a;
                or |= width::to_sign_magnitude(d);
                nonzero += u64::from(d != 0);
            }
        }
        // ss-lint: allow(truncating-cast) -- 32 - leading_zeros of a u32 is in 0..=32
        ((32 - or.leading_zeros()) as u8, nonzero)
    }

    /// Encodes a tensor into a delta stream.
    ///
    /// # Errors
    ///
    /// Propagates internal bit-packing failures (unreachable for valid
    /// tensors).
    pub fn encode(&self, tensor: &Tensor) -> Result<(Vec<u8>, u64), CodecError> {
        let mut w = BitWriter::new();
        self.encode_into(tensor, &mut w)?;
        Ok((w.as_bytes().to_vec(), w.bit_len()))
    }

    /// Appends `tensor`'s delta stream to an existing writer — the
    /// registry/session path, bit-identical to
    /// [`DeltaShapeShifter::encode`] (which is a thin wrapper over it).
    ///
    /// The writer is *not* cleared: the caller owns framing. Returns the
    /// bits this call appended.
    ///
    /// # Errors
    ///
    /// Propagates internal bit-packing failures (unreachable for valid
    /// tensors).
    pub fn encode_into(&self, tensor: &Tensor, w: &mut BitWriter) -> Result<u64, CodecError> {
        let prefix_bits = Self::prefix_bits(tensor.dtype().bits());
        let container = u32::from(tensor.dtype().bits()) + 1; // sign-magnitude slot
        let start = w.bit_len();
        for group in tensor.groups(self.group_size)? {
            let deltas = Self::deltas(group);
            // Z: position 0 marks a zero first value, positions 1.. mark
            // zero deltas (repeated values).
            let mut zeros: Vec<bool> = Vec::with_capacity(group.len());
            zeros.push(group[0] == 0);
            zeros.extend(deltas.iter().map(|&d| d == 0));
            for chunk in zeros.chunks(64) {
                let mut z = 0u64;
                for (i, &is_zero) in chunk.iter().enumerate() {
                    if is_zero {
                        z |= 1 << i;
                    }
                }
                w.write_bits(z, chunk.len() as u32)?;
            }
            // Absolute first value, full container width (if non-zero).
            if group[0] != 0 {
                w.write_bits(u64::from(width::to_sign_magnitude(group[0])), container)?;
            }
            // Deltas are always signed regardless of the source container.
            let p = width::group_width(&deltas, ss_tensor::Signedness::Signed);
            w.write_bits(u64::from(p.max(1) - 1), prefix_bits)?;
            for &d in deltas.iter().filter(|&&d| d != 0) {
                w.write_bits(u64::from(width::to_sign_magnitude(d)), u32::from(p))?;
            }
        }
        Ok(w.bit_len() - start)
    }

    /// Decodes a delta stream produced by [`DeltaShapeShifter::encode`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::Stream`] on truncation.
    /// * [`CodecError::CorruptValue`] if a reconstructed value leaves the
    ///   container.
    pub fn decode(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: ss_tensor::FixedType,
        len: usize,
    ) -> Result<Vec<i32>, CodecError> {
        let mut out: Vec<i32> = Vec::new();
        self.decode_into(bytes, bit_len, dtype, len, &mut out)?;
        Ok(out)
    }

    /// Decodes a delta stream into a caller-owned buffer (cleared first) —
    /// the body behind [`DeltaShapeShifter::decode`] and the
    /// registry/session path, so scratch reuse and the one-shot API decode
    /// identically by construction.
    ///
    /// # Errors
    ///
    /// Same as [`DeltaShapeShifter::decode`].
    pub fn decode_into(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: ss_tensor::FixedType,
        len: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        out.clear();
        let prefix_bits = Self::prefix_bits(dtype.bits());
        let container = u32::from(dtype.bits()) + 1;
        if bit_len > bytes.len() as u64 * 8 || len as u64 > bit_len {
            // Inconsistent framing metadata: the stream cannot hold `len`
            // values (every value costs at least its Z bit).
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bit_len.min(bytes.len() as u64 * 8),
            }));
        }
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        out.reserve(len);
        while out.len() < len {
            let group_len = (len - out.len()).min(self.group_size);
            let mut zbits: Vec<bool> = Vec::with_capacity(group_len);
            let mut remaining = group_len;
            while remaining > 0 {
                let take = remaining.min(64);
                let z = r.read_bits(take as u32)?;
                for i in 0..take {
                    zbits.push(z >> i & 1 == 1);
                }
                remaining -= take;
            }
            let first = if zbits[0] {
                0
            } else {
                let raw = r.read_bits(container)?;
                width::from_sign_magnitude(raw as u32)
            };
            let p = r.read_bits(prefix_bits)? as u8 + 1;
            let mut prev = first;
            for (i, &is_zero) in zbits.iter().enumerate() {
                let v = if i == 0 {
                    first
                } else if is_zero {
                    prev
                } else {
                    let raw = r.read_bits(u32::from(p))?;
                    prev + width::from_sign_magnitude(raw as u32)
                };
                if !dtype.contains(v) {
                    return Err(CodecError::CorruptValue {
                        index: out.len(),
                        value: v,
                    });
                }
                out.push(v);
                prev = v;
            }
        }
        Ok(())
    }
}

impl Default for DeltaShapeShifter {
    /// The paper's group size of 16.
    fn default() -> Self {
        Self::new(16)
    }
}

impl CompressionScheme for DeltaShapeShifter {
    fn name(&self) -> &str {
        "Delta-ShapeShifter"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        let prefix_bits = u64::from(Self::prefix_bits(tensor.dtype().bits()));
        let container = u64::from(tensor.dtype().bits()) + 1;
        let mut bits = 0u64;
        for group in tensor.values().chunks(self.group_size) {
            let (p, nonzero) = Self::delta_scan(group);
            let first = if group[0] != 0 { container } else { 0 };
            bits += group.len() as u64
                + first
                + prefix_bits
                + u64::from(p.max(1)) * nonzero;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ShapeShifterScheme;
    use ss_tensor::{FixedType, Shape};

    fn t(dtype: FixedType, vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), dtype, vals).unwrap()
    }

    /// A spatially smooth signal: a bounded random walk, the correlation
    /// structure Diffy exploits in imaging activations.
    fn correlated(n: usize) -> Vec<i32> {
        let mut v = Vec::with_capacity(n);
        let mut x: i64 = 1000;
        let mut state = 0x12345u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let step = ((state >> 33) % 15) as i64 - 7;
            x = (x + step).clamp(0, 65_535);
            v.push(x as i32);
        }
        v
    }

    #[test]
    fn roundtrip_on_correlated_data() {
        let tensor = t(FixedType::U16, correlated(500));
        let d = DeltaShapeShifter::default();
        let (bytes, bits) = d.encode(&tensor).unwrap();
        let back = d.decode(&bytes, bits, tensor.dtype(), tensor.len()).unwrap();
        assert_eq!(back, tensor.values());
    }

    #[test]
    fn roundtrip_on_signed_data() {
        let vals = vec![-100, -98, -97, 0, 5, 4, 4, 4, 300, 301, -32767, -32760];
        let tensor = t(FixedType::I16, vals);
        let d = DeltaShapeShifter::new(4);
        let (bytes, bits) = d.encode(&tensor).unwrap();
        let back = d.decode(&bytes, bits, tensor.dtype(), tensor.len()).unwrap();
        assert_eq!(back, tensor.values());
    }

    #[test]
    fn accounting_matches_encoding() {
        let tensor = t(FixedType::U16, correlated(333));
        let d = DeltaShapeShifter::default();
        let (_, bits) = d.encode(&tensor).unwrap();
        assert_eq!(bits, d.compressed_bits(&tensor, &SchemeCtx::unprofiled()));
    }

    #[test]
    fn beats_plain_shapeshifter_on_correlated_data() {
        // The Diffy claim: correlation turns wide values into narrow
        // deltas.
        let tensor = t(FixedType::U16, correlated(4096));
        let ctx = SchemeCtx::unprofiled();
        let delta_bits = DeltaShapeShifter::default().compressed_bits(&tensor, &ctx);
        let plain_bits = ShapeShifterScheme::default().compressed_bits(&tensor, &ctx);
        assert!(
            (delta_bits as f64) < plain_bits as f64 / 1.5,
            "delta {delta_bits} vs plain {plain_bits}"
        );
    }

    #[test]
    fn loses_to_plain_shapeshifter_on_uncorrelated_data() {
        // No correlation, no gain — and the first-value overhead costs.
        let vals: Vec<i32> = (0..4096).map(|i| (i * 48_271) % 4096).collect();
        let tensor = t(FixedType::U16, vals);
        let ctx = SchemeCtx::unprofiled();
        let delta_bits = DeltaShapeShifter::default().compressed_bits(&tensor, &ctx);
        let plain_bits = ShapeShifterScheme::default().compressed_bits(&tensor, &ctx);
        assert!(
            delta_bits > plain_bits,
            "delta {delta_bits} vs plain {plain_bits}"
        );
    }

    #[test]
    fn truncated_stream_errors() {
        let tensor = t(FixedType::U16, correlated(64));
        let d = DeltaShapeShifter::default();
        let (bytes, bits) = d.encode(&tensor).unwrap();
        let err = d.decode(&bytes, bits / 2, tensor.dtype(), tensor.len());
        assert!(err.is_err());
    }

    #[test]
    fn constant_runs_cost_almost_nothing() {
        // A flat region: one absolute value per group, all deltas zero.
        let tensor = t(FixedType::U16, vec![12_345; 160]);
        let d = DeltaShapeShifter::default();
        let bits = d.compressed_bits(&tensor, &SchemeCtx::unprofiled());
        // 10 groups x (16 Z + 5 prefix + 15-bit first value).
        assert!(bits < 10 * 40, "bits {bits}");
    }
}
