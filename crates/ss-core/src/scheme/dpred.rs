//! DPRed-style per-group precision storage (Delmás Lascorz et al.,
//! "DPRed: Making Typical Activation and Weight Values Matter In Deep
//! Learning Computing", arXiv:1804.06732).
//!
//! DPRed's observation is that *both* activations and weights spend most
//! of their time well below the container width when precision is chosen
//! per small group. Its storage scheme keeps every value — no zero
//! elision — and stores each group at the group's detected width: a `P`
//! prefix followed by all `group_len` values at `P` bits. Compared with
//! the paper's ShapeShifter container this drops the `Z` zero bit-vector,
//! trading zero elision for a simpler payload that prices weights (which
//! are dense after quantization) as well as activations.

use ss_bitio::{BitReader, BitWriter};
use ss_tensor::{width, FixedType, Signedness, Tensor, TensorStats};

use crate::detector::WidthDetector;
use crate::scheme::{CompressionScheme, SchemeCtx};
use crate::CodecError;

/// DPRed per-group precision storage: `(P, payload)` per group, every
/// value present at the group width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DpRed {
    group_size: usize,
}

impl DpRed {
    /// Creates the scheme at the given group size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256.
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        assert!(
            (1..=256).contains(&group_size),
            "group size {group_size} outside 1..=256"
        );
        Self { group_size }
    }

    /// The configured group size.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Appends `tensor`'s DPRed stream to an existing writer (not
    /// cleared: the caller owns framing). Returns the bits appended.
    ///
    /// # Errors
    ///
    /// Propagates internal bit-packing failures (unreachable for valid
    /// tensors).
    pub fn encode_into(&self, tensor: &Tensor, w: &mut BitWriter) -> Result<u64, CodecError> {
        let dtype = tensor.dtype();
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u32::from(det.prefix_bits());
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        let start = w.bit_len();
        for group in tensor.groups(self.group_size)? {
            let p = det.detect(group).max(1);
            w.write_bits(u64::from(p - 1), prefix_bits)?;
            for &v in group {
                let enc = if signed {
                    width::to_sign_magnitude(v)
                } else {
                    v.unsigned_abs()
                };
                w.write_bits(u64::from(enc), u32::from(p))?;
            }
        }
        Ok(w.bit_len() - start)
    }

    /// Decodes a DPRed stream into a caller-owned buffer (cleared first).
    ///
    /// # Errors
    ///
    /// * [`CodecError::Stream`] on truncation or inconsistent framing.
    /// * [`CodecError::WidthExceedsContainer`] if a group declares a width
    ///   beyond the container.
    /// * [`CodecError::CorruptValue`] if a decoded value leaves the
    ///   container.
    pub fn decode_into(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: FixedType,
        len: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        out.clear();
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u32::from(det.prefix_bits());
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        if bit_len > bytes.len() as u64 * 8 || len as u64 > bit_len {
            // Inconsistent framing metadata: every value costs at least
            // one payload bit, so `len` values cannot fit in fewer bits.
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bit_len.min(bytes.len() as u64 * 8),
            }));
        }
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        out.reserve(len);
        let mut group_idx = 0usize;
        while out.len() < len {
            let group_len = (len - out.len()).min(self.group_size);
            // ss-lint: allow(truncating-cast) -- prefix fields are at most 5 bits wide
            let p = r.read_bits(prefix_bits)? as u8 + 1;
            // The group width is bounded by the sign-magnitude container
            // (one wider than the magnitude for signed data).
            let container = dtype.bits() + u8::from(signed);
            if p > container {
                return Err(CodecError::WidthExceedsContainer {
                    group: group_idx,
                    width: p,
                    container,
                });
            }
            for _ in 0..group_len {
                let raw = r.read_bits(u32::from(p))?;
                // ss-lint: allow(truncating-cast) -- fields are at most `container` <= 17 bits
                let v = if signed {
                    width::from_sign_magnitude(raw as u32)
                } else {
                    raw as i32
                };
                if !dtype.contains(v) {
                    return Err(CodecError::CorruptValue {
                        index: out.len(),
                        value: v,
                    });
                }
                out.push(v);
            }
            group_idx += 1;
        }
        Ok(())
    }
}

impl Default for DpRed {
    /// The paper's group size of 16.
    fn default() -> Self {
        Self::new(16)
    }
}

impl CompressionScheme for DpRed {
    fn name(&self) -> &str {
        "DPRed"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        let det = WidthDetector::new(tensor.dtype().bits(), tensor.dtype().signedness());
        let prefix_bits = u64::from(det.prefix_bits());
        let signedness = tensor.dtype().signedness();
        let mut bits = 0u64;
        for group in tensor.values().chunks(self.group_size) {
            let p = u64::from(width::group_width(group, signedness).max(1));
            bits += prefix_bits + p * group.len() as u64;
        }
        bits
    }

    fn compressed_bits_from_stats(&self, stats: &TensorStats, _ctx: &SchemeCtx) -> Option<u64> {
        // Pure function of the per-group aggregates when the stats were
        // gathered at this scheme's grouping granularity.
        let g = stats.group(self.group_size)?;
        let det = WidthDetector::new(stats.dtype().bits(), stats.dtype().signedness());
        // All-zero groups are pinned to width 1 by the encoder; with a
        // partial tail group the histogram cannot say how many values an
        // all-zero group holds, so fall back to the value scan then.
        // ss-lint: allow(panic-freedom) -- group_width_hist has a fixed 17 entries (widths 0..=16)
        let zero_width_groups = g.group_width_hist[0];
        if zero_width_groups > 0 && !stats.len().is_multiple_of(self.group_size) {
            return None;
        }
        Some(
            g.group_count * u64::from(det.prefix_bits())
                + g.weighted_width_bits
                + zero_width_groups * self.group_size as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ShapeShifterScheme;
    use ss_tensor::{FixedType, Shape};

    fn t(dtype: FixedType, vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), dtype, vals).unwrap()
    }

    fn mixed(n: usize, seed: u64) -> Vec<i32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (state >> 33) as i32;
                if r % 5 == 0 {
                    0
                } else {
                    (r % 3000) - 1500
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_signed() {
        let tensor = t(FixedType::I16, mixed(500, 7));
        let d = DpRed::default();
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        let mut back = Vec::new();
        d.decode_into(w.as_bytes(), bits, tensor.dtype(), tensor.len(), &mut back)
            .unwrap();
        assert_eq!(back, tensor.values());
    }

    #[test]
    fn roundtrip_unsigned_and_partial_group() {
        let vals: Vec<i32> = (0..37).map(|i| (i * 97) % 256).collect();
        let tensor = t(FixedType::U8, vals);
        let d = DpRed::new(16);
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        let mut back = Vec::new();
        d.decode_into(w.as_bytes(), bits, tensor.dtype(), tensor.len(), &mut back)
            .unwrap();
        assert_eq!(back, tensor.values());
    }

    #[test]
    fn accounting_matches_encoding() {
        let tensor = t(FixedType::I16, mixed(333, 3));
        let d = DpRed::default();
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        assert_eq!(bits, d.compressed_bits(&tensor, &SchemeCtx::unprofiled()));
    }

    #[test]
    fn stats_path_matches_tensor_path_on_even_groups() {
        let tensor = t(FixedType::I16, mixed(512, 11));
        let d = DpRed::default();
        let stats = TensorStats::compute(&tensor, &[d.group_size()]);
        let ctx = SchemeCtx::unprofiled();
        assert_eq!(
            d.compressed_bits_from_stats(&stats, &ctx),
            Some(d.compressed_bits(&tensor, &ctx))
        );
    }

    #[test]
    fn dense_data_beats_shapeshifter_on_metadata() {
        // With almost no zeros the Z bit-vector is pure overhead; DPRed
        // drops it.
        let vals: Vec<i32> = (0..4096).map(|i| (i % 120) + 1).collect();
        let tensor = t(FixedType::U16, vals);
        let ctx = SchemeCtx::unprofiled();
        let dpred = DpRed::default().compressed_bits(&tensor, &ctx);
        let ss = ShapeShifterScheme::default().compressed_bits(&tensor, &ctx);
        assert!(dpred < ss, "dpred {dpred} vs shapeshifter {ss}");
    }

    #[test]
    fn sparse_data_loses_to_shapeshifter() {
        // Mostly zeros: elision wins, DPRed pays the group width for them.
        let vals: Vec<i32> = (0..4096).map(|i| if i % 16 == 0 { 900 } else { 0 }).collect();
        let tensor = t(FixedType::U16, vals);
        let ctx = SchemeCtx::unprofiled();
        let dpred = DpRed::default().compressed_bits(&tensor, &ctx);
        let ss = ShapeShifterScheme::default().compressed_bits(&tensor, &ctx);
        assert!(dpred > ss, "dpred {dpred} vs shapeshifter {ss}");
    }

    #[test]
    fn truncated_stream_errors() {
        let tensor = t(FixedType::I16, mixed(64, 5));
        let d = DpRed::default();
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        let mut back = Vec::new();
        assert!(d
            .decode_into(w.as_bytes(), bits / 2, tensor.dtype(), tensor.len(), &mut back)
            .is_err());
    }
}
