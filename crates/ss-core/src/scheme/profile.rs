//! The per-layer Profile compression baseline (Judd et al., Proteus,
//! ICS 2016) — what the paper's "Profile" bars report.

use ss_tensor::{Tensor, TensorStats};

use crate::scheme::{CompressionScheme, SchemeCtx};

/// Per-layer profile-derived width compression: every value of the layer
/// is stored at the width the *worst* value of the whole layer needs,
/// determined by profiling over a calibration set.
///
/// Losslessness guard: if the tensor at hand contains a value wider than
/// the profile predicted (possible with any finite calibration set), the
/// stored width grows to cover it — the same provisioning a deployed
/// Proteus-style design must make. The guard's layer-wide width scan
/// (`Tensor::profiled_width`) is the same u64-lane OR-fold the codec's
/// group detector uses, just at layer granularity.
///
/// Per-layer metadata (the chosen width) is a constant handful of bits and
/// is included.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ProfileScheme;

/// Bits of per-layer metadata: the stored width field.
const LAYER_METADATA_BITS: u64 = 8;

impl CompressionScheme for ProfileScheme {
    fn name(&self) -> &str {
        "Profile"
    }

    fn compressed_bits(&self, tensor: &Tensor, ctx: &SchemeCtx) -> u64 {
        // Without a profile the scheme cannot operate: it stores at the
        // full container width (equivalent to Base).
        let profiled = ctx.profiled_width.unwrap_or(tensor.dtype().bits());
        // Lossless guard: never narrower than this tensor actually needs.
        let width = profiled
            .max(tensor.profiled_width())
            .min(tensor.dtype().bits());
        tensor.len() as u64 * u64::from(width) + LAYER_METADATA_BITS
    }

    fn compressed_bits_from_stats(&self, stats: &TensorStats, ctx: &SchemeCtx) -> Option<u64> {
        let profiled = ctx.profiled_width.unwrap_or(stats.dtype().bits());
        let width = profiled
            .max(stats.profiled_width())
            .min(stats.dtype().bits());
        Some(stats.len() as u64 * u64::from(width) + LAYER_METADATA_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap()
    }

    #[test]
    fn stores_at_profiled_width() {
        let tensor = t(vec![1, 2, 3, 4]);
        let bits = ProfileScheme.compressed_bits(&tensor, &SchemeCtx::profiled(10));
        assert_eq!(bits, 4 * 10 + LAYER_METADATA_BITS);
    }

    #[test]
    fn grows_to_cover_an_unexpected_value() {
        // Profile said 4 bits, but a 10-bit value appears.
        let tensor = t(vec![1, 2, 1000]);
        let bits = ProfileScheme.compressed_bits(&tensor, &SchemeCtx::profiled(4));
        assert_eq!(bits, 3 * 10 + LAYER_METADATA_BITS);
    }

    #[test]
    fn without_profile_falls_back_to_container() {
        let tensor = t(vec![1, 2, 3, 4]);
        let bits = ProfileScheme.compressed_bits(&tensor, &SchemeCtx::unprofiled());
        assert_eq!(bits, 4 * 16 + LAYER_METADATA_BITS);
    }

    #[test]
    fn never_exceeds_container_width() {
        let tensor = t(vec![65_535]);
        let bits = ProfileScheme.compressed_bits(&tensor, &SchemeCtx::profiled(99));
        assert_eq!(bits, 16 + LAYER_METADATA_BITS);
    }
}
