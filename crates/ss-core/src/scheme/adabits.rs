//! AdaBits-style bit-plane storage (Jin et al., "AdaBits: Neural Network
//! Quantization with Adaptive Bit-Widths", arXiv:1912.09666).
//!
//! AdaBits trains **one** model that runs at several bit-widths; the
//! lower-width variants are literal most-significant-bit prefixes of the
//! full-precision weights. This scheme gives that family a container:
//! each group stores its width prefix `P`, a sign plane (signed
//! containers only), and then `P` **bit-planes in MSB-first order** —
//! plane `k` holds bit `k` of every group member's magnitude. A width-`w`
//! serving variant is therefore a per-group stream *prefix*: keep the
//! first `min(P, w)` planes, drop the rest, and the remaining bits decode
//! to exactly the `w`-bit quantized values. [`AdaBitsScheme::truncated_bits`]
//! prices those variants without re-encoding.

use ss_bitio::{BitReader, BitWriter};
use ss_tensor::{FixedType, Signedness, Tensor};

use crate::detector::WidthDetector;
use crate::scheme::{CompressionScheme, SchemeCtx};
use crate::CodecError;

/// Bit-plane (MSB-first) group container for multi-width serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaBitsScheme {
    group_size: usize,
}

/// Widest group the plane buffer accommodates (matches the codec's cap).
const MAX_GROUP: usize = 256;

impl AdaBitsScheme {
    /// Creates the scheme at the given group size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256.
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        assert!(
            (1..=MAX_GROUP).contains(&group_size),
            "group size {group_size} outside 1..=256"
        );
        Self { group_size }
    }

    /// The configured group size.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Magnitude width of a group: bits needed by the largest `|v|`,
    /// pinned to 1 for all-zero groups (the plane count must be non-zero
    /// so `P` stores `width - 1`).
    fn magnitude_width(group: &[i32]) -> u8 {
        let mut or = 0u32;
        for &v in group {
            or |= v.unsigned_abs();
        }
        // ss-lint: allow(truncating-cast) -- 32 - leading_zeros of a u32 is in 0..=32
        ((32 - or.leading_zeros()) as u8).max(1)
    }

    /// Writes one plane of `group`: bit `i` of the plane is
    /// `extract(group[i])`, packed LSB-first into 64-bit words.
    fn write_plane(
        w: &mut BitWriter,
        group: &[i32],
        extract: impl Fn(i32) -> bool,
    ) -> Result<(), CodecError> {
        for chunk in group.chunks(64) {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                if extract(v) {
                    word |= 1 << i;
                }
            }
            w.write_bits(word, chunk.len() as u32)?;
        }
        Ok(())
    }

    /// Appends `tensor`'s bit-plane stream to an existing writer (not
    /// cleared: the caller owns framing). Returns the bits appended.
    ///
    /// # Errors
    ///
    /// Propagates internal bit-packing failures (unreachable for valid
    /// tensors).
    pub fn encode_into(&self, tensor: &Tensor, w: &mut BitWriter) -> Result<u64, CodecError> {
        let dtype = tensor.dtype();
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u32::from(det.prefix_bits());
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        let start = w.bit_len();
        for group in tensor.groups(self.group_size)? {
            let p = Self::magnitude_width(group);
            w.write_bits(u64::from(p - 1), prefix_bits)?;
            if signed {
                Self::write_plane(w, group, |v| v < 0)?;
            }
            // MSB-first: plane p-1 down to plane 0, so dropping the tail
            // of the group payload drops least-significant planes.
            for k in (0..p).rev() {
                Self::write_plane(w, group, |v| v.unsigned_abs() >> k & 1 == 1)?;
            }
        }
        Ok(w.bit_len() - start)
    }

    /// Decodes a bit-plane stream into a caller-owned buffer (cleared
    /// first). Lossless inverse of [`AdaBitsScheme::encode_into`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::Stream`] on truncation or inconsistent framing.
    /// * [`CodecError::WidthExceedsContainer`] if a group declares more
    ///   planes than the container has magnitude bits.
    /// * [`CodecError::CorruptValue`] if a decoded value leaves the
    ///   container.
    pub fn decode_into(
        &self,
        bytes: &[u8],
        bit_len: u64,
        dtype: FixedType,
        len: usize,
        out: &mut Vec<i32>,
    ) -> Result<(), CodecError> {
        out.clear();
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u32::from(det.prefix_bits());
        let signed = matches!(dtype.signedness(), Signedness::Signed);
        if bit_len > bytes.len() as u64 * 8 || len as u64 > bit_len {
            // Inconsistent framing metadata: every value costs at least
            // one plane bit, so `len` values cannot fit in fewer bits.
            return Err(CodecError::Stream(ss_bitio::BitIoError::UnexpectedEnd {
                requested: u32::MAX,
                available: bit_len.min(bytes.len() as u64 * 8),
            }));
        }
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        out.reserve(len);
        let mut group_idx = 0usize;
        let mut mags = [0u32; MAX_GROUP];
        let mut negs = [false; MAX_GROUP];
        while out.len() < len {
            let group_len = (len - out.len()).min(self.group_size);
            // ss-lint: allow(truncating-cast) -- prefix fields are at most 5 bits wide
            let p = r.read_bits(prefix_bits)? as u8 + 1;
            if p > dtype.bits() {
                return Err(CodecError::WidthExceedsContainer {
                    group: group_idx,
                    width: p,
                    container: dtype.bits(),
                });
            }
            // ss-lint: allow(panic-freedom) -- mags/negs are sized group_size and group_len <= group_size
            mags[..group_len].fill(0);
            if signed {
                let mut at = 0usize;
                while at < group_len {
                    let take = (group_len - at).min(64);
                    let word = r.read_bits(take as u32)?;
                    for i in 0..take {
                        // ss-lint: allow(panic-freedom) -- at + i < at + take <= group_len <= negs.len()
                        negs[at + i] = word >> i & 1 == 1;
                    }
                    at += take;
                }
            } else {
                // ss-lint: allow(panic-freedom) -- negs is sized group_size and group_len <= group_size
                negs[..group_len].fill(false);
            }
            for k in (0..p).rev() {
                let mut at = 0usize;
                while at < group_len {
                    let take = (group_len - at).min(64);
                    let word = r.read_bits(take as u32)?;
                    for i in 0..take {
                        // ss-lint: allow(panic-freedom) -- at + i < at + take <= group_len <= mags.len()
                        mags[at + i] |= u32::from(word >> i & 1 == 1) << k;
                    }
                    at += take;
                }
            }
            for i in 0..group_len {
                // ss-lint: allow(truncating-cast) -- magnitudes are at most dtype.bits() <= 16 bits
                // ss-lint: allow(panic-freedom) -- i < group_len <= mags.len() == negs.len()
                let mag = mags[i] as i32;
                // ss-lint: allow(panic-freedom) -- i < group_len <= negs.len()
                let v = if negs[i] { -mag } else { mag };
                if !dtype.contains(v) {
                    return Err(CodecError::CorruptValue {
                        index: out.len(),
                        value: v,
                    });
                }
                out.push(v);
            }
            group_idx += 1;
        }
        Ok(())
    }

    /// Off-chip bits of the width-`target` serving variant: each group
    /// keeps its prefix, sign plane, and only the first
    /// `min(P, target)` (most-significant) planes. `target` 0 prices the
    /// metadata-only skeleton; `target >= P` everywhere equals
    /// [`CompressionScheme::compressed_bits`].
    #[must_use]
    pub fn truncated_bits(&self, tensor: &Tensor, target: u8) -> u64 {
        let dtype = tensor.dtype();
        let det = WidthDetector::new(dtype.bits(), dtype.signedness());
        let prefix_bits = u64::from(det.prefix_bits());
        let sign_plane = match dtype.signedness() {
            Signedness::Signed => 1u64,
            Signedness::Unsigned => 0,
        };
        let mut bits = 0u64;
        for group in tensor.values().chunks(self.group_size) {
            let p = Self::magnitude_width(group);
            let kept = u64::from(p.min(target));
            bits += prefix_bits + (sign_plane + kept) * group.len() as u64;
        }
        bits
    }
}

impl Default for AdaBitsScheme {
    /// The paper's group size of 16.
    fn default() -> Self {
        Self::new(16)
    }
}

impl CompressionScheme for AdaBitsScheme {
    fn name(&self) -> &str {
        "AdaBits"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        self.truncated_bits(tensor, u8::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::Shape;

    fn t(dtype: FixedType, vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), dtype, vals).unwrap()
    }

    fn mixed(n: usize, seed: u64) -> Vec<i32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (state >> 33) as i32;
                if r % 4 == 0 {
                    0
                } else {
                    (r % 4000) - 2000
                }
            })
            .collect()
    }

    fn roundtrip(d: &AdaBitsScheme, tensor: &Tensor) {
        let mut w = BitWriter::new();
        let bits = d.encode_into(tensor, &mut w).unwrap();
        let mut back = Vec::new();
        d.decode_into(w.as_bytes(), bits, tensor.dtype(), tensor.len(), &mut back)
            .unwrap();
        assert_eq!(back, tensor.values());
    }

    #[test]
    fn roundtrip_signed_and_unsigned() {
        roundtrip(&AdaBitsScheme::default(), &t(FixedType::I16, mixed(500, 7)));
        let vals: Vec<i32> = (0..41).map(|i| (i * 57) % 256).collect();
        roundtrip(&AdaBitsScheme::new(16), &t(FixedType::U8, vals));
    }

    #[test]
    fn roundtrip_groups_wider_than_a_word() {
        // Plane packing spans multiple u64 words at group sizes > 64.
        roundtrip(&AdaBitsScheme::new(100), &t(FixedType::I16, mixed(350, 3)));
    }

    #[test]
    fn accounting_matches_encoding() {
        let tensor = t(FixedType::I16, mixed(333, 5));
        let d = AdaBitsScheme::default();
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        assert_eq!(bits, d.compressed_bits(&tensor, &SchemeCtx::unprofiled()));
    }

    #[test]
    fn truncated_bits_are_monotone_in_width() {
        let tensor = t(FixedType::I16, mixed(4096, 9));
        let d = AdaBitsScheme::default();
        let full = d.compressed_bits(&tensor, &SchemeCtx::unprofiled());
        let b4 = d.truncated_bits(&tensor, 4);
        let b6 = d.truncated_bits(&tensor, 6);
        let b8 = d.truncated_bits(&tensor, 8);
        assert!(b4 < b6 && b6 < b8, "{b4} {b6} {b8}");
        assert!(b8 <= full);
        assert_eq!(d.truncated_bits(&tensor, 16), full);
    }

    #[test]
    fn msb_prefix_is_the_quantized_variant() {
        // Truncating a group's planes to w must reproduce |v| >> (p - w):
        // the serving-variant claim, checked value by value.
        let group = [1000, -3, 0, 77, -512, 12, 9, -1];
        let p = AdaBitsScheme::magnitude_width(&group);
        let target = 4u8;
        for &v in &group {
            let kept: u32 = (0..p)
                .rev()
                .take(target as usize)
                .map(|k| (v.unsigned_abs() >> k & 1) << k)
                .sum();
            assert_eq!(kept, v.unsigned_abs() >> (p - target) << (p - target));
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let tensor = t(FixedType::I16, mixed(64, 1));
        let d = AdaBitsScheme::default();
        let mut w = BitWriter::new();
        let bits = d.encode_into(&tensor, &mut w).unwrap();
        let mut back = Vec::new();
        assert!(d
            .decode_into(w.as_bytes(), bits / 3, tensor.dtype(), tensor.len(), &mut back)
            .is_err());
    }
}
