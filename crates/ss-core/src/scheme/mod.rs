//! Off-chip compression schemes compared in the evaluation (Figures 8–11
//! and 16).
//!
//! Every scheme reports the **exact bit count** a tensor occupies off-chip,
//! so relative-traffic figures are reproduced without approximation:
//!
//! * [`Base`] — no compression: `len × container` bits.
//! * [`ProfileScheme`] — per-layer profile-derived width (Judd et al.,
//!   Proteus): every value of the layer stored at the profiled width.
//! * [`ShapeShifterScheme`] — the paper's per-group container (§3).
//! * [`ZeroRle`] — Eyeriss/SCNN-style zero run-length encoding.
//! * [`outlier_aware_bits`] / [`outlier_aware_zs_bits`] — the
//!   outlier-aware storage formats of Figure 16.
//! * [`DpRed`] — DPRed per-group precision storage (arXiv:1804.06732):
//!   every value kept, priced at its group's width.
//! * [`AdaBitsScheme`] — AdaBits MSB-first bit-plane storage
//!   (arXiv:1912.09666) whose width-`w` serving variants are stream
//!   prefixes.

mod adabits;
mod delta;
mod dpred;
mod outlier_store;
mod profile;
mod shapeshifter;
mod zero_rle;

pub use adabits::AdaBitsScheme;
pub use delta::DeltaShapeShifter;
pub use dpred::DpRed;
pub use outlier_store::{outlier_aware_bits, outlier_aware_zs_bits};
pub use profile::ProfileScheme;
pub use shapeshifter::ShapeShifterScheme;
pub use zero_rle::ZeroRle;

use ss_tensor::{Tensor, TensorStats};

/// Per-tensor context a scheme may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SchemeCtx {
    /// Profile-derived per-layer width, if profiling was possible
    /// (`None` models the paper's "non-profiled networks" of Figure 8b).
    pub profiled_width: Option<u8>,
}

impl SchemeCtx {
    /// Context with a profile available.
    #[must_use]
    pub fn profiled(width: u8) -> Self {
        Self {
            profiled_width: Some(width),
        }
    }

    /// Context without profiling (Figure 8b operation).
    #[must_use]
    pub fn unprofiled() -> Self {
        Self {
            profiled_width: None,
        }
    }
}

/// An off-chip storage scheme: maps a tensor to its exact off-chip size.
pub trait CompressionScheme {
    /// Display name used in figures ("Base", "Profile", "ShapeShifter",
    /// "Zero compression").
    fn name(&self) -> &str;

    /// Exact compressed size of `tensor` in bits, including all metadata.
    fn compressed_bits(&self, tensor: &Tensor, ctx: &SchemeCtx) -> u64;

    /// Exact compressed size from precomputed [`TensorStats`], without the
    /// raw values, when the scheme can be priced that way.
    ///
    /// The experiment harness prices the same multi-million-value layer
    /// under every scheme for every figure; schemes that are pure functions
    /// of the width/zero statistics answer from the shared one-pass
    /// [`TensorStats`] instead of re-scanning values. Must equal
    /// [`CompressionScheme::compressed_bits`] on the tensor the stats were
    /// computed from whenever it returns `Some`. The default returns
    /// `None` (scheme needs the raw values, or the stats lack a required
    /// grouping granularity) and callers fall back to the tensor path.
    fn compressed_bits_from_stats(&self, stats: &TensorStats, ctx: &SchemeCtx) -> Option<u64> {
        let _ = (stats, ctx);
        None
    }

    /// Compression ratio relative to the uncompressed container
    /// (lower is better; 1.0 means no gain).
    fn ratio(&self, tensor: &Tensor, ctx: &SchemeCtx) -> f64 {
        if tensor.is_empty() {
            return 1.0;
        }
        self.compressed_bits(tensor, ctx) as f64 / tensor.container_bits() as f64
    }
}

/// Uncompressed baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Base;

impl CompressionScheme for Base {
    fn name(&self) -> &str {
        "Base"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        tensor.container_bits()
    }

    fn compressed_bits_from_stats(&self, stats: &TensorStats, _ctx: &SchemeCtx) -> Option<u64> {
        Some(stats.container_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    #[test]
    fn base_is_the_container() {
        let t = Tensor::from_vec(Shape::flat(4), FixedType::U16, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(Base.compressed_bits(&t, &SchemeCtx::default()), 64);
        assert_eq!(Base.ratio(&t, &SchemeCtx::default()), 1.0);
    }

    #[test]
    fn empty_tensor_ratio_is_one() {
        let t = Tensor::from_vec(Shape::flat(0), FixedType::U16, vec![]).unwrap();
        assert_eq!(Base.ratio(&t, &SchemeCtx::default()), 1.0);
    }
}
