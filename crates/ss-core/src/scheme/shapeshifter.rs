//! ShapeShifter as an off-chip compression scheme (the paper's first
//! hardware technique, §3).

use ss_tensor::{Tensor, TensorStats};

use crate::scheme::{CompressionScheme, SchemeCtx};
use crate::{ShapeShifterCodec, WidthDetector};

/// The ShapeShifter memory container as a traffic scheme: per-group
/// dynamic width with zero elision, reported with exact bit accounting
/// (metadata included).
///
/// Requires no profile — widths are detected statically for weights at
/// pack time and dynamically for activations by the Figure 5c hardware —
/// which is why the paper can apply it to the non-profiled networks of
/// Figure 8b unchanged. The accounting runs on
/// [`ShapeShifterCodec::measure`], whose group scan is the word-parallel
/// [`crate::kernels`] pass, so pricing a multi-million-value layer costs
/// one streaming read.
///
/// A one-byte **per-array bypass flag** keeps the paper's robustness
/// guarantee ("ShapeShifter compression is robust and never increases
/// traffic"): when a whole array's groups resist compression — e.g. the
/// TF-quantized models whose zero-point pins every stored value near the
/// container middle — the array ships raw and pays only the flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeShifterScheme {
    codec: ShapeShifterCodec,
}

/// Per-array metadata: the compressed/raw bypass flag.
pub(crate) const ARRAY_FLAG_BITS: u64 = 8;

impl ShapeShifterScheme {
    /// Creates the scheme at the given group size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256 (as the codec does).
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        Self {
            codec: ShapeShifterCodec::new(group_size),
        }
    }

    /// The underlying codec.
    #[must_use]
    pub fn codec(&self) -> &ShapeShifterCodec {
        &self.codec
    }
}

impl Default for ShapeShifterScheme {
    /// The paper's default group size of 16.
    fn default() -> Self {
        Self::new(16)
    }
}

impl CompressionScheme for ShapeShifterScheme {
    fn name(&self) -> &str {
        "ShapeShifter"
    }

    fn compressed_bits(&self, tensor: &Tensor, _ctx: &SchemeCtx) -> u64 {
        let report = self.codec.measure(tensor);
        ARRAY_FLAG_BITS + report.total_bits().min(tensor.container_bits())
    }

    fn compressed_bits_from_stats(&self, stats: &TensorStats, _ctx: &SchemeCtx) -> Option<u64> {
        // Only answerable when the stats were computed at this scheme's
        // grouping granularity; otherwise fall back to the tensor path.
        let det = WidthDetector::new(stats.dtype().bits(), stats.dtype().signedness());
        let (metadata, payload, _groups) =
            stats.shapeshifter_bits(self.codec.group_size(), det.prefix_bits())?;
        Some(ARRAY_FLAG_BITS + (metadata + payload).min(stats.container_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{FixedType, Shape};

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap()
    }

    #[test]
    fn matches_codec_output_plus_flag() {
        let tensor = t((0..64).map(|i| i * 3).collect());
        let scheme = ShapeShifterScheme::default();
        let direct = scheme.codec().encode(&tensor).unwrap().bit_len();
        assert_eq!(
            scheme.compressed_bits(&tensor, &SchemeCtx::unprofiled()),
            direct + ARRAY_FLAG_BITS
        );
    }

    #[test]
    fn bypass_caps_incompressible_arrays() {
        // Every value at the container maximum: groups are full width and
        // the metadata would expand the array — the flag ships it raw.
        let tensor = t(vec![0xFFFF; 64]);
        let scheme = ShapeShifterScheme::default();
        let bits = scheme.compressed_bits(&tensor, &SchemeCtx::unprofiled());
        assert_eq!(bits, tensor.container_bits() + ARRAY_FLAG_BITS);
    }

    #[test]
    fn ignores_profile_context() {
        let tensor = t(vec![7; 32]);
        let scheme = ShapeShifterScheme::default();
        assert_eq!(
            scheme.compressed_bits(&tensor, &SchemeCtx::profiled(12)),
            scheme.compressed_bits(&tensor, &SchemeCtx::unprofiled())
        );
    }

    #[test]
    fn beats_base_on_skewed_data() {
        // Mostly small values with one large: the paper's premise.
        let mut vals = vec![1i32; 63];
        vals.push(60_000);
        let tensor = t(vals);
        let scheme = ShapeShifterScheme::default();
        let ratio = scheme.ratio(&tensor, &SchemeCtx::unprofiled());
        assert!(ratio < 0.4, "ratio {ratio}");
    }
}
