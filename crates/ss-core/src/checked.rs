//! Debug-build decode invariants for the ShapeShifter container.
//!
//! The stream format is redundant in ways the decoder can cross-check: the
//! `Z` vector's population count must equal the number of zero slots the
//! payload loop skipped, the `P` prefix can never decode to a width beyond
//! the container, and every payload must be the *canonical* encoding of
//! its value (sign-magnitude with the sign at the LSB; re-encoding the
//! decoded value must reproduce the raw field bit-for-bit, which also
//! rules out a negative zero ever leaving the decoder).
//!
//! These checks are assertions about the *decoder's own bookkeeping* —
//! hostile input cannot make them fire, because every input-dependent
//! inconsistency is already rejected with a typed [`crate::CodecError`]
//! before the assertion is reached. They are therefore `debug_assertions`-
//! gated: every `cargo test` run exercises them for free (the test profile
//! keeps debug assertions on), and release builds compile the calls away
//! entirely — each function's body is behind an early `cfg!` return, so
//! not even the popcount is paid.

use ss_tensor::width;

use crate::index::ChunkIndex;

/// Cross-checks one decoded group: the `Z` population count (masked to
/// `group_len`) must account for exactly the slots the payload loop did
/// not fill, and the declared width must be in `1..=container_bits`.
#[inline]
pub(crate) fn group_invariants(
    zwords: &[u64; 4],
    group_len: usize,
    payloads: usize,
    p: u8,
    container_bits: u8,
    group_index: usize,
) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert!(
        (1..=container_bits).contains(&p),
        "group {group_index}: width {p} outside 1..={container_bits} survived decoding"
    );
    let mut zeros = 0usize;
    let mut remaining = group_len;
    for word in zwords {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(64);
        let mask = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
        zeros += (word & mask).count_ones() as usize;
        remaining -= take;
    }
    debug_assert!(
        zeros + payloads == group_len,
        "group {group_index}: Z popcount {zeros} + {payloads} payload(s) != group length {group_len}"
    );
}

/// Cross-checks one decoded payload: the value is non-zero (zeros travel
/// in `Z`), fits its declared width, and re-encodes to the exact raw field
/// — i.e. the stream carried the canonical sign-magnitude form, never a
/// negative zero or an over-wide field.
#[inline]
pub(crate) fn canonical_payload(raw: u64, value: i32, p: u8, signed: bool, index: usize) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert!(
        value != 0,
        "payload at index {index} decoded to zero past the corrupt-value check"
    );
    debug_assert!(
        p >= 64 || raw >> p == 0,
        "payload at index {index}: raw field {raw:#x} overflows its {p}-bit width"
    );
    let reencoded = if signed {
        u64::from(width::to_sign_magnitude(value))
    } else {
        value as u64
    };
    debug_assert!(
        reencoded == raw,
        "payload at index {index}: value {value} re-encodes to {reencoded:#x}, stream held {raw:#x}"
    );
}

/// Cross-checks the chunk index the encoder just built against the stream
/// it describes: the index must validate against its own framing rules for
/// exactly this (group size, stream length, element count) triple. Encode
/// builds both from the same pass, so a failure here is an encoder bug,
/// never an input property.
#[inline]
pub(crate) fn index_bookkeeping(
    index: &ChunkIndex,
    group_size: usize,
    bit_len: u64,
    len: usize,
) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert!(
        index.validate(group_size, bit_len, len).is_ok(),
        "encoder-built index fails its own validation: {:?}",
        index.validate(group_size, bit_len, len)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_group_and_payload_pass() {
        // Group of 5 with zeros at slots 1 and 3 -> 3 payloads.
        let zwords = [0b01010u64, 0, 0, 0];
        group_invariants(&zwords, 5, 3, 7, 16, 0);
        // Stale high words are masked out for short groups.
        group_invariants(&[0b1u64, u64::MAX, u64::MAX, u64::MAX], 1, 0, 1, 8, 1);
        canonical_payload(5, 5, 3, false, 0);
        // -3 in sign-magnitude, sign at the LSB: (3 << 1) | 1 = 7.
        canonical_payload(7, -3, 3, true, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "popcount")]
    fn mismatched_popcount_fires() {
        group_invariants(&[0b11u64, 0, 0, 0], 4, 3, 2, 8, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "re-encodes")]
    fn non_canonical_payload_fires() {
        // Raw 6 = (3 << 1) | 0 decodes to +3; claiming it encoded -3 is
        // non-canonical.
        canonical_payload(6, -3, 3, true, 0);
    }
}
