// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the ShapeShifter codec and schemes: losslessness,
//! the "never increases traffic" claim, and cross-checks between the
//! hardware detector model and the arithmetic width definitions.

use proptest::prelude::*;
use ss_core::scheme::{Base, CompressionScheme, ProfileScheme, SchemeCtx, ShapeShifterScheme, ZeroRle};
use ss_core::{ChunkIndex, ExecPolicy, IndexPolicy, ShapeShifterCodec, WidthDetector};
use ss_tensor::{width, FixedType, Shape, Signedness, Tensor, TensorStats};

/// Strategy producing a tensor with a skewed (mostly-small, some zeros,
/// rare large) value distribution over an arbitrary container.
fn arb_tensor() -> impl Strategy<Value = Tensor> {
    let dtype = prop_oneof![
        Just(FixedType::I16),
        Just(FixedType::U16),
        Just(FixedType::I8),
        Just(FixedType::U8),
    ];
    (dtype, 0usize..400).prop_flat_map(|(dt, len)| {
        let max = dt.max_magnitude();
        let value = prop_oneof![
            4 => Just(0i32),
            8 => 1i32..=15.min(max),
            3 => 1i32..=max,
        ];
        let signed = dt.signedness() == Signedness::Signed;
        prop::collection::vec((value, any::<bool>()), len).prop_map(move |pairs| {
            let vals = pairs
                .into_iter()
                .map(|(v, neg)| if signed && neg { -v } else { v })
                .collect();
            Tensor::from_vec(Shape::flat(len), dt, vals).expect("values fit container")
        })
    })
}

proptest! {
    #[test]
    fn codec_roundtrips_losslessly(t in arb_tensor(), group in 1usize..=256) {
        let codec = ShapeShifterCodec::new(group);
        let enc = codec.encode(&t).unwrap();
        let back = codec.decode(&enc).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn parallel_encode_is_bit_identical_to_sequential(
        t in arb_tensor(),
        group in 1usize..=256,
    ) {
        // The tentpole invariant: chunked workers + splicing must produce
        // the exact stream the sequential oracle produces — same bytes,
        // same bit length, same accounting — for every thread count the
        // harness uses (SS_THREADS in {1, 2, 8}).
        let codec = ShapeShifterCodec::new(group);
        let oracle = codec.with_exec(ExecPolicy::Sequential).encode(&t).unwrap();
        for threads in [2usize, 8] {
            let par = codec
                .with_exec(ExecPolicy::Threads(threads))
                .encode(&t)
                .unwrap();
            prop_assert_eq!(par.bytes(), oracle.bytes(), "threads {}", threads);
            prop_assert_eq!(par.bit_len(), oracle.bit_len());
            prop_assert_eq!(par.metadata_bits(), oracle.metadata_bits());
            prop_assert_eq!(par.payload_bits(), oracle.payload_bits());
            prop_assert_eq!(par.groups(), oracle.groups());
        }
    }

    #[test]
    fn indexed_parallel_decode_is_bit_identical_to_sequential(
        t in arb_tensor(),
        chunk_groups in 1usize..=8,
    ) {
        // The container-v2 differential: an indexed encode carries the
        // exact v1 stream bytes (the index is side metadata), and the
        // parallel decode reassembles the tensor bit-identically to the
        // sequential parse for every worker count.
        for group in [16usize, 64, 256] {
            let codec = ShapeShifterCodec::new(group)
                .with_index_policy(IndexPolicy::EveryGroups(chunk_groups));
            let enc = codec.encode(&t).unwrap();
            let v1 = ShapeShifterCodec::new(group)
                .with_index_policy(IndexPolicy::None)
                .encode(&t)
                .unwrap();
            prop_assert_eq!(enc.bytes(), v1.bytes(), "group {}", group);
            prop_assert_eq!(enc.bit_len(), v1.bit_len());
            prop_assert!(v1.index().is_none());
            let oracle = codec.with_exec(ExecPolicy::Sequential).decode(&enc).unwrap();
            prop_assert_eq!(&oracle, &t);
            for threads in [2usize, 4, 8] {
                let par = codec
                    .with_exec(ExecPolicy::Threads(threads))
                    .decode(&enc)
                    .unwrap();
                prop_assert_eq!(&par, &oracle, "group {} threads {}", group, threads);
            }
            // A written index survives its serialized form, and the
            // deserialized copy drives the same parallel decode.
            if let Some(index) = enc.index() {
                let back = ChunkIndex::from_bytes(&index.to_bytes().unwrap()).unwrap();
                prop_assert_eq!(&back, index);
                prop_assert_eq!(enc.index_bits(), back.serialized_bits().unwrap());
                let via = codec
                    .decode_stream_indexed(
                        enc.bytes(), enc.bit_len(), enc.dtype(), enc.len(), &back, 4,
                    )
                    .unwrap();
                prop_assert_eq!(&via[..], t.values());
            } else {
                prop_assert!(t.len() <= chunk_groups * group);
                prop_assert_eq!(enc.index_bits(), 0);
            }
        }
    }

    #[test]
    fn measure_matches_encode_under_parallelism(
        t in arb_tensor(),
        group in 1usize..=256,
    ) {
        let codec = ShapeShifterCodec::new(group);
        let enc = codec.with_exec(ExecPolicy::Threads(8)).encode(&t).unwrap();
        for threads in [1usize, 2, 8] {
            let report = codec.with_exec(ExecPolicy::Threads(threads)).measure(&t);
            prop_assert_eq!(report.metadata_bits, enc.metadata_bits(), "threads {}", threads);
            prop_assert_eq!(report.payload_bits, enc.payload_bits());
            prop_assert_eq!(report.groups, enc.groups());
            prop_assert_eq!(report.total_bits(), enc.bit_len());
        }
    }

    #[test]
    fn stats_pricing_matches_tensor_pricing(t in arb_tensor(), profiled in 0u8..=20) {
        // The shared-statistics fast path must be *exact*: for every scheme
        // that answers from TensorStats, the answer equals re-scanning the
        // raw values, profiled or not.
        let stats = TensorStats::compute(&t, &[16, 256]);
        let ctxs = [SchemeCtx::unprofiled(), SchemeCtx::profiled(profiled)];
        let schemes: [&dyn CompressionScheme; 5] = [
            &Base,
            &ProfileScheme,
            &ShapeShifterScheme::default(),
            &ShapeShifterScheme::new(256),
            &ZeroRle::default(),
        ];
        for ctx in &ctxs {
            for scheme in schemes {
                let from_stats = scheme.compressed_bits_from_stats(&stats, ctx);
                prop_assert_eq!(
                    from_stats,
                    Some(scheme.compressed_bits(&t, ctx)),
                    "scheme {} ctx {:?}",
                    scheme.name(),
                    ctx
                );
            }
        }
        // A granularity the stats don't cover falls back to None.
        prop_assert_eq!(
            ShapeShifterScheme::new(64).compressed_bits_from_stats(&stats, &ctxs[0]),
            None
        );
    }

    #[test]
    fn shapeshifter_never_increases_traffic_at_group_16(t in arb_tensor()) {
        // The paper's robustness claim, now structural: the per-array
        // bypass flag guarantees compressed <= uncompressed + flag for
        // EVERY input, however hostile.
        let scheme = ShapeShifterScheme::default();
        let ctx = SchemeCtx::unprofiled();
        let ss = scheme.compressed_bits(&t, &ctx);
        let base = Base.compressed_bits(&t, &ctx);
        prop_assert!(ss <= base + 8, "ss {ss} base {base}");
    }

    #[test]
    fn encoded_length_is_metadata_plus_payload(t in arb_tensor(), group in 1usize..=64) {
        let enc = ShapeShifterCodec::new(group).encode(&t).unwrap();
        prop_assert_eq!(enc.bit_len(), enc.metadata_bits() + enc.payload_bits());
        prop_assert_eq!(enc.groups(), t.len().div_ceil(group));
    }

    #[test]
    fn payload_charges_each_nonzero_the_group_width(t in arb_tensor()) {
        let enc = ShapeShifterCodec::new(16).encode(&t).unwrap();
        let expected: u64 = t
            .values()
            .chunks(16)
            .map(|g| {
                let w = u64::from(width::group_width(g, t.signedness()));
                w * g.iter().filter(|&&v| v != 0).count() as u64
            })
            .sum();
        prop_assert_eq!(enc.payload_bits(), expected);
    }

    #[test]
    fn detector_agrees_with_arithmetic(t in arb_tensor()) {
        let det = WidthDetector::new(t.dtype().bits(), t.signedness());
        for g in t.values().chunks(16) {
            prop_assert_eq!(det.detect(g), width::group_width(g, t.signedness()));
        }
    }

    #[test]
    fn profile_scheme_is_between_base_and_per_value(t in arb_tensor()) {
        prop_assume!(!t.is_empty());
        let ctx = SchemeCtx::profiled(t.profiled_width());
        let profile = ProfileScheme.compressed_bits(&t, &ctx);
        let base = Base.compressed_bits(&t, &ctx);
        // Profile stores at the layer's worst-case width: no worse than
        // Base (plus its fixed metadata), no better than what every value
        // individually needs.
        prop_assert!(profile <= base + 8);
        let per_value_floor: u64 = t
            .values()
            .iter()
            .map(|&v| u64::from(width::value_width(v, t.signedness())))
            .sum();
        prop_assert!(profile >= per_value_floor);
    }

    #[test]
    fn zero_rle_token_count_is_consistent(t in arb_tensor()) {
        let rle = ZeroRle::default();
        let tokens = rle.token_count(t.values());
        let nonzeros = t.num_nonzero() as u64;
        // Every non-zero needs a token; zeros add at most one token per
        // max_run+1 zeros plus a trailing terminator.
        prop_assert!(tokens >= nonzeros);
        let zeros = t.num_zero() as u64;
        prop_assert!(tokens <= nonzeros + zeros / (rle.max_run() + 1) + 1);
    }

    #[test]
    fn decoder_survives_arbitrary_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        len in 0usize..600,
        group in 1usize..=64,
        bits in 1u8..=16,
        signed in any::<bool>(),
    ) {
        // Fuzz the framing surface: random bytes with random metadata must
        // produce Ok or a clean error — never a panic or runaway loop.
        let dtype = if signed {
            FixedType::signed(bits).unwrap()
        } else {
            FixedType::unsigned(bits).unwrap()
        };
        let codec = ShapeShifterCodec::new(group);
        let bit_len = (bytes.len() as u64 * 8).min(4096);
        let _ = codec.decode_stream(&bytes, bit_len, dtype, len);
    }

    #[test]
    fn delta_decoder_survives_arbitrary_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        len in 0usize..600,
        group in 1usize..=64,
    ) {
        let d = ss_core::scheme::DeltaShapeShifter::new(group);
        let bit_len = bytes.len() as u64 * 8;
        let _ = d.decode(&bytes, bit_len, FixedType::U16, len);
        let _ = d.decode(&bytes, bit_len, FixedType::I8, len);
    }

    #[test]
    fn bitflip_corruption_never_panics(t in arb_tensor(), flip in any::<prop::sample::Index>()) {
        prop_assume!(!t.is_empty());
        let codec = ShapeShifterCodec::new(16);
        let enc = codec.encode(&t).unwrap();
        let mut bytes = enc.bytes().to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        let i = flip.index(bytes.len() * 8);
        bytes[i / 8] ^= 1 << (i % 8);
        // A single bit flip either decodes to some tensor (possibly wrong
        // values — the stream carries no checksum, as in the paper) or
        // errors cleanly; it must never panic.
        let _ = codec.decode_stream(&bytes, enc.bit_len(), t.dtype(), t.len());
    }

    #[test]
    fn group_size_sweep_monotone_payload(t in arb_tensor()) {
        // Coarser groups can only widen each group: payload bits are
        // monotone non-decreasing in group size (metadata moves the other
        // way — the paper's group-size trade-off).
        let sizes = [16usize, 32, 64, 128, 256];
        let payloads: Vec<u64> = sizes
            .iter()
            .map(|&g| ShapeShifterCodec::new(g).encode(&t).unwrap().payload_bits())
            .collect();
        for pair in payloads.windows(2) {
            prop_assert!(pair[0] <= pair[1], "payloads {payloads:?}");
        }
    }
}
