// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Differential suite for the word-parallel hot-path kernels: every
//! u64-lane / bulk-bit kernel is pinned against the scalar reference it
//! replaced, across group sizes 16/64/256, ragged tails, all-zero and
//! max-magnitude groups, and both signedness modes.
//!
//! The scalar paths are retained in the tree *as* oracles
//! (`width::group_width_scalar`, `BitWriter::write_bits` /
//! `BitReader::read_bits`, `ZeroRle::token_count_scalar`); this suite is
//! what makes that retention load-bearing.

use proptest::prelude::*;
use ss_bitio::{BitReader, BitWriter};
use ss_core::kernels;
use ss_core::scheme::ZeroRle;
use ss_tensor::{width, Signedness};

/// The per-value zero-bitmap construction the fused scan replaced.
fn scalar_zero_bitmap(values: &[i32]) -> [u64; 4] {
    let mut z = [0u64; 4];
    for (i, &v) in values.iter().enumerate() {
        if v == 0 {
            z[i / 64] |= 1u64 << (i % 64);
        }
    }
    z
}

/// The per-value sign-magnitude wire encoding (zeros never assert the
/// sign bit — the codec elides them entirely).
fn scalar_encode(v: i32, signedness: Signedness) -> u32 {
    match signedness {
        Signedness::Unsigned => v as u32,
        Signedness::Signed => {
            if v == 0 {
                0
            } else {
                width::to_sign_magnitude(v)
            }
        }
    }
}

fn scalar_or(values: &[i32], signedness: Signedness) -> u32 {
    values
        .iter()
        .fold(0u32, |or, &v| or | scalar_encode(v, signedness))
}

/// Deterministic edge-case groups, per signedness: all-zero, single
/// value, ragged (non-multiple-of-64) lengths, full 256-value groups,
/// and max-magnitude members.
fn edge_groups(signedness: Signedness) -> Vec<Vec<i32>> {
    let max = match signedness {
        Signedness::Unsigned => 65_535,
        Signedness::Signed => 32_767,
    };
    let neg = |v: i32| match signedness {
        Signedness::Unsigned => v,
        Signedness::Signed => -v,
    };
    let mut groups: Vec<Vec<i32>> = vec![
        vec![],
        vec![0],
        vec![max],
        vec![neg(max)],
        vec![0; 16],
        vec![0; 256],
        vec![max; 256],
        vec![1, 0, neg(3), 0, 0, 7, max, neg(1)],
    ];
    // Ragged tails around every lane/word boundary the kernels care
    // about: pair remainder (odd lengths), 64-bit word edges, and the
    // paper's group sizes 16/64/256.
    for len in [1usize, 2, 3, 15, 16, 17, 63, 64, 65, 127, 128, 129, 255, 256] {
        groups.push(
            (0..len as i32)
                .map(|i| {
                    if i % 5 == 0 {
                        0
                    } else {
                        neg(((i * 37) % (max.min(1000))).max(1))
                    }
                })
                .collect(),
        );
    }
    groups
}

#[test]
fn scan_group_matches_scalar_reference_on_edges() {
    for signedness in [Signedness::Unsigned, Signedness::Signed] {
        for group in edge_groups(signedness) {
            let scan = kernels::scan_group(&group, signedness);
            assert_eq!(
                scan.width(),
                width::group_width_scalar(&group, signedness),
                "width of {group:?} ({signedness:?})"
            );
            assert_eq!(
                scan.or,
                scalar_or(&group, signedness),
                "or of {group:?} ({signedness:?})"
            );
            assert_eq!(
                scan.z,
                scalar_zero_bitmap(&group),
                "bitmap of {group:?} ({signedness:?})"
            );
            assert_eq!(
                scan.zero_count() as usize,
                group.iter().filter(|&&v| v == 0).count(),
                "zero count of {group:?}"
            );
        }
    }
}

#[test]
fn gather_nonzero_matches_scalar_filter_on_edges() {
    for signedness in [Signedness::Unsigned, Signedness::Signed] {
        for group in edge_groups(signedness) {
            let mut out = [0u64; kernels::MAX_GROUP];
            let n = kernels::gather_nonzero(&group, signedness, &mut out);
            let expect: Vec<u64> = group
                .iter()
                .filter(|&&v| v != 0)
                .map(|&v| u64::from(scalar_encode(v, signedness)))
                .collect();
            assert_eq!(&out[..n], expect.as_slice(), "{group:?} ({signedness:?})");
        }
    }
}

#[test]
fn group_width_agrees_with_scalar_at_paper_group_sizes() {
    // The codec-facing width entry point, at the grouping granularities
    // the paper evaluates (16 default, 64, 256 max).
    for signedness in [Signedness::Unsigned, Signedness::Signed] {
        let max = match signedness {
            Signedness::Unsigned => 65_535,
            Signedness::Signed => 32_767,
        };
        let values: Vec<i32> = (0..1000)
            .map(|i: i32| {
                let m = i.wrapping_mul(2_654_435_761u32 as i32).rem_euclid(max + 1);
                if i % 4 == 0 {
                    0
                } else if signedness == Signedness::Signed && i % 3 == 0 {
                    -m
                } else {
                    m
                }
            })
            .collect();
        for group_size in [16usize, 64, 256] {
            for chunk in values.chunks(group_size) {
                assert_eq!(
                    width::group_width(chunk, signedness),
                    width::group_width_scalar(chunk, signedness),
                    "group size {group_size} ({signedness:?})"
                );
            }
        }
    }
}

/// Packs `fields` at `bits` wide via the retained scalar path, starting
/// from the same writer phase — the oracle for `pack_fields`.
fn scalar_pack(seed_bits: u32, fields: &[u64], bits: u32) -> (Vec<u8>, u64) {
    let mut w = BitWriter::new();
    if seed_bits > 0 {
        w.write_bits(0x5A5A & ((1u64 << seed_bits) - 1), seed_bits).unwrap();
    }
    for &f in fields {
        w.write_bits(f, bits).unwrap();
    }
    (w.as_bytes().to_vec(), w.bit_len())
}

proptest! {
    #[test]
    fn scan_group_matches_scalar_reference(
        values in prop::collection::vec(
            prop_oneof![3 => Just(0i32), 5 => 1i32..=32_767, 2 => -32_767..=-1i32],
            0..=256,
        ),
    ) {
        let scan = kernels::scan_group(&values, Signedness::Signed);
        prop_assert_eq!(scan.width(), width::group_width_scalar(&values, Signedness::Signed));
        prop_assert_eq!(scan.or, scalar_or(&values, Signedness::Signed));
        prop_assert_eq!(scan.z, scalar_zero_bitmap(&values));

        let mut out = [0u64; kernels::MAX_GROUP];
        let n = kernels::gather_nonzero(&values, Signedness::Signed, &mut out);
        prop_assert_eq!(n as u32, values.len() as u32 - scan.zero_count());

        // The fused encoder kernel must agree with both single-purpose ones.
        let mut fused = [0u64; kernels::MAX_GROUP];
        let (fscan, fn_) = kernels::scan_gather(&values, Signedness::Signed, &mut fused);
        prop_assert_eq!(fscan, scan);
        prop_assert_eq!(fn_, n);
        prop_assert_eq!(&fused[..fn_], &out[..n]);
    }

    #[test]
    fn zero_bitmap64_matches_scalar(
        values in prop::collection::vec(prop_oneof![Just(0i32), 1i32..100], 0..=64),
    ) {
        prop_assert_eq!(kernels::zero_bitmap64(&values), scalar_zero_bitmap(&values)[0]);
    }

    #[test]
    fn pack_fields_matches_scalar_write_loop(
        seed_bits in 0u32..16,
        bits in 1u32..=16,
        raw in prop::collection::vec(any::<u64>(), 0..=300),
    ) {
        // Field runs at payload widths 1..=16 against every writer phase.
        let mask = (1u64 << bits) - 1;
        let fields: Vec<u64> = raw.into_iter().map(|f| f & mask).collect();
        let (expect_bytes, expect_bits) = scalar_pack(seed_bits, &fields, bits);
        let mut w = BitWriter::new();
        if seed_bits > 0 {
            w.write_bits(0x5A5A & ((1u64 << seed_bits) - 1), seed_bits).unwrap();
        }
        w.pack_fields(&fields, bits).unwrap();
        prop_assert_eq!(w.bit_len(), expect_bits);
        prop_assert_eq!(w.as_bytes(), expect_bytes.as_slice());
    }

    #[test]
    fn write_words_matches_scalar_write_loop(
        seed_bits in 0u32..16,
        words in prop::collection::vec(any::<u64>(), 0..=8),
        trim in 0u64..64,
    ) {
        // A whole-word bit run (the Z vector path) against the scalar
        // 64-bit-chunk loop, at every phase and ragged tail length.
        let bit_len = (words.len() as u64 * 64).saturating_sub(trim);
        let mut expect = BitWriter::new();
        let mut actual = BitWriter::new();
        if seed_bits > 0 {
            let seed = 0x33CC & ((1u64 << seed_bits) - 1);
            expect.write_bits(seed, seed_bits).unwrap();
            actual.write_bits(seed, seed_bits).unwrap();
        }
        let mut remaining = bit_len;
        for &word in &words {
            let take = remaining.min(64) as u32;
            if take == 0 { break; }
            expect.write_bits(word & (u64::MAX >> (64 - take)), take).unwrap();
            remaining -= u64::from(take);
        }
        actual.write_words(&words, bit_len).unwrap();
        prop_assert_eq!(actual.bit_len(), expect.bit_len());
        prop_assert_eq!(actual.as_bytes(), expect.as_bytes());
    }

    #[test]
    fn read_fields_matches_scalar_read_loop(
        seed_bits in 0u32..16,
        bits in 1u32..=16,
        raw in prop::collection::vec(any::<u64>(), 0..=300),
    ) {
        let mask = (1u64 << bits) - 1;
        let fields: Vec<u64> = raw.into_iter().map(|f| f & mask).collect();
        let (bytes, bit_len) = scalar_pack(seed_bits, &fields, bits);

        // Scalar oracle: skip the seed, read per field.
        let mut oracle = BitReader::with_bit_len(&bytes, bit_len);
        if seed_bits > 0 { oracle.read_bits(seed_bits).unwrap(); }
        let expect: Vec<u64> =
            (0..fields.len()).map(|_| oracle.read_bits(bits).unwrap()).collect();
        prop_assert_eq!(expect.as_slice(), fields.as_slice());

        // Bulk path under test.
        let mut r = BitReader::with_bit_len(&bytes, bit_len);
        if seed_bits > 0 { r.read_bits(seed_bits).unwrap(); }
        let mut out = vec![0u64; fields.len()];
        r.read_fields(bits, &mut out).unwrap();
        prop_assert_eq!(out.as_slice(), fields.as_slice());
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn zero_rle_bitmap_counter_matches_scalar(
        values in prop::collection::vec(
            prop_oneof![5 => Just(0i32), 2 => 1i32..1000],
            0..=400,
        ),
        run_bits in 1u8..=8,
    ) {
        let scheme = ZeroRle::new(run_bits);
        prop_assert_eq!(
            scheme.token_count(&values),
            scheme.token_count_scalar(&values)
        );
    }
}
