// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Zero-allocation steady state for [`CodecSession`], asserted with a
//! counting global allocator.
//!
//! The session contract is that a loop re-encoding and re-decoding
//! same-shaped tensors touches the heap **zero** times per tensor once the
//! scratch buffers have grown to their high-water mark. This file is a
//! dedicated integration-test binary holding exactly one test: the
//! counting allocator is process-global, so any concurrently running test
//! would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ss_core::prelude::*;
use ss_tensor::{FixedType, Shape, Tensor};

/// Counts every allocation and reallocation (frees are irrelevant to the
/// steady-state claim) and forwards to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Unsafe is confined to forwarding the GlobalAlloc contract verbatim to
// the system allocator; the counter itself is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic skewed tensor (LCG; no RNG crate).
fn tensor(len: usize, seed: u64) -> Tensor {
    let mut x = seed;
    let vals: Vec<i32> = (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let r = x >> 33;
            match r % 10 {
                0..=3 => 0,
                4..=7 => (r % 15 + 1) as i32 - 8,
                _ => (r % 4000 + 1) as i32 - 2000,
            }
        })
        .collect();
    Tensor::from_vec(Shape::flat(len), FixedType::I16, vals).unwrap()
}

#[test]
fn steady_state_session_performs_zero_allocations_per_tensor() {
    // EveryGroups(2) keeps the chunk index in play (with group 16 any
    // tensor over 32 values is indexed), so the index-entry recycling path
    // is part of the measurement, not just the plain stream path.
    let cfg = CodecConfig::new()
        .with_group_size(16)
        .with_index_policy(IndexPolicy::EveryGroups(2));
    let mut session = CodecSession::new(cfg).unwrap();

    // Mixed sizes, fixed set: capacities ratchet to the largest and then
    // cycle. Built before the measured region.
    let tensors = [tensor(4096, 1), tensor(333, 2), tensor(1024, 3)];
    let mut out = EncodedTensor::default();
    let mut back = Tensor::zeros(Shape::flat(0), FixedType::I16);

    // Warm-up: grow every buffer to its high-water mark and verify
    // correctness while doing so.
    for _ in 0..3 {
        for t in &tensors {
            session.encode_into(t, &mut out).unwrap();
            session.decode_into(&out, &mut back).unwrap();
            assert_eq!(&back, t);
        }
    }

    // Measured region: the same traffic must not allocate at all.
    const ROUNDS: u64 = 10;
    let before = allocation_count();
    for _ in 0..ROUNDS {
        for t in &tensors {
            session.encode_into(t, &mut out).unwrap();
            session.decode_into(&out, &mut back).unwrap();
        }
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta,
        0,
        "steady-state session made {delta} allocation(s) across {ROUNDS} rounds \
         x {} tensors (expected zero)",
        tensors.len()
    );

    // The measurement itself is live: the same traffic through the
    // one-shot API must allocate (fresh container + stream per call), or
    // the counter is not counting.
    let codec = cfg.build().unwrap();
    let before = allocation_count();
    for t in &tensors {
        let enc = codec.encode(t).unwrap();
        let _ = codec.decode(&enc).unwrap();
    }
    assert!(
        allocation_count() > before,
        "counting allocator saw no allocations from the one-shot API; \
         the zero-allocation assertion above is vacuous"
    );
}
