// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property suite for [`CodecSession`] reuse: one session driven through
//! an arbitrary sequence of tensors — mixed lengths, dtypes and value
//! distributions — must produce containers **bit-identical** to a fresh
//! one-shot encode of each tensor, under every index policy, and decode
//! each container back losslessly into recycled output buffers.
//!
//! This is the contract that lets `ss-pipeline` run one long-lived
//! session per worker: no history dependence, no stale state, no drift.

use proptest::prelude::*;
use ss_core::prelude::*;
use ss_tensor::{FixedType, Shape, Signedness, Tensor};

/// Strategy producing a tensor with a skewed (mostly-small, some zeros,
/// rare large) value distribution over an arbitrary container.
fn arb_tensor() -> impl Strategy<Value = Tensor> {
    let dtype = prop_oneof![
        Just(FixedType::I16),
        Just(FixedType::U16),
        Just(FixedType::I8),
        Just(FixedType::U8),
    ];
    (dtype, 0usize..400).prop_flat_map(|(dt, len)| {
        let max = dt.max_magnitude();
        let value = prop_oneof![
            4 => Just(0i32),
            8 => 1i32..=15.min(max),
            3 => 1i32..=max,
        ];
        let signed = dt.signedness() == Signedness::Signed;
        prop::collection::vec((value, any::<bool>()), len).prop_map(move |pairs| {
            let vals = pairs
                .into_iter()
                .map(|(v, neg)| if signed && neg { -v } else { v })
                .collect();
            Tensor::from_vec(Shape::flat(len), dt, vals).expect("values fit container")
        })
    })
}

proptest! {
    #[test]
    fn one_session_matches_fresh_one_shot_per_tensor(
        tensors in prop::collection::vec(arb_tensor(), 1..8),
        group in 1usize..=256,
        chunk_groups in 1usize..=6,
    ) {
        let policies = [
            IndexPolicy::None,
            IndexPolicy::EveryGroups(chunk_groups),
            IndexPolicy::Auto,
        ];
        for policy in policies {
            let cfg = CodecConfig::new()
                .with_group_size(group)
                .with_index_policy(policy);
            let codec = cfg.build().unwrap();
            let mut session = CodecSession::new(cfg).unwrap();
            // One container and one tensor recycled across the whole
            // sequence — shrinking, growing and switching dtypes between
            // calls must leave no trace in the output.
            let mut out = EncodedTensor::default();
            let mut back = Tensor::zeros(Shape::flat(0), FixedType::U8);
            for (i, t) in tensors.iter().enumerate() {
                session.encode_into(t, &mut out).unwrap();
                let one_shot = codec.encode(t).unwrap();
                prop_assert_eq!(
                    &out, &one_shot,
                    "tensor {} under {:?}: session container diverged",
                    i, policy
                );
                session.decode_into(&out, &mut back).unwrap();
                prop_assert_eq!(
                    &back, t,
                    "tensor {} under {:?}: session decode diverged",
                    i, policy
                );
            }
        }
    }

    #[test]
    fn session_measure_identity_holds_for_session_containers(
        tensors in prop::collection::vec(arb_tensor(), 1..5),
        group in 1usize..=64,
    ) {
        // The accounting identity carries over to session-built
        // containers: measure's named report equals the container the
        // session wrote.
        let cfg = CodecConfig::new().with_group_size(group);
        let codec = cfg.build().unwrap();
        let mut session = CodecSession::new(cfg).unwrap();
        let mut out = EncodedTensor::default();
        for t in &tensors {
            session.encode_into(t, &mut out).unwrap();
            let report: MeasureReport = codec.measure(t);
            prop_assert_eq!(report.metadata_bits, out.metadata_bits());
            prop_assert_eq!(report.payload_bits, out.payload_bits());
            prop_assert_eq!(report.groups, out.groups());
            prop_assert_eq!(report.total_bits(), out.bit_len());
        }
    }

    #[test]
    fn one_session_serves_every_registered_scheme_interleaved(
        tensors in prop::collection::vec(arb_tensor(), 1..6),
        group in 1usize..=256,
    ) {
        // The registry path inherits the reuse contract: one session
        // hopping between every registered scheme (ShapeShifter, Delta,
        // DPRed, AdaBits, and anything registered later) per tensor must
        // match a fresh session's stream bit for bit — frame, bytes and
        // index alike — and decode back losslessly into recycled
        // buffers. The parallel decode inside follows `SS_THREADS`, the
        // knob the tier-1 matrix sweeps.
        let cfg = CodecConfig::new().with_group_size(group);
        let mut session = CodecSession::new(cfg).unwrap();
        let mut stream = SchemeStream::default();
        let mut back = Tensor::zeros(Shape::flat(0), FixedType::U8);
        for (i, t) in tensors.iter().enumerate() {
            for id in SchemeRegistry::global().ids() {
                let scheme = SchemeRegistry::global().get(id).unwrap();
                session
                    .encode_with_scheme(scheme, t, IndexPolicy::Auto, &mut stream)
                    .unwrap();
                prop_assert_eq!(stream.scheme, id);
                let mut fresh = CodecSession::new(cfg).unwrap();
                let mut reference = SchemeStream::default();
                fresh
                    .encode_with_scheme(scheme, t, IndexPolicy::Auto, &mut reference)
                    .unwrap();
                prop_assert_eq!(
                    &stream.bytes, &reference.bytes,
                    "tensor {} under {}: reused-session stream diverged",
                    i, id
                );
                prop_assert_eq!(stream.bit_len, reference.bit_len);
                prop_assert_eq!(&stream.index, &reference.index);
                session.decode_with_scheme(scheme, &stream, &mut back).unwrap();
                prop_assert_eq!(
                    &back, t,
                    "tensor {} under {}: scheme decode diverged",
                    i, id
                );
            }
        }
    }
}
