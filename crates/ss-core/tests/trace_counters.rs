//! Codec ↔ ss-trace integration: with a collecting recorder installed,
//! encode/measure/decode pump the counters and the group-width histogram,
//! and the counter totals agree with the codec's own accounting.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ss_core::{ExecPolicy, ShapeShifterCodec};
use ss_tensor::{FixedType, Shape, Tensor};
use ss_trace::{Counter, TraceRecorder, WidthHist};

// One test function: the global recorder is process-wide, so all the
// assertions share a single install and measure deltas sequentially.
#[test]
fn codec_counters_and_width_hist() {
    assert!(ss_trace::install(TraceRecorder::new()));
    let rec = ss_trace::installed().expect("just installed");

    let vals: Vec<i32> = (0..1000).map(|i| ((i * 37) % 500) - 250).collect();
    let zero_count = vals.iter().filter(|&&v| v == 0).count() as u64;
    let tensor = Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap();
    let codec = ShapeShifterCodec::new(16);

    // --- encode ---
    let calls0 = rec.counter(Counter::EncodeCalls);
    let bits0 = rec.counter(Counter::EncodeBits);
    let zeros0 = rec.counter(Counter::EncodeZerosElided);
    let hist0 = rec.hist(WidthHist::CodecGroupWidth).total();
    let enc = codec.encode(&tensor).unwrap();
    assert_eq!(rec.counter(Counter::EncodeCalls), calls0 + 1);
    assert_eq!(rec.counter(Counter::EncodeBits), bits0 + enc.bit_len());
    assert_eq!(rec.counter(Counter::EncodeZerosElided), zeros0 + zero_count);
    // One histogram entry per encoded group.
    assert_eq!(
        rec.hist(WidthHist::CodecGroupWidth).total(),
        hist0 + enc.groups() as u64
    );

    // --- measure agrees with encode in the trace too ---
    let mbits0 = rec.counter(Counter::MeasureBits);
    let report = codec.measure(&tensor);
    assert_eq!(report.total_bits(), enc.bit_len());
    assert_eq!(rec.counter(Counter::MeasureBits), mbits0 + enc.bit_len());
    assert_eq!(rec.counter(Counter::MeasureCalls), 1);

    // --- decode ---
    let dvals0 = rec.counter(Counter::DecodeValues);
    let back = codec.decode(&enc).unwrap();
    assert_eq!(back, tensor);
    assert_eq!(rec.counter(Counter::DecodeCalls), 1);
    assert_eq!(rec.counter(Counter::DecodeValues), dvals0 + tensor.len() as u64);

    // --- parallel encode records the same totals as sequential ---
    let big: Vec<i32> = (0..100_000).map(|i| ((i * 131) % 400) - 200).collect();
    let big = Tensor::from_vec(Shape::flat(big.len()), FixedType::I16, big).unwrap();
    let seq_bits = {
        let b0 = rec.counter(Counter::EncodeBits);
        codec.with_exec(ExecPolicy::Sequential).encode(&big).unwrap();
        rec.counter(Counter::EncodeBits) - b0
    };
    let par_bits = {
        let b0 = rec.counter(Counter::EncodeBits);
        codec.with_exec(ExecPolicy::Threads(4)).encode(&big).unwrap();
        rec.counter(Counter::EncodeBits) - b0
    };
    assert_eq!(seq_bits, par_bits);
}
