// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Golden-vector conformance suite for the container formats.
//!
//! Each case pins one (tensor, codec configuration) pair to three
//! checked-in artifacts under `tests/golden/`:
//!
//! * `<name>.stream.bin` — the encoded stream bytes (identical for v1 and
//!   v2: the chunk index never changes the stream);
//! * `<name>.values.bin` — the expected decoded values, little-endian
//!   i32s, so decode conformance does not depend on the test's own value
//!   generator;
//! * `<name>.index.bin` — the serialized chunk index (v2 cases only).
//!
//! On top of the file comparison, every case pins the stream's FNV-1a
//! hash and exact bit length as source constants, so the suite detects a
//! format drift even if the golden files were regenerated along with the
//! code change ("the encoder changed AND someone refreshed the files"
//! shows up as a hash-constant mismatch in review).
//!
//! Regenerate after a *deliberate* format change with:
//!
//! ```text
//! SS_GOLDEN_REGEN=1 cargo test -p ss-core --test golden_vectors
//! ```
//!
//! which rewrites the files and prints the new constants to paste here.

use std::path::PathBuf;

use ss_core::{
    ChunkIndex, CodecSession, IndexPolicy, SchemeId, SchemeRegistry, SchemeStream,
    ShapeShifterCodec,
};
use ss_tensor::{FixedType, Shape, Signedness, Tensor};

/// One pinned conformance case.
struct GoldenCase {
    name: &'static str,
    seed: u64,
    len: usize,
    dtype: FixedType,
    group: usize,
    policy: IndexPolicy,
    /// FNV-1a 64 of the stream bytes.
    stream_hash: u64,
    /// Exact stream length in bits.
    bit_len: u64,
    /// FNV-1a 64 of the serialized index; 0 for v1 cases (no index).
    index_hash: u64,
}

/// The pinned corpus: v1 (unindexed) and v2 (indexed) containers across
/// the paper's group sizes and both signednesses.
const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "v1_i16_g16",
        seed: 0x5353_0001,
        len: 1000,
        dtype: FixedType::I16,
        group: 16,
        policy: IndexPolicy::None,
        stream_hash: 0x8466_4598_26f8_7648,
        bit_len: 10502,
        index_hash: 0,
    },
    GoldenCase {
        name: "v1_u8_g64",
        seed: 0x5353_0002,
        len: 333,
        dtype: FixedType::U8,
        group: 64,
        policy: IndexPolicy::None,
        stream_hash: 0x46a1_b1fa_bd1e_3320,
        bit_len: 1879,
        index_hash: 0,
    },
    GoldenCase {
        name: "v2_i16_g16_cg4",
        seed: 0x5353_0003,
        len: 1000,
        dtype: FixedType::I16,
        group: 16,
        policy: IndexPolicy::EveryGroups(4),
        stream_hash: 0x4b10_7647_1be5_6886,
        bit_len: 10759,
        index_hash: 0xeb75_c8ab_eace_8ab6,
    },
    GoldenCase {
        name: "v2_u16_g64_cg2",
        seed: 0x5353_0004,
        len: 777,
        dtype: FixedType::U16,
        group: 64,
        policy: IndexPolicy::EveryGroups(2),
        stream_hash: 0x7462_6f46_6450_9e1a,
        bit_len: 8765,
        index_hash: 0x5b46_9dc8_c4e1_efd0,
    },
    GoldenCase {
        name: "v2_i8_g256_cg1",
        seed: 0x5353_0005,
        len: 600,
        dtype: FixedType::I8,
        group: 256,
        policy: IndexPolicy::EveryGroups(1),
        stream_hash: 0x2bd6_598b_b5ce_8209,
        bit_len: 3449,
        index_hash: 0x0cf3_bb4f_6ee7_b06c,
    },
];

/// One pinned plug-in scheme case, encoded through the registry
/// ([`CodecSession::encode_with_scheme`]). Stream artifacts only — none
/// of the pinned schemes emit a chunk index.
struct SchemeGoldenCase {
    name: &'static str,
    scheme: SchemeId,
    seed: u64,
    len: usize,
    dtype: FixedType,
    group: usize,
    /// FNV-1a 64 of the stream bytes.
    stream_hash: u64,
    /// Exact stream length in bits.
    bit_len: u64,
}

/// The pinned scheme corpus: the non-default built-in registrations
/// (Delta, wire id 1; DPRed, id 2; AdaBits, id 3) across both
/// signednesses. ShapeShifter (id 0) is pinned by [`CASES`] above — the
/// registry path is asserted byte-identical to it elsewhere.
const SCHEME_CASES: &[SchemeGoldenCase] = &[
    SchemeGoldenCase {
        name: "scheme1_delta_i16_g16",
        scheme: SchemeId::DELTA,
        seed: 0x5353_0101,
        len: 1000,
        dtype: FixedType::I16,
        group: 16,
        stream_hash: 0x6d30_e683_eca9_b87b,
        bit_len: 14540,
    },
    SchemeGoldenCase {
        name: "scheme2_dpred_i16_g16",
        scheme: SchemeId::DPRED,
        seed: 0x5353_0102,
        len: 1000,
        dtype: FixedType::I16,
        group: 16,
        stream_hash: 0xfd4d_5f60_d4ae_86e5,
        bit_len: 15948,
    },
    SchemeGoldenCase {
        name: "scheme2_dpred_u8_g64",
        scheme: SchemeId::DPRED,
        seed: 0x5353_0103,
        len: 333,
        dtype: FixedType::U8,
        group: 64,
        stream_hash: 0xa39a_7e2d_8c45_f336,
        bit_len: 2682,
    },
    SchemeGoldenCase {
        name: "scheme3_adabits_i16_g16",
        scheme: SchemeId::ADABITS,
        seed: 0x5353_0104,
        len: 1000,
        dtype: FixedType::I16,
        group: 16,
        stream_hash: 0x3ced_6ac3_3a83_fb15,
        bit_len: 15892,
    },
    SchemeGoldenCase {
        name: "scheme3_adabits_u8_g64",
        scheme: SchemeId::ADABITS,
        seed: 0x5353_0105,
        len: 333,
        dtype: FixedType::U8,
        group: 64,
        stream_hash: 0x4ad7_808f_77a5_594d,
        bit_len: 2682,
    },
];

/// Deterministic skewed value generator (an LCG, so the corpus never
/// depends on a random-number crate): ~40% zeros, mostly small
/// magnitudes, occasional full-width values — the distribution the paper
/// exploits.
fn golden_values(seed: u64, len: usize, dtype: FixedType) -> Vec<i32> {
    let max = u64::from(dtype.max_magnitude() as u32);
    let signed = dtype.signedness() == Signedness::Signed;
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let r = x >> 33;
            let v = match r % 10 {
                0..=3 => 0,
                4..=7 => (r / 10 % 15.min(max) + 1) as i32,
                _ => (r / 10 % max + 1) as i32,
            };
            if signed && x & 1 == 1 {
                -v
            } else {
                v
            }
        })
        .collect()
}

/// FNV-1a 64-bit over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn values_to_le_bytes(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn values_from_le_bytes(bytes: &[u8]) -> Vec<i32> {
    assert_eq!(bytes.len() % 4, 0, "values file length not a multiple of 4");
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[test]
fn golden_vectors_conform() {
    let dir = golden_dir();
    let regen = std::env::var_os("SS_GOLDEN_REGEN").is_some();
    for case in CASES {
        let values = golden_values(case.seed, case.len, case.dtype);
        let tensor =
            Tensor::from_vec(Shape::flat(case.len), case.dtype, values.clone()).unwrap();
        let codec = ShapeShifterCodec::new(case.group).with_index_policy(case.policy);
        let enc = codec.encode(&tensor).unwrap();
        let index_blob = enc.index().map(|i| i.to_bytes().unwrap());

        let stream_path = dir.join(format!("{}.stream.bin", case.name));
        let values_path = dir.join(format!("{}.values.bin", case.name));
        let index_path = dir.join(format!("{}.index.bin", case.name));

        if regen {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&stream_path, enc.bytes()).unwrap();
            std::fs::write(&values_path, values_to_le_bytes(&values)).unwrap();
            match &index_blob {
                Some(blob) => std::fs::write(&index_path, blob).unwrap(),
                None => {
                    let _ = std::fs::remove_file(&index_path);
                }
            }
            println!(
                "{}: stream_hash: {:#018x}, bit_len: {}, index_hash: {:#018x},",
                case.name,
                fnv1a(enc.bytes()),
                enc.bit_len(),
                index_blob.as_deref().map_or(0, fnv1a)
            );
            // Freshly written files trivially match the encoder; the point
            // of regen mode is to emit the constants above for pinning.
            continue;
        }

        // Encoder conformance: today's encoder reproduces the pinned
        // stream byte-for-byte, and the source constants agree.
        let golden_stream = std::fs::read(&stream_path)
            .unwrap_or_else(|e| panic!("{}: missing golden stream ({e})", case.name));
        assert_eq!(
            enc.bytes(),
            &golden_stream[..],
            "{}: encoder drifted from the golden stream",
            case.name
        );
        assert_eq!(
            fnv1a(&golden_stream),
            case.stream_hash,
            "{}: golden stream file does not match its pinned hash",
            case.name
        );
        assert_eq!(enc.bit_len(), case.bit_len, "{}: bit length drifted", case.name);

        // Decoder conformance: the *file* bytes decode to the *file*
        // values, sequentially.
        let golden_values_file = values_from_le_bytes(
            &std::fs::read(&values_path)
                .unwrap_or_else(|e| panic!("{}: missing golden values ({e})", case.name)),
        );
        assert_eq!(golden_values_file, values, "{}: value corpus drifted", case.name);
        let decoded = codec
            .decode_stream(&golden_stream, case.bit_len, case.dtype, case.len)
            .unwrap();
        assert_eq!(decoded, golden_values_file, "{}: sequential decode", case.name);

        // v2 cases: the index file deserializes, validates against the
        // framing, matches its pinned hash, and drives a parallel decode
        // to the same values.
        match index_blob {
            Some(blob) => {
                let golden_index = std::fs::read(&index_path)
                    .unwrap_or_else(|e| panic!("{}: missing golden index ({e})", case.name));
                assert_eq!(
                    blob, golden_index,
                    "{}: encoder's index drifted from the golden index",
                    case.name
                );
                assert_eq!(
                    fnv1a(&golden_index),
                    case.index_hash,
                    "{}: golden index file does not match its pinned hash",
                    case.name
                );
                let index = ChunkIndex::from_bytes(&golden_index).unwrap();
                for threads in [1usize, 2, 4, 8] {
                    let par = codec
                        .decode_stream_indexed(
                            &golden_stream,
                            case.bit_len,
                            case.dtype,
                            case.len,
                            &index,
                            threads,
                        )
                        .unwrap();
                    assert_eq!(
                        par, golden_values_file,
                        "{}: indexed decode at {} thread(s)",
                        case.name, threads
                    );
                }
            }
            None => {
                assert_eq!(case.index_hash, 0, "{}: v1 case pins an index hash", case.name);
                assert!(
                    !index_path.exists(),
                    "{}: v1 case has a stale index file",
                    case.name
                );
            }
        }
    }
}

#[test]
fn golden_vectors_round_trip_through_session() {
    // The buffer-reusing `CodecSession` API must conform to the same
    // pinned artifacts as the one-shot API: `encode_into` reproduces each
    // golden stream byte-for-byte (index included) and `decode_into`
    // recovers each golden value corpus. One output container and one
    // output tensor are recycled across the whole corpus, so the reuse
    // path is exercised across group sizes, dtypes and index policies.
    if std::env::var_os("SS_GOLDEN_REGEN").is_some() {
        return; // files are being rewritten by the conform test this run
    }
    let dir = golden_dir();
    let mut out = ss_core::EncodedTensor::default();
    let mut back = Tensor::zeros(Shape::flat(0), FixedType::U8);
    for case in CASES {
        let values = golden_values(case.seed, case.len, case.dtype);
        let tensor =
            Tensor::from_vec(Shape::flat(case.len), case.dtype, values.clone()).unwrap();
        let config = ss_core::CodecConfig::new()
            .with_group_size(case.group)
            .with_index_policy(case.policy);
        let mut session = CodecSession::new(config).unwrap();
        // Two rounds through the same session: the second runs entirely on
        // recycled buffers and must not drift.
        for round in 0..2 {
            session.encode_into(&tensor, &mut out).unwrap();
            let golden_stream = std::fs::read(dir.join(format!("{}.stream.bin", case.name)))
                .unwrap_or_else(|e| panic!("{}: missing golden stream ({e})", case.name));
            assert_eq!(
                out.bytes(),
                &golden_stream[..],
                "{} round {round}: session stream drifted from golden",
                case.name
            );
            assert_eq!(fnv1a(out.bytes()), case.stream_hash, "{}", case.name);
            assert_eq!(out.bit_len(), case.bit_len, "{}", case.name);
            let index_blob = out.index().map(|i| i.to_bytes().unwrap());
            assert_eq!(
                index_blob.as_deref().map_or(0, fnv1a),
                case.index_hash,
                "{} round {round}: session index drifted",
                case.name
            );
            session.decode_into(&out, &mut back).unwrap();
            assert_eq!(
                back, tensor,
                "{} round {round}: session decode drifted",
                case.name
            );
        }
    }
}

#[test]
fn scheme_golden_vectors_conform() {
    // The plug-in schemes' wire formats are pinned exactly like the
    // default container's: today's `encode_with_scheme` reproduces each
    // checked-in stream byte-for-byte, the source constants agree with
    // the files, and the file bytes decode back to the file values
    // through a session reused across the whole corpus.
    let dir = golden_dir();
    let regen = std::env::var_os("SS_GOLDEN_REGEN").is_some();
    let mut stream = SchemeStream::default();
    let mut back = Tensor::zeros(Shape::flat(0), FixedType::U8);
    for case in SCHEME_CASES {
        let scheme = SchemeRegistry::global().get(case.scheme).unwrap();
        let values = golden_values(case.seed, case.len, case.dtype);
        let tensor =
            Tensor::from_vec(Shape::flat(case.len), case.dtype, values.clone()).unwrap();
        let config = ss_core::CodecConfig::new().with_group_size(case.group);
        let mut session = CodecSession::new(config).unwrap();
        session
            .encode_with_scheme(scheme, &tensor, IndexPolicy::None, &mut stream)
            .unwrap();
        assert!(stream.index.is_none(), "{}: unexpected index", case.name);

        let stream_path = dir.join(format!("{}.stream.bin", case.name));
        let values_path = dir.join(format!("{}.values.bin", case.name));

        if regen {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&stream_path, &stream.bytes).unwrap();
            std::fs::write(&values_path, values_to_le_bytes(&values)).unwrap();
            println!(
                "{}: stream_hash: {:#018x}, bit_len: {},",
                case.name,
                fnv1a(&stream.bytes),
                stream.bit_len
            );
            continue;
        }

        let golden_stream = std::fs::read(&stream_path)
            .unwrap_or_else(|e| panic!("{}: missing golden stream ({e})", case.name));
        assert_eq!(
            stream.bytes,
            golden_stream,
            "{}: encoder drifted from the golden stream",
            case.name
        );
        assert_eq!(
            fnv1a(&golden_stream),
            case.stream_hash,
            "{}: golden stream file does not match its pinned hash",
            case.name
        );
        assert_eq!(stream.bit_len, case.bit_len, "{}: bit length drifted", case.name);

        let golden_values_file = values_from_le_bytes(
            &std::fs::read(&values_path)
                .unwrap_or_else(|e| panic!("{}: missing golden values ({e})", case.name)),
        );
        assert_eq!(golden_values_file, values, "{}: value corpus drifted", case.name);
        session.decode_with_scheme(scheme, &stream, &mut back).unwrap();
        assert_eq!(back, tensor, "{}: scheme decode drifted", case.name);
    }
}

#[test]
fn golden_corpus_is_complete() {
    // Every file under tests/golden/ belongs to a pinned case — a stray
    // artifact (or a case whose files were deleted without removing the
    // entry) fails loudly rather than silently shrinking coverage.
    let dir = golden_dir();
    let mut expected: Vec<String> = Vec::new();
    for case in CASES {
        expected.push(format!("{}.stream.bin", case.name));
        expected.push(format!("{}.values.bin", case.name));
        if !matches!(case.policy, IndexPolicy::None) {
            expected.push(format!("{}.index.bin", case.name));
        }
    }
    for case in SCHEME_CASES {
        expected.push(format!("{}.stream.bin", case.name));
        expected.push(format!("{}.values.bin", case.name));
    }
    let mut actual: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/golden/ exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".bin"))
        .collect();
    expected.sort();
    actual.sort();
    assert_eq!(actual, expected);
}
