// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Corruption fuzzing for the container decoder: a decoder fed damaged
//! streams must return a typed [`CodecError`], never panic.
//!
//! Two damage models, each at the paper-relevant group sizes 16/64/256:
//!
//! * **Truncation** at an arbitrary bit position. Decoding a canonical
//!   stream of a non-empty tensor consumes every bit, so any shorter
//!   prefix must fail — either mid-field (`UnexpectedEnd`) or at the
//!   framing checks.
//! * **Single-bit flip**. A flip may land in `Z`, `P`, or a payload;
//!   the result is either a clean decode of the declared element count
//!   (the damage produced a different well-formed stream) or a typed
//!   error. What it must never be is a panic — the `debug_assertions`-
//!   gated invariants in `ss-core` assert only decoder bookkeeping, and
//!   these tests run with debug assertions on (the test profile keeps
//!   them enabled), so a hostile-input path reaching an assert would
//!   fail here.

use proptest::prelude::*;
use ss_core::{ChunkIndex, IndexPolicy, ShapeShifterCodec};
use ss_tensor::{FixedType, Shape, Signedness, Tensor};

/// Skewed tensor strategy (mostly small values, plenty of zeros) so the
/// encoded stream exercises short and long payload fields alike.
fn arb_tensor() -> impl Strategy<Value = Tensor> {
    let dtype = prop_oneof![
        Just(FixedType::I16),
        Just(FixedType::U16),
        Just(FixedType::I8),
        Just(FixedType::U8),
    ];
    (dtype, 1usize..300).prop_flat_map(|(dt, len)| {
        let max = dt.max_magnitude();
        let value = prop_oneof![
            4 => Just(0i32),
            8 => 1i32..=15.min(max),
            3 => 1i32..=max,
        ];
        let signed = dt.signedness() == Signedness::Signed;
        prop::collection::vec((value, any::<bool>()), len).prop_map(move |pairs| {
            let vals = pairs
                .into_iter()
                .map(|(v, neg)| if signed && neg { -v } else { v })
                .collect();
            Tensor::from_vec(Shape::flat(len), dt, vals).expect("values fit container")
        })
    })
}

/// The group sizes the paper's evaluation sweeps (§4 / Figure 9).
const GROUP_SIZES: [usize; 3] = [16, 64, 256];

proptest! {
    #[test]
    fn truncated_stream_always_errors(t in arb_tensor(), cut in 0.0f64..1.0) {
        for group in GROUP_SIZES {
            let codec = ShapeShifterCodec::new(group);
            let enc = codec.encode(&t).unwrap();
            let bit_len = enc.bit_len();
            prop_assume!(bit_len > 0);
            // Map the unit-interval `cut` onto a strictly shorter bit
            // length so one random draw covers all three group sizes.
            let cut_bits = ((bit_len as f64) * cut) as u64;
            let cut_bytes = (cut_bits as usize).div_ceil(8);
            let truncated = &enc.bytes()[..cut_bytes.min(enc.bytes().len())];
            let r = codec.decode_stream(truncated, cut_bits, enc.dtype(), enc.len());
            prop_assert!(
                r.is_err(),
                "group {}: decode of {}-of-{} bits succeeded",
                group,
                cut_bits,
                bit_len
            );
        }
    }

    #[test]
    fn bitflip_never_panics_and_lengths_agree(t in arb_tensor(), pick in 0.0f64..1.0) {
        for group in GROUP_SIZES {
            let codec = ShapeShifterCodec::new(group);
            let enc = codec.encode(&t).unwrap();
            let bit_len = enc.bit_len();
            prop_assume!(bit_len > 0);
            let flip = ((bit_len as f64) * pick) as u64;
            let mut bytes = enc.bytes().to_vec();
            bytes[(flip / 8) as usize] ^= 1 << (flip % 8);
            // Must not panic; on success the declared element count holds
            // and every value fits the container.
            if let Ok(values) = codec.decode_stream(&bytes, bit_len, enc.dtype(), enc.len()) {
                prop_assert_eq!(values.len(), enc.len());
                prop_assert!(values.iter().all(|&v| enc.dtype().contains(v)));
            }
        }
    }

    #[test]
    fn index_blob_corruption_always_errors(t in arb_tensor(), pick in 0.0f64..1.0) {
        // The container-v2 index blob is CRC-32-guarded: any single-bit
        // flip — header, offset table, value counts or the checksum
        // itself — and any truncation must surface as a typed error,
        // never a panic and never a silently different index.
        prop_assume!(t.len() > 16);
        let codec = ShapeShifterCodec::new(16).with_index_policy(IndexPolicy::EveryGroups(1));
        let enc = codec.encode(&t).unwrap();
        let blob = enc.index().expect("tensor spans multiple chunks").to_bytes().unwrap();
        prop_assert!(ChunkIndex::from_bytes(&blob).is_ok());
        let flip = ((blob.len() * 8) as f64 * pick) as usize;
        let mut corrupt = blob.clone();
        corrupt[flip / 8] ^= 1 << (flip % 8);
        prop_assert!(ChunkIndex::from_bytes(&corrupt).is_err(), "flip of bit {}", flip);
        let keep = (blob.len() as f64 * pick) as usize;
        prop_assert!(
            ChunkIndex::from_bytes(&blob[..keep.min(blob.len() - 1)]).is_err(),
            "truncation to {} bytes",
            keep
        );
    }

    #[test]
    fn shifted_index_offset_always_yields_typed_error(
        t in arb_tensor(),
        shift in 1u64..=5,
        threads in 1usize..=8,
    ) {
        // An index whose offset table was tampered with *after* the CRC
        // check (or rebuilt to carry a valid CRC) still cannot produce a
        // silently wrong tensor: validate() rejects out-of-bounds or
        // non-monotone offsets, and a survivor is caught by the per-chunk
        // exact-consumption check — the chunk before the shifted offset
        // no longer fills its allotted span.
        prop_assume!(t.len() > 32);
        let codec = ShapeShifterCodec::new(16).with_index_policy(IndexPolicy::EveryGroups(1));
        let enc = codec.encode(&t).unwrap();
        let index = enc.index().expect("tensor spans multiple chunks");
        let mut entries = index.entries().to_vec();
        let last = entries.len() - 1;
        entries[last].bit_offset += shift;
        let tampered = ChunkIndex::from_parts(index.chunk_groups() as u32, entries).unwrap();
        let r = codec.decode_stream_indexed(
            enc.bytes(), enc.bit_len(), enc.dtype(), enc.len(), &tampered, threads,
        );
        prop_assert!(r.is_err(), "shift {} survived decode", shift);
    }

    #[test]
    fn stream_bitflip_under_indexed_decode_never_panics(
        t in arb_tensor(),
        pick in 0.0f64..1.0,
        threads in 2usize..=8,
    ) {
        // Damage the *stream* while the index stays intact: the parallel
        // path must behave exactly like the sequential one — a clean
        // decode of the declared element count, or a typed error.
        prop_assume!(t.len() > 16);
        let codec = ShapeShifterCodec::new(16).with_index_policy(IndexPolicy::EveryGroups(1));
        let enc = codec.encode(&t).unwrap();
        let index = enc.index().expect("tensor spans multiple chunks");
        let bit_len = enc.bit_len();
        prop_assume!(bit_len > 0);
        let flip = ((bit_len as f64) * pick) as u64;
        let mut bytes = enc.bytes().to_vec();
        bytes[(flip / 8) as usize] ^= 1 << (flip % 8);
        if let Ok(values) =
            codec.decode_stream_indexed(&bytes, bit_len, enc.dtype(), enc.len(), index, threads)
        {
            prop_assert_eq!(values.len(), enc.len());
            prop_assert!(values.iter().all(|&v| enc.dtype().contains(v)));
        }
    }

    #[test]
    fn truncation_on_byte_boundaries_errors(t in arb_tensor()) {
        // The EncodedTensor framing records bit_len exactly; chopping whole
        // trailing bytes (a torn write) must also surface as an error.
        let codec = ShapeShifterCodec::new(16);
        let enc = codec.encode(&t).unwrap();
        prop_assume!(enc.bit_len() > 0);
        let bytes = enc.bytes();
        for keep in 0..bytes.len() {
            let short_bits = (keep as u64 * 8).min(enc.bit_len().saturating_sub(1));
            let r = codec.decode_stream(&bytes[..keep], short_bits, enc.dtype(), enc.len());
            prop_assert!(r.is_err(), "kept {} of {} bytes", keep, bytes.len());
        }
    }
}
