//! The crate's unified error type.

use crate::protocol::{ProtocolError, Status};
use crate::wire::WireError;

/// Everything that can go wrong using the service, in-process or over
/// TCP. `#[non_exhaustive]`: new failure modes must not be breaking
/// changes.
#[non_exhaustive]
#[derive(Debug)]
pub enum ServeError {
    /// Admission refused: the submission queue is at capacity right now.
    /// Retry later; nothing was enqueued.
    Overloaded,
    /// Admission refused: the service is draining toward shutdown and
    /// accepts no new work (stats/health/drain still answer).
    Draining,
    /// The service has shut down; no request will ever be accepted again.
    Closed,
    /// The worker processing the request disappeared before replying
    /// (a worker thread died); the request's fate is unknown.
    WorkerLost,
    /// SSRP framing failed.
    Protocol(ProtocolError),
    /// An op body failed to encode or decode.
    Wire(WireError),
    /// The server answered with an error status.
    Remote {
        /// The response status.
        status: Status,
        /// The server's human-readable explanation.
        message: String,
    },
    /// A response arrived that does not pair with the outstanding
    /// request (wrong id, wrong op, or a request frame where a response
    /// was expected).
    ResponseMismatch {
        /// What the pairing check observed.
        detail: String,
    },
    /// The codec configuration the service was built with is invalid.
    Codec(ss_core::CodecError),
    /// A socket-level failure.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "service overloaded: submission queue full"),
            ServeError::Draining => write!(f, "service draining: no new work accepted"),
            ServeError::Closed => write!(f, "service closed"),
            ServeError::WorkerLost => write!(f, "worker disappeared before replying"),
            ServeError::Protocol(e) => write!(f, "protocol failure: {e}"),
            ServeError::Wire(e) => write!(f, "body codec failure: {e}"),
            ServeError::Remote { status, message } => {
                write!(f, "server answered {status:?}: {message}")
            }
            ServeError::ResponseMismatch { detail } => {
                write!(f, "response does not pair with the request: {detail}")
            }
            ServeError::Codec(e) => write!(f, "invalid codec configuration: {e}"),
            ServeError::Io(kind) => write!(f, "socket failure: {kind:?}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Protocol(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<ss_core::CodecError> for ServeError {
    fn from(e: ss_core::CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::Remote {
            status: Status::NotFound,
            message: "no such record".to_string(),
        };
        assert!(e.to_string().contains("NotFound"));
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        let e: ServeError = ProtocolError::UnsupportedVersion(9).into();
        assert!(matches!(e, ServeError::Protocol(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
