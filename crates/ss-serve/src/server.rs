//! The TCP layer: an accept loop feeding the in-process service, and a
//! small blocking client.
//!
//! This is a concurrency containment module (see ss-lint's
//! `concurrency-containment` rule): all socket-side threading is argued
//! here. Per connection there are exactly two threads —
//!
//! * the **reader** parses SSRP frames off the socket and submits them
//!   through [`ServeHandle::submit_with_id`]; admission rejections
//!   become immediate typed responses, never a hang;
//! * the **writer** drains a bounded `sync_channel` of pending replies
//!   and writes response frames in submission order, so responses pair
//!   with requests FIFO per connection even though workers finish out
//!   of order.
//!
//! The channel bound ([`MAX_CLIENT_IN_FLIGHT`]) is the per-client
//! admission cap: a client pipelining deeper than the writer can flush
//! blocks its *reader* — which stops draining the socket and turns into
//! plain TCP backpressure on that one client, without consuming queue
//! slots other clients need.
//!
//! A malformed frame (bad magic, CRC mismatch, unknown op, hostile
//! length) is counted and the connection is closed: after a framing
//! error the byte stream can no longer be trusted to re-synchronize,
//! so refusing further reads is the only safe answer. Server shutdown
//! flips a stop flag, self-connects to unblock `accept`, shuts down
//! every live connection's socket, and joins all threads.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};

use ss_trace::{Counter, Recorder};

use crate::error::ServeError;
use crate::protocol::{Frame, Kind, Op, ProtocolError, Status, HEADER_LEN, TRAILER_LEN};
use crate::service::{PendingReply, Response, ServeHandle};

/// Per-connection pipelining cap: how many responses may be outstanding
/// (admitted but not yet written back) before the connection's reader
/// stops draining the socket.
pub const MAX_CLIENT_IN_FLIGHT: usize = 32;

/// What travels from a connection's reader to its writer.
enum ConnItem {
    /// An admitted request's future response.
    Pending(PendingReply),
    /// An immediately-known response (admission rejection).
    Ready(Response),
}

/// One live connection: the reader thread's handle plus a stream clone
/// used to break its blocking read at server stop.
struct ConnTrack {
    stream: TcpStream,
    thread: std::thread::JoinHandle<()>,
}

/// A running SSRP listener bound to one [`ServeHandle`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnTrack>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Poison-safe lock acquisition: a panicked connection thread must not
/// cascade into the accept loop or shutdown path.
fn lock(conns: &Mutex<Vec<ConnTrack>>) -> MutexGuard<'_, Vec<ConnTrack>> {
    conns.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections for `handle`'s service.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails.
    pub fn start(handle: ServeHandle, addr: impl ToSocketAddrs) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnTrack>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("ss-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &handle, &accept_stop, &accept_conns))
            .map_err(|e| ServeError::Io(e.kind()))?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every live connection, and joins all
    /// server-side threads. In-flight work already admitted to the
    /// service still completes inside the service; only its delivery is
    /// cut with the sockets.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let tracked: Vec<ConnTrack> = lock(&self.conns).drain(..).collect();
        for conn in tracked {
            let _ = conn.stream.shutdown(Shutdown::Both);
            let _ = conn.thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.halt();
        }
    }
}

/// Accepts until the stop flag flips; one reader thread per connection.
fn accept_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &AtomicBool,
    conns: &Mutex<Vec<ConnTrack>>,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let Ok(tracked) = stream.try_clone() else {
            continue;
        };
        let conn_handle = handle.clone();
        let spawned = std::thread::Builder::new()
            .name("ss-serve-conn".to_string())
            .spawn(move || run_connection(stream, &conn_handle));
        if let Ok(thread) = spawned {
            lock(conns).push(ConnTrack {
                stream: tracked,
                thread,
            });
        }
    }
}

/// Status a refused admission maps onto the wire.
fn rejection_status(e: &ServeError) -> Status {
    match e {
        ServeError::Overloaded => Status::Overloaded,
        ServeError::Draining | ServeError::Closed => Status::Draining,
        _ => Status::Internal,
    }
}

/// The reader half of one connection; spawns and joins its writer.
fn run_connection(stream: TcpStream, handle: &ServeHandle) {
    let trace = handle.trace();
    trace.add(Counter::ServeConnections, 1);
    let Ok(mut read_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<ConnItem>(MAX_CLIENT_IN_FLIGHT);
    let writer_handle = handle.clone();
    let Ok(writer) = std::thread::Builder::new()
        .name("ss-serve-write".to_string())
        .spawn(move || write_loop(stream, &rx, &writer_handle))
    else {
        return;
    };
    let max_body = handle.max_body();
    loop {
        match Frame::read_from(&mut read_stream, max_body) {
            Ok(frame) => {
                let Kind::Request(op) = frame.kind else {
                    // A response frame sent at the server: the peer is
                    // not speaking the protocol.
                    trace.add(Counter::ServeProtocolErrors, 1);
                    break;
                };
                let frame_len = (HEADER_LEN + frame.body.len() + TRAILER_LEN) as u64;
                trace.add(Counter::ServeBytesIn, frame_len);
                let item = match handle.submit_with_id(op, frame.request_id, frame.body) {
                    Ok(pending) => ConnItem::Pending(pending),
                    Err(e) => ConnItem::Ready(Response {
                        request_id: frame.request_id,
                        op,
                        status: rejection_status(&e),
                        // ss-lint: allow(alloc-in-hot-loop) -- admission-rejection path only; the steady-state loop takes the Ok arm
                        payload: e.to_string().into_bytes(),
                    }),
                };
                // Blocks when MAX_CLIENT_IN_FLIGHT replies are pending:
                // per-client backpressure. Errors only if the writer
                // died (socket gone) — stop reading then.
                if tx.send(item).is_err() {
                    break;
                }
            }
            // EOF/reset: the client hung up (possibly mid-request).
            Err(ProtocolError::Io(_)) => break,
            // Malformed framing: typed, counted, connection refused.
            Err(_) => {
                trace.add(Counter::ServeProtocolErrors, 1);
                break;
            }
        }
    }
    // Dropping the sender lets the writer drain outstanding replies and
    // exit; joining bounds this thread's lifetime to its writer's.
    drop(tx);
    let _ = writer.join();
    let _ = read_stream.shutdown(Shutdown::Both);
}

/// The writer half: responses go out in submission order.
fn write_loop(mut stream: TcpStream, rx: &mpsc::Receiver<ConnItem>, handle: &ServeHandle) {
    let trace = handle.trace();
    for item in rx.iter() {
        let response = match item {
            ConnItem::Ready(response) => response,
            ConnItem::Pending(pending) => match pending.wait() {
                Ok(response) => response,
                // Worker died before replying: nothing trustworthy to
                // echo, and the service is wounded — sever the stream
                // rather than invent a response id.
                Err(_) => break,
            },
        };
        let frame = Frame::response(response.op, response.request_id, response.status, &response.payload);
        let encoded = frame.encode();
        trace.add(Counter::ServeBytesOut, encoded.len() as u64);
        if std::io::Write::write_all(&mut stream, &encoded).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// A blocking SSRP client.
///
/// [`Client::call`] is strict request/response; [`Client::send`] /
/// [`Client::recv`] expose the pipelined form (the server answers FIFO
/// per connection). Every received frame is checked for id/op pairing
/// before its payload is trusted.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_body: usize,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_body: crate::protocol::DEFAULT_MAX_BODY,
            next_id: 0,
        })
    }

    /// Caps how large a response body this client will accept.
    #[must_use]
    pub fn with_max_body(mut self, max_body: usize) -> Client {
        self.max_body = max_body;
        self
    }

    /// Sends one request frame and returns its id without waiting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on write failure.
    pub fn send(&mut self, op: Op, body: Vec<u8>) -> Result<u64, ServeError> {
        self.next_id += 1;
        let id = self.next_id;
        Frame::request(op, id, body).write_to(&mut self.stream)?;
        Ok(id)
    }

    /// Receives the next response frame (FIFO order per connection).
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on framing/IO failure,
    /// [`ServeError::ResponseMismatch`] if a request frame or a
    /// status-less body arrives.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        let frame = Frame::read_from(&mut self.stream, self.max_body)?;
        let Kind::Response(op) = frame.kind else {
            return Err(ServeError::ResponseMismatch {
                detail: "server sent a request frame".to_string(),
            });
        };
        let Some((&status_byte, payload)) = frame.body.split_first() else {
            return Err(ServeError::ResponseMismatch {
                detail: "response body is missing its status byte".to_string(),
            });
        };
        let Some(status) = Status::from_byte(status_byte) else {
            return Err(ServeError::ResponseMismatch {
                detail: format!("unknown status byte {status_byte:#04x}"),
            });
        };
        Ok(Response {
            request_id: frame.request_id,
            op,
            status,
            payload: payload.to_vec(),
        })
    }

    /// One strict round trip: send, receive, verify the response pairs
    /// with this exact request.
    ///
    /// # Errors
    ///
    /// As [`Client::send`]/[`Client::recv`], plus
    /// [`ServeError::ResponseMismatch`] on an id or op mismatch.
    pub fn call(&mut self, op: Op, body: Vec<u8>) -> Result<Response, ServeError> {
        let id = self.send(op, body)?;
        let response = self.recv()?;
        if response.request_id != id || response.op != op {
            return Err(ServeError::ResponseMismatch {
                detail: format!(
                    "sent {op:?} id {id}, got {:?} id {}",
                    response.op, response.request_id
                ),
            });
        }
        Ok(response)
    }

    /// Remote [`ServeHandle::encode`].
    ///
    /// # Errors
    ///
    /// Transport errors as [`Client::call`]; server errors typed via
    /// [`Response::into_ok`].
    pub fn encode(&mut self, tensor: &ss_tensor::Tensor) -> Result<Vec<u8>, ServeError> {
        self.call(Op::Encode, crate::wire::encode_tensor(tensor))?.into_ok()
    }

    /// Remote [`ServeHandle::decode`].
    ///
    /// # Errors
    ///
    /// As [`Client::encode`].
    pub fn decode(&mut self, packed: &[u8]) -> Result<ss_tensor::Tensor, ServeError> {
        let payload = self.call(Op::Decode, packed.to_vec())?.into_ok()?;
        Ok(crate::wire::decode_tensor(&payload)?)
    }

    /// Remote [`ServeHandle::get`].
    ///
    /// # Errors
    ///
    /// As [`Client::encode`].
    pub fn get(&mut self, model: &str, record: &str) -> Result<ss_tensor::Tensor, ServeError> {
        let payload = self
            .call(Op::Get, crate::wire::encode_get(model, record))?
            .into_ok()?;
        Ok(crate::wire::decode_tensor(&payload)?)
    }

    /// Remote [`ServeHandle::stats`].
    ///
    /// # Errors
    ///
    /// As [`Client::encode`].
    pub fn stats(&mut self) -> Result<String, ServeError> {
        let payload = self.call(Op::Stats, Vec::new())?.into_ok()?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Remote [`ServeHandle::health`].
    ///
    /// # Errors
    ///
    /// As [`Client::encode`].
    pub fn health(&mut self) -> Result<String, ServeError> {
        let payload = self.call(Op::Health, Vec::new())?.into_ok()?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Remote [`ServeHandle::drain`].
    ///
    /// # Errors
    ///
    /// As [`Client::encode`].
    pub fn drain(&mut self) -> Result<(), ServeError> {
        self.call(Op::Drain, Vec::new())?.into_ok().map(|_| ())
    }

    /// Severs the connection (tests use this to fault-inject a client
    /// disappearing mid-request).
    pub fn abandon(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
