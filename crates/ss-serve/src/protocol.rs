//! SSRP — the ShapeShifter Request Protocol: length-prefixed, CRC-guarded
//! framing for the codec service.
//!
//! One frame on the wire:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SSRP"
//! 4       1     version (currently 1)
//! 5       1     kind: request op 0x01..=0x06, response op = request | 0x80
//! 6       8     request id, u64 LE (echoed verbatim in the response)
//! 14      4     body length, u32 LE
//! 18      n     body
//! 18+n    4     CRC-32 (LE) over bytes [0, 18+n)
//! ```
//!
//! Every field is validated before use, in order, and every violation is
//! a dedicated [`ProtocolError`] variant — a frame is either parsed
//! exactly or refused with a typed reason, never partially trusted. The
//! trailing CRC covers header *and* body, so any single-bit corruption
//! anywhere in the frame (including the op byte — the mis-dispatch case)
//! is caught before dispatch; the protocol fuzz suite proves this
//! exhaustively. The body length is bounded by the caller-supplied
//! `max_body` *before* any allocation, so hostile length metadata cannot
//! balloon memory (the PR 5 decode-OOM lesson applied at the wire).

// ss-lint: allow-file(panic-freedom) -- every slice index below is
// preceded by an explicit length check (`bytes.len() < HEADER_LEN` /
// `< total`) or reads a fixed-size array filled by `read_exact`; the
// protocol fuzz suite proves every truncation at every byte is a typed
// refusal, never a panic.

use std::io::{Read, Write};

use ss_store::format::Crc32;

/// Frame magic, `b"SSRP"`.
pub const MAGIC: [u8; 4] = *b"SSRP";

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Fixed header length (magic + version + kind + id + body length).
pub const HEADER_LEN: usize = 18;

/// Trailing CRC-32 length.
pub const TRAILER_LEN: usize = 4;

/// Bit set on the kind byte of every response frame.
pub const RESPONSE_BIT: u8 = 0x80;

/// Default cap on request/response body length (64 MiB) — generous for
/// tensor payloads, small enough that a hostile length field cannot
/// exhaust memory.
pub const DEFAULT_MAX_BODY: usize = 64 << 20;

/// The service's operations. Byte values are the wire encoding and are
/// frozen: appending is fine, renumbering is a protocol break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Tensor in (wire format), SSPK container out.
    Encode,
    /// SSPK container in, tensor out (wire format).
    Decode,
    /// `(model, record)` name pair in, tensor out from the shard store.
    Get,
    /// Counter/latency snapshot out (JSON body).
    Stats,
    /// Liveness + drain state out (JSON body).
    Health,
    /// Begin graceful drain: stop admitting, flush in-flight work.
    Drain,
}

impl Op {
    /// Every operation, in wire-byte order.
    pub const ALL: &'static [Op] = &[
        Op::Encode,
        Op::Decode,
        Op::Get,
        Op::Stats,
        Op::Health,
        Op::Drain,
    ];

    /// The wire byte for a *request* frame of this op.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Op::Encode => 0x01,
            Op::Decode => 0x02,
            Op::Get => 0x03,
            Op::Stats => 0x04,
            Op::Health => 0x05,
            Op::Drain => 0x06,
        }
    }

    /// Parses a *request* wire byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Op> {
        match byte {
            0x01 => Some(Op::Encode),
            0x02 => Some(Op::Decode),
            0x03 => Some(Op::Get),
            0x04 => Some(Op::Stats),
            0x05 => Some(Op::Health),
            0x06 => Some(Op::Drain),
            _ => None,
        }
    }

    /// Stable lowercase name (stats JSON keys, log lines).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::Encode => "encode",
            Op::Decode => "decode",
            Op::Get => "get",
            Op::Stats => "stats",
            Op::Health => "health",
            Op::Drain => "drain",
        }
    }
}

/// Whether a frame carries a request or a response, and for which op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Client → server.
    Request(Op),
    /// Server → client, echoing the request's op.
    Response(Op),
}

impl Kind {
    /// The wire byte.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Kind::Request(op) => op.to_byte(),
            Kind::Response(op) => op.to_byte() | RESPONSE_BIT,
        }
    }

    /// Parses the kind byte; `None` for any byte that is not exactly a
    /// known request or response op (so a corrupted op can only be
    /// refused, never dispatched as a different op — and the CRC catches
    /// it first anyway).
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Kind> {
        if byte & RESPONSE_BIT == 0 {
            Op::from_byte(byte).map(Kind::Request)
        } else {
            Op::from_byte(byte & !RESPONSE_BIT).map(Kind::Response)
        }
    }

    /// The op this frame is about, request or response.
    #[must_use]
    pub fn op(self) -> Op {
        match self {
            Kind::Request(op) | Kind::Response(op) => op,
        }
    }
}

/// Response status, the first body byte of every response frame. `Ok`
/// responses carry the result in the remaining body; error responses
/// carry a UTF-8 message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; result follows.
    Ok,
    /// Refused at admission: the submission queue is at capacity.
    Overloaded,
    /// Refused at admission: the service is draining toward shutdown.
    Draining,
    /// The request body failed validation.
    BadRequest,
    /// The codec rejected the payload (corrupt container, bad config).
    CodecFailure,
    /// The shard store rejected the lookup (corrupt shard, IO failure).
    StoreFailure,
    /// The named model or record does not exist.
    NotFound,
    /// The service lost the request internally (worker died).
    Internal,
}

impl Status {
    /// The wire byte.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::Draining => 2,
            Status::BadRequest => 3,
            Status::CodecFailure => 4,
            Status::StoreFailure => 5,
            Status::NotFound => 6,
            Status::Internal => 7,
        }
    }

    /// Parses the wire byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Status> {
        match byte {
            0 => Some(Status::Ok),
            1 => Some(Status::Overloaded),
            2 => Some(Status::Draining),
            3 => Some(Status::BadRequest),
            4 => Some(Status::CodecFailure),
            5 => Some(Status::StoreFailure),
            6 => Some(Status::NotFound),
            7 => Some(Status::Internal),
            _ => None,
        }
    }
}

/// A parsed SSRP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request or response, and for which op.
    pub kind: Kind,
    /// Client-chosen request id; responses echo it verbatim.
    pub request_id: u64,
    /// The op payload (for responses: status byte + payload).
    pub body: Vec<u8>,
}

/// Typed framing failures. Every malformed input maps to exactly one
/// variant; none of the parse paths can panic.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes than a complete frame; `needed` is the next complete
    /// length the parser can make progress with.
    Truncated {
        /// Bytes required for the parser to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes were not `b"SSRP"`.
    BadMagic([u8; 4]),
    /// A version this implementation does not speak.
    UnsupportedVersion(u8),
    /// A kind byte that is no known request or response op.
    UnknownOp(u8),
    /// The declared body length exceeds the configured cap.
    BodyTooLarge {
        /// Declared body length.
        len: u64,
        /// The enforced cap.
        max: usize,
    },
    /// The trailing CRC-32 does not match header + body.
    CrcMismatch {
        /// CRC carried by the frame.
        stored: u32,
        /// CRC recomputed over the received bytes.
        computed: u32,
    },
    /// An IO failure while reading or writing a frame.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::UnsupportedVersion(v) => write!(f, "unsupported SSRP version {v}"),
            ProtocolError::UnknownOp(b) => write!(f, "unknown op byte {b:#04x}"),
            ProtocolError::BodyTooLarge { len, max } => {
                write!(f, "declared body length {len} exceeds cap {max}")
            }
            ProtocolError::CrcMismatch { stored, computed } => {
                write!(f, "frame CRC mismatch: stored {stored:08x}, computed {computed:08x}")
            }
            ProtocolError::Io(kind) => write!(f, "frame IO failure: {kind:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.kind())
    }
}

impl Frame {
    /// A request frame.
    #[must_use]
    pub fn request(op: Op, request_id: u64, body: Vec<u8>) -> Frame {
        Frame {
            kind: Kind::Request(op),
            request_id,
            body,
        }
    }

    /// A response frame for `op`, echoing `request_id`, with the status
    /// byte prepended to `payload`.
    #[must_use]
    pub fn response(op: Op, request_id: u64, status: Status, payload: &[u8]) -> Frame {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(status.to_byte());
        body.extend_from_slice(payload);
        Frame {
            kind: Kind::Response(op),
            request_id,
            body,
        }
    }

    /// Serializes the frame (header + body + CRC trailer).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.body.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        // Body length fits u32 by construction: encode() is only
        // reachable for bodies the service built or admitted under
        // max_body, which is itself bounded well below u32::MAX.
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        let mut crc = Crc32::new();
        crc.update(&out);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    /// Parses one frame from the front of `bytes`, returning it plus the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; [`ProtocolError::Truncated`] when `bytes`
    /// is a proper prefix of a frame.
    pub fn decode(bytes: &[u8], max_body: usize) -> Result<(Frame, usize), ProtocolError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let header = &bytes[..HEADER_LEN];
        // Header fields, validated in offset order.
        if header[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&header[0..4]);
            return Err(ProtocolError::BadMagic(m));
        }
        if header[4] != VERSION {
            return Err(ProtocolError::UnsupportedVersion(header[4]));
        }
        let kind = Kind::from_byte(header[5]).ok_or(ProtocolError::UnknownOp(header[5]))?;
        let mut id = [0u8; 8];
        id.copy_from_slice(&header[6..14]);
        let request_id = u64::from_le_bytes(id);
        let mut len = [0u8; 4];
        len.copy_from_slice(&header[14..18]);
        let body_len = u32::from_le_bytes(len) as usize;
        if body_len > max_body {
            return Err(ProtocolError::BodyTooLarge {
                len: body_len as u64,
                max: max_body,
            });
        }
        let total = HEADER_LEN + body_len + TRAILER_LEN;
        if bytes.len() < total {
            return Err(ProtocolError::Truncated {
                needed: total,
                have: bytes.len(),
            });
        }
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&bytes[total - TRAILER_LEN..total]);
        let stored = u32::from_le_bytes(crc_bytes);
        let mut crc = Crc32::new();
        crc.update(&bytes[..total - TRAILER_LEN]);
        let computed = crc.finish();
        if stored != computed {
            return Err(ProtocolError::CrcMismatch { stored, computed });
        }
        Ok((
            Frame {
                kind,
                request_id,
                body: bytes[HEADER_LEN..HEADER_LEN + body_len].to_vec(),
            },
            total,
        ))
    }

    /// Reads exactly one frame from `r`.
    ///
    /// The header is read and validated *before* the body is allocated,
    /// so a hostile length field is refused without touching memory.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`]; an EOF mid-frame surfaces as
    /// [`ProtocolError::Io`] with [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_from(r: &mut dyn Read, max_body: usize) -> Result<Frame, ProtocolError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        if header[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&header[0..4]);
            return Err(ProtocolError::BadMagic(m));
        }
        if header[4] != VERSION {
            return Err(ProtocolError::UnsupportedVersion(header[4]));
        }
        // The kind byte is checked here for a fast refusal, and the CRC
        // below still covers it — a byte corrupted *into* another valid
        // op cannot sneak past.
        let kind = Kind::from_byte(header[5]).ok_or(ProtocolError::UnknownOp(header[5]))?;
        let mut id = [0u8; 8];
        id.copy_from_slice(&header[6..14]);
        let request_id = u64::from_le_bytes(id);
        let mut len = [0u8; 4];
        len.copy_from_slice(&header[14..18]);
        let body_len = u32::from_le_bytes(len) as usize;
        if body_len > max_body {
            return Err(ProtocolError::BodyTooLarge {
                len: body_len as u64,
                max: max_body,
            });
        }
        let mut body = vec![0u8; body_len];
        r.read_exact(&mut body)?;
        let mut crc_bytes = [0u8; 4];
        r.read_exact(&mut crc_bytes)?;
        let stored = u32::from_le_bytes(crc_bytes);
        let mut crc = Crc32::new();
        crc.update(&header);
        crc.update(&body);
        let computed = crc.finish();
        if stored != computed {
            return Err(ProtocolError::CrcMismatch { stored, computed });
        }
        Ok(Frame {
            kind,
            request_id,
            body,
        })
    }

    /// Writes the frame to `w` and flushes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Io`] on any write failure.
    pub fn write_to(&self, w: &mut dyn Write) -> Result<(), ProtocolError> {
        w.write_all(&self.encode())?;
        w.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_op_both_kinds() {
        for &op in Op::ALL {
            for frame in [
                Frame::request(op, 0xDEAD_BEEF_0042, vec![1, 2, 3]),
                Frame::response(op, 7, Status::Ok, &[9, 8]),
                Frame::response(op, u64::MAX, Status::Overloaded, b"queue full"),
            ] {
                let bytes = frame.encode();
                let (back, used) = Frame::decode(&bytes, DEFAULT_MAX_BODY).expect("round trip");
                assert_eq!(back, frame);
                assert_eq!(used, bytes.len());
                let mut cursor = std::io::Cursor::new(bytes);
                let back = Frame::read_from(&mut cursor, DEFAULT_MAX_BODY).expect("stream");
                assert_eq!(back, frame);
            }
        }
    }

    #[test]
    fn kind_bytes_are_involutive_and_unknown_bytes_refuse() {
        for &op in Op::ALL {
            for kind in [Kind::Request(op), Kind::Response(op)] {
                assert_eq!(Kind::from_byte(kind.to_byte()), Some(kind));
                assert_eq!(kind.op(), op);
            }
        }
        assert_eq!(Kind::from_byte(0x00), None);
        assert_eq!(Kind::from_byte(0x80), None);
        assert_eq!(Kind::from_byte(0x7F), None);
        assert_eq!(Kind::from_byte(0xFF), None);
    }

    #[test]
    fn status_bytes_round_trip() {
        for b in 0u8..=7 {
            let s = Status::from_byte(b).expect("known status");
            assert_eq!(s.to_byte(), b);
        }
        assert_eq!(Status::from_byte(8), None);
        assert_eq!(Status::from_byte(255), None);
    }

    #[test]
    fn hostile_length_is_refused_before_allocation() {
        let mut bytes = Frame::request(Op::Encode, 1, vec![0; 8]).encode();
        // Declare a 4 GiB body.
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        match Frame::decode(&bytes, DEFAULT_MAX_BODY) {
            Err(ProtocolError::BodyTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, DEFAULT_MAX_BODY);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            Frame::read_from(&mut cursor, DEFAULT_MAX_BODY),
            Err(ProtocolError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn bad_magic_version_and_op_are_typed() {
        let good = Frame::request(Op::Stats, 3, Vec::new()).encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_BODY),
            Err(ProtocolError::BadMagic(_))
        ));
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_BODY),
            Err(ProtocolError::UnsupportedVersion(9))
        ));
        let mut bad = good;
        bad[5] = 0x55;
        assert!(matches!(
            Frame::decode(&bad, DEFAULT_MAX_BODY),
            Err(ProtocolError::UnknownOp(0x55))
        ));
    }

    #[test]
    fn short_input_reports_needed_bytes() {
        let bytes = Frame::request(Op::Get, 12, vec![7; 20]).encode();
        match Frame::decode(&bytes[..5], DEFAULT_MAX_BODY) {
            Err(ProtocolError::Truncated { needed, have }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(have, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        match Frame::decode(&bytes[..bytes.len() - 1], DEFAULT_MAX_BODY) {
            Err(ProtocolError::Truncated { needed, have }) => {
                assert_eq!(needed, bytes.len());
                assert_eq!(have, bytes.len() - 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
}
