//! Body codecs for the SSRP ops: how tensors and store lookups travel
//! inside a frame body.
//!
//! The tensor body (encode requests, decode/get `Ok` responses):
//!
//! ```text
//! offset       size  field
//! 0            1     container bits (1..=16)
//! 1            1     signedness (0 unsigned, 1 signed)
//! 2            1     rank (1..=8)
//! 3            4r    dims, u32 LE each
//! 3+4r         4n    values, i32 LE each (n = product of dims)
//! ```
//!
//! The get-request body:
//!
//! ```text
//! 0      2    model name length m, u16 LE
//! 2      m    model name, UTF-8
//! 2+m    2    record name length r, u16 LE
//! 4+m    r    record name, UTF-8
//! ```
//!
//! Both decoders follow the same hostile-input posture as the frame
//! parser: every declared length is bounds-checked against the bytes
//! actually present (and against a rank/element cap) *before* any
//! allocation, and every refusal is a typed [`WireError`]. The frame CRC
//! has already vouched for transport integrity by the time a body decoder
//! runs, so these checks defend against malformed-but-intact clients.

// ss-lint: allow-file(panic-freedom) -- every slice index below is
// preceded by an explicit bounds check against the declared structure
// (`bytes.len() < dims_end` / `< total` / `< end`); the wire tests
// prove every prefix truncation is a typed `WireError`, never a panic.

use ss_tensor::{FixedType, Shape, Tensor, TensorError};

/// Maximum tensor rank the wire form carries.
pub const MAX_RANK: usize = 8;

/// Maximum element count a wire tensor may declare (2^28 ≈ 268M values,
/// over 1 GiB of i32s — far past any model tensor, small enough to
/// refuse hostile dimension products before allocating).
pub const MAX_ELEMENTS: u64 = 1 << 28;

/// Typed failures decoding an op body.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the declared structure requires.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes present.
        have: usize,
    },
    /// Rank outside `1..=`[`MAX_RANK`].
    BadRank(u8),
    /// The dimension product exceeds [`MAX_ELEMENTS`] (or overflows).
    TooManyElements {
        /// The declared (possibly saturated) element count.
        declared: u64,
    },
    /// Trailing bytes after the declared structure.
    TrailingBytes(usize),
    /// A name field is not valid UTF-8.
    BadUtf8,
    /// The tensor failed `ss-tensor` validation (bad dtype bits, value
    /// outside the container range).
    Tensor(TensorError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated body: need {needed} bytes, have {have}")
            }
            WireError::BadRank(r) => write!(f, "tensor rank {r} outside 1..={MAX_RANK}"),
            WireError::TooManyElements { declared } => {
                write!(f, "tensor declares {declared} elements, cap is {MAX_ELEMENTS}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the body"),
            WireError::BadUtf8 => write!(f, "name field is not valid UTF-8"),
            WireError::Tensor(e) => write!(f, "tensor validation failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for WireError {
    fn from(e: TensorError) -> Self {
        WireError::Tensor(e)
    }
}

/// Serializes a tensor into the wire body form.
#[must_use]
pub fn encode_tensor(tensor: &Tensor) -> Vec<u8> {
    let dims = tensor.shape().dims();
    let mut out = Vec::with_capacity(3 + 4 * dims.len() + 4 * tensor.len());
    out.push(tensor.dtype().bits());
    out.push(u8::from(tensor.signedness().is_signed()));
    // Rank fits u8: Shape ranks in this workspace are tiny, and the
    // decoder enforces MAX_RANK on the way back in.
    // ss-lint: allow(truncating-cast) -- workspace Shape ranks are <= 8; the decoder refuses anything past MAX_RANK
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in tensor.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a tensor from the wire body form.
///
/// # Errors
///
/// Any [`WireError`]; lengths and the element cap are verified before the
/// value vector is allocated.
pub fn decode_tensor(bytes: &[u8]) -> Result<Tensor, WireError> {
    if bytes.len() < 3 {
        return Err(WireError::Truncated {
            needed: 3,
            have: bytes.len(),
        });
    }
    let bits = bytes[0];
    let signed = bytes[1] != 0;
    let rank = bytes[2] as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(WireError::BadRank(bytes[2]));
    }
    let dims_end = 3 + 4 * rank;
    if bytes.len() < dims_end {
        return Err(WireError::Truncated {
            needed: dims_end,
            have: bytes.len(),
        });
    }
    let mut dims = Vec::with_capacity(rank);
    let mut elements: u64 = 1;
    for i in 0..rank {
        let mut d = [0u8; 4];
        d.copy_from_slice(&bytes[3 + 4 * i..3 + 4 * i + 4]);
        let dim = u64::from(u32::from_le_bytes(d));
        elements = elements.saturating_mul(dim);
        dims.push(u32::from_le_bytes(d) as usize);
    }
    if elements > MAX_ELEMENTS {
        return Err(WireError::TooManyElements { declared: elements });
    }
    // Fits usize on every supported target: MAX_ELEMENTS < 2^32.
    let n = elements as usize;
    let total = dims_end + 4 * n;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::TrailingBytes(bytes.len() - total));
    }
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let mut v = [0u8; 4];
        v.copy_from_slice(&bytes[dims_end + 4 * i..dims_end + 4 * i + 4]);
        values.push(i32::from_le_bytes(v));
    }
    let dtype = if signed {
        FixedType::signed(bits)?
    } else {
        FixedType::unsigned(bits)?
    };
    Ok(Tensor::from_vec(Shape::new(dims), dtype, values)?)
}

/// Serializes a get request's `(model, record)` name pair.
///
/// Names longer than `u16::MAX` bytes are truncated at the length field's
/// cap — no valid store name approaches that, and the server side would
/// answer `NotFound` for the truncated form rather than misbehave.
#[must_use]
pub fn encode_get(model: &str, record: &str) -> Vec<u8> {
    let model = &model.as_bytes()[..model.len().min(u16::MAX as usize)];
    let record = &record.as_bytes()[..record.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(4 + model.len() + record.len());
    // ss-lint: allow(truncating-cast) -- the slice above caps the length at u16::MAX
    out.extend_from_slice(&(model.len() as u16).to_le_bytes());
    out.extend_from_slice(model);
    // ss-lint: allow(truncating-cast) -- the slice above caps the length at u16::MAX
    out.extend_from_slice(&(record.len() as u16).to_le_bytes());
    out.extend_from_slice(record);
    out
}

/// Parses a get request body back into `(model, record)`.
///
/// # Errors
///
/// [`WireError::Truncated`], [`WireError::TrailingBytes`] or
/// [`WireError::BadUtf8`].
pub fn decode_get(bytes: &[u8]) -> Result<(String, String), WireError> {
    let (model, rest) = take_string(bytes)?;
    let (record, rest) = take_string(rest)?;
    if !rest.is_empty() {
        return Err(WireError::TrailingBytes(rest.len()));
    }
    Ok((model, record))
}

/// Splits one length-prefixed UTF-8 string off the front of `bytes`.
fn take_string(bytes: &[u8]) -> Result<(String, &[u8]), WireError> {
    if bytes.len() < 2 {
        return Err(WireError::Truncated {
            needed: 2,
            have: bytes.len(),
        });
    }
    let len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let end = 2 + len;
    if bytes.len() < end {
        return Err(WireError::Truncated {
            needed: end,
            have: bytes.len(),
        });
    }
    let s = std::str::from_utf8(&bytes[2..end]).map_err(|_| WireError::BadUtf8)?;
    Ok((s.to_string(), &bytes[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        Tensor::from_vec(
            Shape::new(vec![2, 3]),
            FixedType::I16,
            vec![1, -2, 0, 300, -32000, 7],
        )
        .expect("valid tensor")
    }

    #[test]
    fn tensor_round_trips_with_shape_and_dtype() {
        let t = tensor();
        let body = encode_tensor(&t);
        let back = decode_tensor(&body).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.shape().dims(), &[2, 3]);
        assert_eq!(back.dtype(), FixedType::I16);
        // Unsigned 8-bit too.
        let u = Tensor::from_vec(Shape::flat(3), FixedType::U8, vec![0, 128, 255]).expect("u8");
        assert_eq!(decode_tensor(&encode_tensor(&u)).expect("u8 round trip"), u);
    }

    #[test]
    fn tensor_decoder_refuses_every_malformation() {
        let body = encode_tensor(&tensor());
        // Truncations at every prefix are typed, never a panic.
        for cut in 0..body.len() {
            assert!(
                matches!(decode_tensor(&body[..cut]), Err(WireError::Truncated { .. })),
                "prefix of {cut} bytes must be Truncated"
            );
        }
        // Trailing garbage.
        let mut long = body.clone();
        long.push(0);
        assert_eq!(decode_tensor(&long), Err(WireError::TrailingBytes(1)));
        // Rank 0 and rank > MAX_RANK.
        let mut bad = body.clone();
        bad[2] = 0;
        assert_eq!(decode_tensor(&bad), Err(WireError::BadRank(0)));
        bad[2] = 9;
        assert!(matches!(decode_tensor(&bad), Err(WireError::BadRank(9))));
        // Hostile dims: 2^32-1 × 2^32-1 elements, refused before allocation.
        let mut hostile = vec![16, 1, 2];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_tensor(&hostile),
            Err(WireError::TooManyElements { .. })
        ));
        // Bad dtype bits surface as a tensor validation error.
        let mut bad_bits = body;
        bad_bits[0] = 33;
        assert!(matches!(decode_tensor(&bad_bits), Err(WireError::Tensor(_))));
    }

    #[test]
    fn get_names_round_trip() {
        let body = encode_get("lenet", "conv1.weight");
        assert_eq!(
            decode_get(&body).expect("round trip"),
            ("lenet".to_string(), "conv1.weight".to_string())
        );
        // Empty names are representable (the store will refuse them).
        assert_eq!(
            decode_get(&encode_get("", "")).expect("empty"),
            (String::new(), String::new())
        );
    }

    #[test]
    fn get_decoder_refuses_every_malformation() {
        let body = encode_get("m", "r");
        for cut in 0..body.len() {
            assert!(
                matches!(decode_get(&body[..cut]), Err(WireError::Truncated { .. })),
                "prefix of {cut} bytes must be Truncated"
            );
        }
        let mut long = body.clone();
        long.extend_from_slice(&[1, 2]);
        assert_eq!(decode_get(&long), Err(WireError::TrailingBytes(2)));
        // Invalid UTF-8 in a name.
        let mut bad = vec![2, 0, 0xFF, 0xFE];
        bad.extend_from_slice(&encode_get("", "")[..2]);
        assert_eq!(decode_get(&bad), Err(WireError::BadUtf8));
    }
}
