#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # ss-serve — the concurrent ShapeShifter codec service
//!
//! Turns the workspace's codec, pipeline and shard-store machinery into
//! a long-running service with two front doors:
//!
//! * **In-process**: [`Service`] owns a worker pool draining one
//!   bounded queue; a cloneable [`ServeHandle`] submits work with
//!   non-blocking admission and typed rejection.
//! * **TCP**: [`Server`] speaks **SSRP** — a length-prefixed,
//!   CRC-32-guarded framing ([`protocol`]) carrying six ops: encode,
//!   decode, get (from an `ss-store` model), stats, health, and drain.
//!
//! The contracts, in one place:
//!
//! * **Typed overload, never a hang.** Admission uses
//!   `BoundedQueue::try_push`; a full queue answers
//!   [`Status::Overloaded`](protocol::Status) with nothing enqueued.
//! * **Graceful drain, zero loss.** [`ServeHandle::drain`] refuses new
//!   work while every admitted request still gets exactly one response;
//!   [`Service::shutdown`] then closes the queue (pending items remain
//!   poppable) and joins the pool.
//! * **Hostile input is refused, typed.** Every malformed frame or body
//!   — any single-bit flip, any truncation, any hostile length — is a
//!   dedicated error variant before allocation or dispatch; the fuzz
//!   suite proves it bit by bit.
//! * **SLO accounting built in.** A service-owned `ss-trace` recorder
//!   collects serve counters and per-op log2 latency histograms
//!   (p50/p99/p999), exported as JSON by the stats op.
//!
//! # Quick start
//!
//! ```
//! use ss_serve::{ServeConfig, Service};
//! use ss_tensor::{FixedType, Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut service = Service::new(ServeConfig::new().with_workers(2))?;
//! service.start();
//! let handle = service.handle();
//!
//! let t = Tensor::from_vec(Shape::flat(4), FixedType::I16, vec![1, -2, 0, 300])?;
//! let packed = handle.encode(&t)?;      // SSPK container bytes
//! assert_eq!(handle.decode(&packed)?, t);
//!
//! let report = service.shutdown();
//! assert_eq!(report.completed, 2);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod protocol;
pub mod server;
pub mod service;
pub mod wire;

pub use error::ServeError;
pub use protocol::{Frame, Kind, Op, ProtocolError, Status};
pub use server::{Client, Server, MAX_CLIENT_IN_FLIGHT};
pub use service::{DrainReport, PendingReply, Response, ServeConfig, ServeHandle, Service};
pub use wire::WireError;
