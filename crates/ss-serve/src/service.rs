//! The in-process service: admission control, the worker pool, op
//! dispatch, and graceful drain.
//!
//! This is a concurrency containment module (see ss-lint's
//! `concurrency-containment` rule): the spawn/join lifecycle of the
//! worker pool is argued here, once. The synchronization story is small
//! on purpose — all blocking hand-off goes through one
//! [`BoundedQueue`] (whose close/drain contract is pinned by the
//! `queue_shutdown` stress suite in ss-pipeline), replies travel over
//! per-request `mpsc` channels, and everything else is atomics:
//!
//! * **Admission** is non-blocking. [`ServeHandle::submit_with_id`]
//!   uses [`BoundedQueue::try_push`]; a full queue is a typed
//!   [`ServeError::Overloaded`] with nothing enqueued, never a hang.
//!   Once the service is draining, work ops are refused with
//!   [`ServeError::Draining`] while stats/health/drain still answer —
//!   an operator can watch a drain complete.
//! * **Drain** means: flip the state flag (new work refused), close the
//!   queue (pending items stay poppable per the queue contract), join
//!   the workers. Every admitted request gets exactly one response —
//!   the fault-injection suite asserts zero loss and zero duplication.
//! * **Accounting** goes through a service-owned
//!   [`ss_trace::TraceRecorder`] (not the process-global slot, so tests
//!   and embedders never fight over `install`): serve counters plus
//!   per-op log2 latency histograms, exported by the stats op.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use shapeshifter::container::{self, ContainerError};
use shapeshifter::SchemeId;
use ss_core::{CodecConfig, CodecSession};
use ss_pipeline::{BoundedQueue, TryPushError};
use ss_store::{ModelStore, StorageProvider, StoreError};
use ss_tensor::{FixedType, Shape, Tensor};
use ss_trace::{Counter, LatencyHist, Recorder, TraceRecorder};

use crate::error::ServeError;
use crate::protocol::{Op, Status, DEFAULT_MAX_BODY};
use crate::wire;

/// Service state: accepting work.
const STATE_SERVING: u8 = 0;
/// Service state: draining — no new work, in-flight work completes.
const STATE_DRAINING: u8 = 1;

/// How a [`Service`] runs: codec settings, pool size, queue bound, and
/// the frame body cap.
///
/// `#[non_exhaustive]`: build with [`ServeConfig::new`] + `with_*`.
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Codec configuration every worker session is built from.
    pub codec: CodecConfig,
    /// Container scheme encode requests are packed with (resolved
    /// against the global [`shapeshifter::SchemeRegistry`] per request).
    pub container: SchemeId,
    /// Worker threads; 0 means follow `ss_core::par::thread_count()`
    /// (the `SS_THREADS` knob).
    pub workers: usize,
    /// Bounded submission-queue capacity (0 is treated as 1). Admission
    /// beyond this answers `Overloaded`.
    pub queue_depth: usize,
    /// Maximum SSRP frame body length accepted or produced.
    pub max_body: usize,
}

impl ServeConfig {
    /// Defaults: default codec, ShapeShifter container, `SS_THREADS`
    /// workers, queue depth 64, 64 MiB body cap.
    #[must_use]
    pub fn new() -> Self {
        Self {
            codec: CodecConfig::new(),
            container: SchemeId::SHAPESHIFTER,
            workers: 0,
            queue_depth: 64,
            max_body: DEFAULT_MAX_BODY,
        }
    }

    /// Sets the codec configuration.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecConfig) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the container scheme for encode requests. Accepts any
    /// [`SchemeId`] (or the legacy `ContainerCodec` via `Into`).
    #[must_use]
    pub fn with_container(mut self, container: impl Into<SchemeId>) -> Self {
        self.container = container.into();
        self
    }

    /// Sets the worker-pool size (0 follows `SS_THREADS`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the bounded submission-queue capacity.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the SSRP body cap.
    #[must_use]
    pub fn with_max_body(mut self, max_body: usize) -> Self {
        self.max_body = max_body;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One completed request: the echoed id, the op, a status, and the
/// result payload (`Ok`) or UTF-8 message (errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this response answers.
    pub request_id: u64,
    /// The op this response is for.
    pub op: Op,
    /// Outcome.
    pub status: Status,
    /// Result bytes (`Ok`) or a UTF-8 error message.
    pub payload: Vec<u8>,
}

impl Response {
    fn new(op: Op, request_id: u64, status: Status, payload: Vec<u8>) -> Self {
        Response {
            request_id,
            op,
            status,
            payload,
        }
    }

    fn err(op: Op, request_id: u64, status: Status, message: String) -> Self {
        Response::new(op, request_id, status, message.into_bytes())
    }

    /// The payload as a human-readable message (error responses carry
    /// UTF-8; anything else is rendered lossily).
    #[must_use]
    pub fn message(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// The payload of an `Ok` response, or the typed error the status
    /// maps to: `Overloaded`/`Draining` become their [`ServeError`]
    /// twins, everything else [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// As described above for every non-`Ok` status.
    pub fn into_ok(self) -> Result<Vec<u8>, ServeError> {
        match self.status {
            Status::Ok => Ok(self.payload),
            Status::Overloaded => Err(ServeError::Overloaded),
            Status::Draining => Err(ServeError::Draining),
            status => Err(ServeError::Remote {
                status,
                message: String::from_utf8_lossy(&self.payload).into_owned(),
            }),
        }
    }
}

/// An admitted request's future response. Obtained from
/// [`ServeHandle::submit_with_id`]; consume with [`PendingReply::wait`].
#[derive(Debug)]
pub struct PendingReply {
    rx: mpsc::Receiver<Response>,
}

impl PendingReply {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerLost`] if the worker died before replying.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)
    }
}

/// One queued unit of work.
struct Job {
    request_id: u64,
    op: Op,
    body: Vec<u8>,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
}

/// Shared state between handles, workers, and the service owner.
struct ServeCore {
    queue: BoundedQueue<Job>,
    state: AtomicU8,
    trace: TraceRecorder,
    in_flight: AtomicU64,
    completed: AtomicU64,
    next_id: AtomicU64,
    workers: usize,
    max_body: usize,
}

impl ServeCore {
    fn draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) != STATE_SERVING
    }

    /// Flips to draining (idempotent) and records how much admitted
    /// work was still in flight at that moment — the work the drain
    /// then flushes to completion.
    fn begin_drain(&self) {
        if self.state.swap(STATE_DRAINING, Ordering::SeqCst) == STATE_SERVING {
            self.trace
                .add(Counter::ServeDrainedInFlight, self.in_flight.load(Ordering::SeqCst));
        }
    }

    fn handle_control(&self, op: Op, request_id: u64) -> Response {
        match op {
            Op::Stats => Response::new(op, request_id, Status::Ok, stats_json(self).into_bytes()),
            Op::Health => Response::new(op, request_id, Status::Ok, health_json(self).into_bytes()),
            Op::Drain => {
                self.begin_drain();
                Response::new(
                    op,
                    request_id,
                    Status::Ok,
                    b"{\"state\":\"draining\"}".to_vec(),
                )
            }
            // Work ops never reach handle_control.
            other => Response::err(
                other,
                request_id,
                Status::Internal,
                "work op routed to the control path".to_string(),
            ),
        }
    }
}

/// The summary [`Service::shutdown`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered over the service's lifetime (ok + error).
    pub completed: u64,
    /// Admitted requests that were still in flight when the drain began
    /// and were flushed to completion rather than dropped.
    pub drained_in_flight: u64,
    /// Deepest submission-queue occupancy ever observed.
    pub queue_high_water: usize,
}

/// A cloneable, thread-safe facade for submitting requests.
#[derive(Clone)]
pub struct ServeHandle {
    core: Arc<ServeCore>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("workers", &self.core.workers)
            .field("draining", &self.core.draining())
            .finish()
    }
}

impl ServeHandle {
    /// A fresh request id (unique within this service).
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.core.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The SSRP body cap this service enforces.
    #[must_use]
    pub fn max_body(&self) -> usize {
        self.core.max_body
    }

    /// The service-owned trace recorder (the server layer counts
    /// connection/byte traffic into it).
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.core.trace
    }

    /// `true` once a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.core.draining()
    }

    /// Submits a request under a caller-chosen id.
    ///
    /// Control ops (stats/health/drain) are answered inline — they
    /// bypass the queue so observability keeps working under overload
    /// and during a drain. Work ops are admitted with a non-blocking
    /// push: this method never blocks on a full queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] (queue full), [`ServeError::Draining`]
    /// (drain begun), [`ServeError::Closed`] (service shut down). In all
    /// three cases nothing was enqueued.
    pub fn submit_with_id(
        &self,
        op: Op,
        request_id: u64,
        body: Vec<u8>,
    ) -> Result<PendingReply, ServeError> {
        let core = &self.core;
        core.trace.add(Counter::ServeRequests, 1);
        match op {
            Op::Stats | Op::Health | Op::Drain => {
                // ss-lint: allow(determinism) -- control-op latency accounting; reaches only the stats body, which is excluded from deterministic output
                let t0 = Instant::now();
                let response = core.handle_control(op, request_id);
                let hist = if op == Op::Stats {
                    LatencyHist::ServeStatsNanos
                } else {
                    LatencyHist::ServeControlNanos
                };
                core.trace.record_latency(hist, nanos_since(t0));
                core.trace.add(Counter::ServeResponsesOk, 1);
                core.completed.fetch_add(1, Ordering::SeqCst);
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(response);
                Ok(PendingReply { rx })
            }
            Op::Encode | Op::Decode | Op::Get => {
                if core.draining() {
                    core.trace.add(Counter::ServeRejectedDraining, 1);
                    return Err(ServeError::Draining);
                }
                let (tx, rx) = mpsc::channel();
                let job = Job {
                    request_id,
                    op,
                    body,
                    reply: tx,
                    // ss-lint: allow(determinism) -- queue-entry timestamp for the latency histogram; never serialized deterministically
                    enqueued: Instant::now(),
                };
                match core.queue.try_push(job) {
                    Ok(()) => {
                        core.in_flight.fetch_add(1, Ordering::SeqCst);
                        Ok(PendingReply { rx })
                    }
                    Err(TryPushError::Full(_)) => {
                        core.trace.add(Counter::ServeOverloaded, 1);
                        Err(ServeError::Overloaded)
                    }
                    Err(TryPushError::Closed(_)) => {
                        core.trace.add(Counter::ServeRejectedDraining, 1);
                        Err(ServeError::Closed)
                    }
                }
            }
        }
    }

    /// Submits under a fresh id and returns the pending reply.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit_with_id`].
    pub fn submit(&self, op: Op, body: Vec<u8>) -> Result<PendingReply, ServeError> {
        self.submit_with_id(op, self.next_id(), body)
    }

    /// Submits and waits: one full request/response round trip.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit`], plus [`ServeError::WorkerLost`].
    pub fn call(&self, op: Op, body: Vec<u8>) -> Result<Response, ServeError> {
        // ss-lint: allow(lock-discipline) -- PendingReply::wait is a one-shot mpsc recv, not a condvar wait; there is no predicate to re-check
        self.submit(op, body)?.wait()
    }

    /// Encodes a tensor into an SSPK container on the worker pool.
    ///
    /// # Errors
    ///
    /// Admission errors as [`ServeHandle::submit`]; codec failures as
    /// [`ServeError::Remote`].
    pub fn encode(&self, tensor: &Tensor) -> Result<Vec<u8>, ServeError> {
        self.call(Op::Encode, wire::encode_tensor(tensor))?.into_ok()
    }

    /// Decodes an SSPK container back into a tensor.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::encode`], plus body-decode failures.
    pub fn decode(&self, packed: &[u8]) -> Result<Tensor, ServeError> {
        let payload = self.call(Op::Decode, packed.to_vec())?.into_ok()?;
        Ok(wire::decode_tensor(&payload)?)
    }

    /// Fetches one record from a registered model store.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::encode`]; unknown models/records surface as
    /// [`ServeError::Remote`] with [`Status::NotFound`].
    pub fn get(&self, model: &str, record: &str) -> Result<Tensor, ServeError> {
        let payload = self
            .call(Op::Get, wire::encode_get(model, record))?
            .into_ok()?;
        Ok(wire::decode_tensor(&payload)?)
    }

    /// The stats snapshot (JSON text).
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::call`].
    pub fn stats(&self) -> Result<String, ServeError> {
        let payload = self.call(Op::Stats, Vec::new())?.into_ok()?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// The health snapshot (JSON text).
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::call`].
    pub fn health(&self) -> Result<String, ServeError> {
        let payload = self.call(Op::Health, Vec::new())?.into_ok()?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Begins a graceful drain: new work ops are refused from this call
    /// on; in-flight work completes. Idempotent.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::call`].
    pub fn drain(&self) -> Result<(), ServeError> {
        self.call(Op::Drain, Vec::new())?.into_ok().map(|_| ())
    }
}

/// A provider a model is served from.
type ModelSource = (String, Arc<dyn StorageProvider + Send + Sync>);

/// The codec service: a worker pool draining one bounded queue.
///
/// Build with [`Service::new`], register models with
/// [`Service::add_model`], spawn the pool with [`Service::start`]
/// (tests deliberately delay this to make overload deterministic), and
/// end with [`Service::shutdown`] for a zero-loss drain.
pub struct Service {
    core: Arc<ServeCore>,
    models: Vec<ModelSource>,
    config: ServeConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("models", &self.models.len())
            .field("started", &!self.workers.is_empty())
            .finish()
    }
}

impl Service {
    /// Builds an (unstarted) service, validating the codec
    /// configuration up front so workers cannot fail to construct their
    /// sessions later.
    ///
    /// # Errors
    ///
    /// [`ServeError::Codec`] for an invalid [`CodecConfig`].
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        config.codec.build()?;
        let workers = if config.workers == 0 {
            ss_core::par::thread_count()
        } else {
            config.workers
        }
        .max(1);
        Ok(Service {
            core: Arc::new(ServeCore {
                queue: BoundedQueue::new(config.queue_depth.max(1)),
                state: AtomicU8::new(STATE_SERVING),
                trace: TraceRecorder::new(),
                in_flight: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                workers,
                max_body: config.max_body,
            }),
            models: Vec::new(),
            config,
            workers: Vec::new(),
        })
    }

    /// Registers a model for the get op: `name` is the model the store
    /// was written under, `provider` holds its shards. Call before
    /// [`Service::start`] — workers snapshot the registry when they
    /// spawn.
    pub fn add_model(&mut self, name: &str, provider: Arc<dyn StorageProvider + Send + Sync>) {
        self.models.push((name.to_string(), provider));
    }

    /// A cloneable submission facade.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Spawns the worker pool. Idempotent; requests submitted before
    /// `start` wait in the queue and are processed once workers exist.
    pub fn start(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        for i in 0..self.core.workers {
            let core = Arc::clone(&self.core);
            let config = self.config;
            let models = self.models.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("ss-serve-{i}"))
                .spawn(move || worker_main(&core, &config, &models));
            if let Ok(handle) = spawned {
                self.workers.push(handle);
            }
        }
    }

    /// Graceful shutdown: drain, close the queue, join the pool. Every
    /// admitted request is answered before this returns — the queue's
    /// close contract keeps pending items poppable, and workers exit
    /// only on a closed *and* empty queue.
    pub fn shutdown(mut self) -> DrainReport {
        self.core.begin_drain();
        self.core.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            completed: self.core.completed.load(Ordering::SeqCst),
            drained_in_flight: self.core.trace.counter(Counter::ServeDrainedInFlight),
            queue_high_water: self.core.queue.high_water(),
        }
    }
}

/// The latency histogram a work op reports into.
fn hist_for(op: Op) -> LatencyHist {
    match op {
        Op::Encode => LatencyHist::ServeEncodeNanos,
        Op::Decode => LatencyHist::ServeDecodeNanos,
        Op::Get => LatencyHist::ServeGetNanos,
        Op::Stats => LatencyHist::ServeStatsNanos,
        Op::Health | Op::Drain => LatencyHist::ServeControlNanos,
    }
}

/// Saturating nanoseconds since `t0`.
fn nanos_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One worker: a reusable codec session, a scratch tensor, and one open
/// [`ModelStore`] per registered model; loops until the queue closes
/// and drains.
fn worker_main(core: &ServeCore, config: &ServeConfig, models: &[ModelSource]) {
    let Ok(mut session) = CodecSession::new(config.codec) else {
        // The config was validated in Service::new; if construction
        // fails anyway, close the queue so submitters see `Closed`
        // instead of hanging on replies that will never come.
        core.queue.close();
        return;
    };
    let mut scratch = Tensor::zeros(Shape::flat(0), FixedType::I16);
    // Stores borrow their providers; both live on this worker's stack
    // for its whole life. A failed open is remembered and answered as
    // StoreFailure per request rather than killing the worker.
    let mut stores: Vec<(String, Result<ModelStore<'_>, String>)> = models
        .iter()
        .map(|(name, provider)| {
            let p: &dyn StorageProvider = provider.as_ref();
            (
                name.clone(),
                ModelStore::open(p, name).map_err(|e| e.to_string()),
            )
        })
        .collect();
    while let Some(job) = core.queue.pop() {
        let response = handle_job(&job, config, &mut session, &mut scratch, &mut stores);
        let ok = response.status == Status::Ok;
        let hist = hist_for(job.op);
        let nanos = nanos_since(job.enqueued);
        // The requester may have given up (disconnected client); a dead
        // reply channel is its problem, not the worker's.
        let _ = job.reply.send(response);
        core.in_flight.fetch_sub(1, Ordering::SeqCst);
        core.completed.fetch_add(1, Ordering::SeqCst);
        core.trace.add(
            if ok {
                Counter::ServeResponsesOk
            } else {
                Counter::ServeResponsesErr
            },
            1,
        );
        core.trace.record_latency(hist, nanos);
    }
}

/// Dispatches one work op to a status + payload.
fn handle_job(
    job: &Job,
    config: &ServeConfig,
    session: &mut CodecSession,
    scratch: &mut Tensor,
    stores: &mut [(String, Result<ModelStore<'_>, String>)],
) -> Response {
    match job.op {
        Op::Encode => match wire::decode_tensor(&job.body) {
            Ok(tensor) => {
                match container::pack_with_scheme(&tensor, config.codec.group_size, config.container)
                {
                    Ok(packed) => Response::new(job.op, job.request_id, Status::Ok, packed),
                    Err(e) => Response::err(job.op, job.request_id, Status::CodecFailure, e.to_string()),
                }
            }
            Err(e) => Response::err(job.op, job.request_id, Status::BadRequest, e.to_string()),
        },
        Op::Decode => match container::unpack_with(&job.body, session, scratch) {
            Ok(()) => Response::new(
                job.op,
                job.request_id,
                Status::Ok,
                wire::encode_tensor(scratch),
            ),
            Err(e) => {
                // Framing problems are the client's fault; stream/tensor
                // failures are the codec refusing corrupt payload.
                let status = match e {
                    ContainerError::BadMagic
                    | ContainerError::UnsupportedVersion(_)
                    | ContainerError::Malformed(_)
                    | ContainerError::LengthOverflow { .. } => Status::BadRequest,
                    _ => Status::CodecFailure,
                };
                Response::err(job.op, job.request_id, status, e.to_string())
            }
        },
        Op::Get => match wire::decode_get(&job.body) {
            Ok((model, record)) => {
                // Linear search: the registry is tiny and ordered, and a
                // map here would put hash iteration in hot code.
                match stores.iter_mut().find(|(name, _)| *name == model) {
                    None => Response::err(
                        job.op,
                        job.request_id,
                        Status::NotFound,
                        format!("model {model:?} is not registered"),
                    ),
                    Some((_, Err(why))) => Response::err(
                        job.op,
                        job.request_id,
                        Status::StoreFailure,
                        format!("model {model:?} failed to open: {why}"),
                    ),
                    Some((_, Ok(store))) => match store.get(&record) {
                        Ok(tensor) => Response::new(
                            job.op,
                            job.request_id,
                            Status::Ok,
                            wire::encode_tensor(&tensor),
                        ),
                        Err(StoreError::RecordNotFound { .. }) => Response::err(
                            job.op,
                            job.request_id,
                            Status::NotFound,
                            format!("record {record:?} not found in model {model:?}"),
                        ),
                        Err(e) => Response::err(
                            job.op,
                            job.request_id,
                            Status::StoreFailure,
                            e.to_string(),
                        ),
                    },
                }
            }
            Err(e) => Response::err(job.op, job.request_id, Status::BadRequest, e.to_string()),
        },
        // Control ops are answered inline at admission and never queued.
        Op::Stats | Op::Health | Op::Drain => Response::err(
            job.op,
            job.request_id,
            Status::Internal,
            "control op routed to a worker".to_string(),
        ),
    }
}

/// The stats op body: service gauges, every `serve_*` counter, and the
/// per-op latency histograms' percentile summaries. Integer-only and
/// fixed key order; still *live* data (counter values change between
/// calls), so benches exclude stats bodies from determinism hashes.
fn stats_json(core: &ServeCore) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"ss-serve-stats-v1\"");
    let _ = write!(
        out,
        ",\"state\":\"{}\"",
        if core.draining() { "draining" } else { "serving" }
    );
    let _ = write!(out, ",\"workers\":{}", core.workers);
    let _ = write!(
        out,
        ",\"queue\":{{\"capacity\":{},\"len\":{},\"high_water\":{}}}",
        core.queue.capacity(),
        core.queue.len(),
        core.queue.high_water()
    );
    let _ = write!(out, ",\"in_flight\":{}", core.in_flight.load(Ordering::SeqCst));
    let _ = write!(out, ",\"completed\":{}", core.completed.load(Ordering::SeqCst));
    out.push_str(",\"counters\":{");
    let mut first = true;
    for &c in Counter::ALL {
        if !c.name().starts_with("serve_") {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", c.name(), core.trace.counter(c));
    }
    out.push_str("},\"latency_ns\":{");
    for (i, &h) in LatencyHist::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let counts = core.trace.latency(h);
        let _ = write!(
            out,
            "\"{}\":{{\"total\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
            h.name(),
            counts.total(),
            counts.p50().unwrap_or(0),
            counts.p99().unwrap_or(0),
            counts.p999().unwrap_or(0)
        );
    }
    out.push_str("}}");
    out
}

/// The health op body: liveness plus drain state, small enough for a
/// poll loop.
fn health_json(core: &ServeCore) -> String {
    format!(
        "{{\"schema\":\"ss-serve-health-v1\",\"state\":\"{}\",\"in_flight\":{},\"queue_len\":{}}}",
        if core.draining() { "draining" } else { "serving" },
        core.in_flight.load(Ordering::SeqCst),
        core.queue.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_store::{MemoryProvider, ModelWriter};

    fn tensor(seed: i32) -> Tensor {
        let vals = (0..96).map(|v| ((v * 7 + seed) % 19) - 9).collect();
        Tensor::from_vec(Shape::flat(96), FixedType::I16, vals).expect("valid tensor")
    }

    #[test]
    fn encode_decode_get_round_trip_in_process() {
        let provider = Arc::new(MemoryProvider::new());
        let mut writer = ModelWriter::new(provider.as_ref(), "tiny");
        let stored = tensor(3);
        writer.append_tensor("fc.weight", 0, &stored).expect("append");
        writer.finish().expect("finish");

        let mut service =
            Service::new(ServeConfig::new().with_workers(2).with_queue_depth(8)).expect("service");
        service.add_model("tiny", provider);
        service.start();
        let handle = service.handle();

        let t = tensor(1);
        let packed = handle.encode(&t).expect("encode");
        assert_eq!(handle.decode(&packed).expect("decode"), t);
        assert_eq!(handle.get("tiny", "fc.weight").expect("get"), stored);

        // Typed remote errors.
        match handle.get("tiny", "absent") {
            Err(ServeError::Remote { status, .. }) => assert_eq!(status, Status::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
        match handle.get("ghost", "fc.weight") {
            Err(ServeError::Remote { status, .. }) => assert_eq!(status, Status::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
        match handle.decode(b"not a container") {
            Err(ServeError::Remote { status, .. }) => assert_eq!(status, Status::BadRequest),
            other => panic!("expected BadRequest, got {other:?}"),
        }

        let stats = handle.stats().expect("stats");
        assert!(stats.contains("\"serve_responses_ok\""));
        assert!(stats.contains("\"serve_encode_nanos\""));
        let report = service.shutdown();
        assert!(report.completed >= 6);
    }

    #[test]
    fn plugin_schemes_serve_round_trips() {
        // A service configured for a registry scheme (DPRed, AdaBits)
        // packs encode responses under that wire id; decode resolves the
        // id from the container header, so the same service decodes any
        // registered scheme's containers.
        for scheme in [SchemeId::DPRED, SchemeId::ADABITS] {
            let mut service = Service::new(
                ServeConfig::new()
                    .with_container(scheme)
                    .with_workers(2)
                    .with_queue_depth(8),
            )
            .expect("service");
            service.start();
            let handle = service.handle();
            let t = tensor(7);
            let packed = handle.encode(&t).expect("encode");
            assert_eq!(
                shapeshifter::container::info(&packed).expect("info").scheme,
                scheme
            );
            assert_eq!(handle.decode(&packed).expect("decode"), t);
            service.shutdown();
        }
    }

    #[test]
    fn unregistered_scheme_id_is_a_typed_codec_failure() {
        // An encode-side config holding an unregistered id must answer
        // CodecFailure per request, never panic a worker.
        let mut service = Service::new(
            ServeConfig::new()
                .with_container(SchemeId::new(77))
                .with_workers(1),
        )
        .expect("service");
        service.start();
        let handle = service.handle();
        match handle.encode(&tensor(2)) {
            Err(ServeError::Remote { status, .. }) => {
                assert_eq!(status, Status::CodecFailure);
            }
            other => panic!("expected CodecFailure, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn overload_is_typed_and_deterministic_before_start() {
        // No workers yet: the queue fills exactly to capacity, then
        // every further submission is a typed Overloaded.
        let service = Service::new(ServeConfig::new().with_workers(1).with_queue_depth(2))
            .expect("service");
        let handle = service.handle();
        let t = tensor(5);
        let a = handle.submit(Op::Encode, wire::encode_tensor(&t)).expect("first fits");
        let b = handle.submit(Op::Encode, wire::encode_tensor(&t)).expect("second fits");
        for _ in 0..3 {
            assert!(matches!(
                handle.submit(Op::Encode, wire::encode_tensor(&t)),
                Err(ServeError::Overloaded)
            ));
        }
        // Control ops still answer while the queue is full.
        assert!(handle.health().expect("health").contains("serving"));
        // Start the pool: the queued work completes correctly.
        let mut service = service;
        service.start();
        assert!(a.wait().expect("reply a").into_ok().is_ok());
        assert!(b.wait().expect("reply b").into_ok().is_ok());
        let report = service.shutdown();
        assert_eq!(report.completed, 3, "two encodes + one health");
    }

    #[test]
    fn drain_refuses_new_work_but_flushes_queued_work() {
        let service = Service::new(ServeConfig::new().with_workers(2).with_queue_depth(16))
            .expect("service");
        let handle = service.handle();
        let pending: Vec<PendingReply> = (0..10)
            .map(|i| {
                handle
                    .submit(Op::Encode, wire::encode_tensor(&tensor(i)))
                    .expect("admitted")
            })
            .collect();
        handle.drain().expect("drain");
        assert!(handle.is_draining());
        assert!(matches!(
            handle.submit(Op::Encode, wire::encode_tensor(&tensor(0))),
            Err(ServeError::Draining)
        ));
        // Stats/health still answer during the drain.
        assert!(handle.stats().expect("stats").contains("draining"));
        let mut service = service;
        service.start();
        for reply in pending {
            assert!(reply.wait().expect("flushed").into_ok().is_ok());
        }
        let report = service.shutdown();
        assert_eq!(report.drained_in_flight, 10);
        assert!(report.completed >= 10);
    }

    #[test]
    fn shutdown_answers_submissions_with_closed() {
        let service = Service::new(ServeConfig::new().with_workers(1)).expect("service");
        let handle = service.handle();
        let report = service.shutdown();
        assert_eq!(report.completed, 0);
        assert!(matches!(
            handle.submit(Op::Encode, Vec::new()),
            Err(ServeError::Draining) | Err(ServeError::Closed)
        ));
    }

    #[test]
    fn stats_json_is_parseable_shape() {
        let service = Service::new(ServeConfig::new().with_workers(1)).expect("service");
        let handle = service.handle();
        let stats = handle.stats().expect("stats");
        for key in [
            "\"schema\":\"ss-serve-stats-v1\"",
            "\"queue\":{\"capacity\":",
            "\"serve_requests\":",
            "\"serve_overloaded\":",
            "\"latency_ns\":{",
            "\"p999\":",
        ] {
            assert!(stats.contains(key), "missing {key} in {stats}");
        }
        let health = handle.health().expect("health");
        assert!(health.contains("\"schema\":\"ss-serve-health-v1\""));
        drop(handle);
        let _ = service.shutdown();
    }
}
