//! Fault injection for the serve stack, end to end over TCP: clients
//! that vanish mid-request, drains racing queued work, overload under a
//! full queue, corrupt frames on a live socket, and a multi-client soak
//! that pins response↔request pairing across worker-pool sizes.
//!
//! The tests exploit one deliberate seam for determinism:
//! [`Service::start`] is separate from [`Service::new`], so a test can
//! fill the queue (or drain it) while no worker can race the admissions,
//! then start the pool and watch exactly the predicted responses flush.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ss_serve::wire::{decode_tensor, encode_tensor};
use ss_serve::{Client, Op, ServeConfig, ServeError, Server, Service, Status};
use ss_store::{MemoryProvider, ModelWriter};
use ss_tensor::{FixedType, Shape, Tensor};
use ss_trace::Counter;

fn tensor(seed: i32) -> Tensor {
    let vals = (0..64).map(|v| ((v * 11 + seed) % 23) - 11).collect();
    Tensor::from_vec(Shape::flat(64), FixedType::I16, vals).expect("valid tensor")
}

/// Polls `probe` until it returns true; panics after five seconds. The
/// serve counters are the sync points — tests wait on observable state,
/// never on sleeps alone.
fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn client_disconnect_mid_request_leaves_the_server_healthy() {
    let mut service = Service::new(ServeConfig::new().with_workers(2)).expect("service");
    service.start();
    let handle = service.handle();
    let server = Server::start(handle.clone(), "127.0.0.1:0").expect("bind");

    // Fault 1: a client submits real work, then vanishes without reading
    // the response. The worker still completes the job; only delivery
    // dies with the socket.
    let mut ghost = Client::connect(server.addr()).expect("connect");
    ghost.send(Op::Encode, encode_tensor(&tensor(1))).expect("send");
    ghost.abandon();

    // Fault 2: a client hangs up midway through a frame's bytes. The
    // server must treat the torn read as a plain disconnect — not a
    // protocol violation, not a crash.
    let frame = ss_serve::Frame::request(Op::Encode, 9, encode_tensor(&tensor(2))).encode();
    let mut torn = TcpStream::connect(server.addr()).expect("connect");
    torn.write_all(&frame[..frame.len() / 2]).expect("half a frame");
    drop(torn);

    // The server keeps serving fresh clients correctly after both.
    wait_until("both faulty connections to register", || {
        handle.trace().counter(Counter::ServeConnections) >= 2
    });
    let mut alive = Client::connect(server.addr()).expect("connect");
    let t = tensor(3);
    let packed = alive.encode(&t).expect("encode after faults");
    assert_eq!(alive.decode(&packed).expect("decode after faults"), t);

    server.stop();
    // The abandoned request was admitted and completed despite its dead
    // reply channel; the torn one was never admitted.
    let report = service.shutdown();
    assert!(report.completed >= 3);
    // A torn disconnect is not a protocol violation.
    assert_eq!(handle.trace().counter(Counter::ServeProtocolErrors), 0);
}

#[test]
fn corrupt_frames_close_the_connection_and_are_counted() {
    let mut service = Service::new(ServeConfig::new().with_workers(1)).expect("service");
    service.start();
    let handle = service.handle();
    let server = Server::start(handle.clone(), "127.0.0.1:0").expect("bind");

    let clean = ss_serve::Frame::request(Op::Stats, 1, Vec::new()).encode();
    // Three distinct corruptions: bad magic, flipped CRC bit, and a
    // response frame sent where a request belongs.
    let mut bad_magic = clean.clone();
    bad_magic[0] = b'X';
    let mut bad_crc = clean.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0x01;
    let response_frame =
        ss_serve::Frame::response(Op::Stats, 1, Status::Ok, b"i am the server now").encode();

    for (i, poison) in [bad_magic, bad_crc, response_frame].iter().enumerate() {
        let before = handle.trace().counter(Counter::ServeProtocolErrors);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(poison).expect("write poison");
        // The server answers a poisoned stream by closing it: the next
        // read sees EOF, and the violation is counted before the close.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
        assert!(
            sink.is_empty(),
            "corruption case {i}: no response may precede the close"
        );
        assert_eq!(
            handle.trace().counter(Counter::ServeProtocolErrors),
            before + 1,
            "corruption case {i} must be counted exactly once"
        );
    }

    // A clean client still gets service afterwards.
    let mut alive = Client::connect(server.addr()).expect("connect");
    assert!(alive.health().expect("health").contains("serving"));

    server.stop();
    let _ = service.shutdown();
}

#[test]
fn overloaded_rejections_are_typed_on_the_wire_and_fifo_paired() {
    // queue_depth 1 and no workers: of 8 pipelined requests, exactly the
    // first is admitted, the other 7 are refused Overloaded — and the
    // responses still come back in request order with matching ids.
    let mut service =
        Service::new(ServeConfig::new().with_workers(1).with_queue_depth(1)).expect("service");
    let handle = service.handle();
    let server = Server::start(handle.clone(), "127.0.0.1:0").expect("bind");

    let mut client = Client::connect(server.addr()).expect("connect");
    let mut sent = Vec::new();
    for i in 0..8 {
        sent.push(
            client
                .send(Op::Encode, encode_tensor(&tensor(i)))
                .expect("send"),
        );
    }
    // Wait until every rejection has actually been decided, then let the
    // pool flush the one admitted job.
    wait_until("7 overload rejections", || {
        handle.trace().counter(Counter::ServeOverloaded) >= 7
    });
    service.start();

    for (i, &id) in sent.iter().enumerate() {
        let response = client.recv().expect("response");
        assert_eq!(response.request_id, id, "response {i} out of order");
        assert_eq!(response.op, Op::Encode);
        let expected = if i == 0 { Status::Ok } else { Status::Overloaded };
        assert_eq!(response.status, expected, "response {i} wrong status");
    }

    server.stop();
    let report = service.shutdown();
    assert_eq!(report.completed, 1, "exactly the admitted request ran");
    assert_eq!(handle.trace().counter(Counter::ServeOverloaded), 7);
}

#[test]
fn drain_over_tcp_refuses_new_work_and_flushes_queued_work() {
    let mut service =
        Service::new(ServeConfig::new().with_workers(2).with_queue_depth(16)).expect("service");
    let handle = service.handle();
    let server = Server::start(handle.clone(), "127.0.0.1:0").expect("bind");

    // Five real jobs sit in the queue (no workers yet)...
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut sent = Vec::new();
    for i in 0..5 {
        sent.push(
            client
                .send(Op::Encode, encode_tensor(&tensor(i)))
                .expect("send"),
        );
    }
    wait_until("5 admissions", || {
        handle.trace().counter(Counter::ServeRequests) >= 5
    });

    // ...when a second connection orders the drain (control ops bypass
    // the queue, so this works even though the pool has never run).
    let mut operator = Client::connect(server.addr()).expect("connect");
    operator.drain().expect("drain");
    assert!(handle.is_draining());

    // New work after the drain is refused on the wire, typed.
    let late = client
        .send(Op::Encode, encode_tensor(&tensor(9)))
        .expect("send");
    sent.push(late);

    // Start the pool: the five queued jobs flush, the late one answers
    // Draining, all FIFO with matching ids — zero loss, zero reorder.
    service.start();
    for (i, &id) in sent.iter().enumerate() {
        let response = client.recv().expect("response");
        assert_eq!(response.request_id, id, "response {i} out of order");
        let expected = if i < 5 { Status::Ok } else { Status::Draining };
        assert_eq!(response.status, expected, "response {i} wrong status");
    }

    server.stop();
    let report = service.shutdown();
    assert_eq!(report.drained_in_flight, 5);
    assert!(report.completed >= 5);
}

#[test]
fn multi_client_soak_pairs_every_response_across_worker_counts() {
    // The pairing invariant under real concurrency: several clients
    // pipelining mixed ops against pools of 1..=8 workers, every
    // response matching its request's id, op, and payload.
    for workers in [1usize, 2, 4, 8] {
        let provider = Arc::new(MemoryProvider::new());
        let mut writer = ModelWriter::new(provider.as_ref(), "soak");
        let stored = tensor(77);
        writer.append_tensor("w", 0, &stored).expect("append");
        writer.finish().expect("finish");

        let mut service = Service::new(
            ServeConfig::new()
                .with_workers(workers)
                .with_queue_depth(256),
        )
        .expect("service");
        service.add_model("soak", provider);
        service.start();
        let server = Server::start(service.handle(), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let stored = &stored;
        std::thread::scope(|scope| {
            for c in 0..4i32 {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for round in 0..6i32 {
                        // Pipeline a batch of encodes deep enough to make
                        // workers finish out of order, then check FIFO.
                        let originals: Vec<Tensor> =
                            (0..8).map(|i| tensor(c * 1000 + round * 10 + i)).collect();
                        let ids: Vec<u64> = originals
                            .iter()
                            .map(|t| client.send(Op::Encode, encode_tensor(t)).expect("send"))
                            .collect();
                        let mut packed = Vec::new();
                        for &id in &ids {
                            let response = client.recv().expect("recv");
                            assert_eq!(response.request_id, id);
                            assert_eq!(response.op, Op::Encode);
                            assert_eq!(response.status, Status::Ok);
                            packed.push(response.payload);
                        }
                        // Round-trip each container back through decode:
                        // payload correctness, not just id pairing.
                        for (container, original) in packed.iter().zip(&originals) {
                            assert_eq!(
                                &client.decode(container).expect("decode"),
                                original,
                                "worker count {workers}: payload mismatch"
                            );
                        }
                        // And interleave a store fetch.
                        assert_eq!(&client.get("soak", "w").expect("get"), stored);
                    }
                });
            }
        });

        server.stop();
        let report = service.shutdown();
        // 4 clients × 6 rounds × (8 encodes + 8 decodes + 1 get).
        assert!(
            report.completed >= 4 * 6 * 17,
            "worker count {workers}: only {} completed",
            report.completed
        );
    }
}

#[test]
fn in_process_submissions_race_a_drain_without_loss_or_duplication() {
    // The in-process half of the drain contract: submitters hammer the
    // handle while another thread flips the drain; every Ok admission
    // must produce exactly one reply, every rejection must be typed.
    let mut service =
        Service::new(ServeConfig::new().with_workers(4).with_queue_depth(8)).expect("service");
    service.start();
    let handle = service.handle();

    let replies: Vec<usize> = std::thread::scope(|scope| {
        let spawned: Vec<_> = (0..4i32)
            .map(|c| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut got = 0usize;
                    for i in 0..200i32 {
                        match handle.submit(Op::Encode, encode_tensor(&tensor(c * 300 + i))) {
                            Ok(pending) => {
                                let response = pending.wait().expect("admitted work replies");
                                assert_eq!(response.op, Op::Encode);
                                assert_eq!(response.status, Status::Ok);
                                got += 1;
                            }
                            Err(
                                ServeError::Overloaded | ServeError::Draining | ServeError::Closed,
                            ) => {}
                            Err(other) => panic!("untyped admission failure: {other:?}"),
                        }
                        if i == 100 {
                            handle.drain().expect("drain");
                        }
                    }
                    got
                })
            })
            .collect();
        spawned.into_iter().map(|s| s.join().expect("soak thread")).collect()
    });

    let answered: usize = replies.iter().sum();
    let report = service.shutdown();
    // Every admitted job replied before shutdown returned, and the
    // service completed exactly the admitted set (plus the 4 drain
    // control calls) — nothing lost, nothing duplicated.
    assert_eq!(report.completed, answered as u64 + 4);
    assert!(answered >= 4, "at least the pre-drain admissions answered");
}

#[test]
fn decode_of_a_corrupt_container_is_a_typed_remote_error_over_tcp() {
    let mut service = Service::new(ServeConfig::new().with_workers(1)).expect("service");
    service.start();
    let server = Server::start(service.handle(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A container with torn magic, and a truncated one: the decode op
    // must answer a typed error status, and the connection must survive.
    let packed = client.encode(&tensor(4)).expect("encode");
    let mut corrupt = packed.clone();
    corrupt[0] ^= 0xFF;
    let truncated = packed[..packed.len().saturating_sub(3)].to_vec();
    for bad in [corrupt, truncated] {
        match client.call(Op::Decode, bad).expect("transport ok").into_ok() {
            Err(ServeError::Remote { status, .. }) => {
                assert!(matches!(status, Status::BadRequest | Status::CodecFailure));
            }
            other => panic!("corrupt container must be a typed remote error, got {other:?}"),
        }
    }
    // Same connection, clean request: still served.
    assert_eq!(client.decode(&packed).expect("decode"), tensor(4));
    // Tensor payload check uses the wire helpers end to end.
    let body = encode_tensor(&tensor(4));
    assert_eq!(decode_tensor(&body).expect("wire"), tensor(4));

    server.stop();
    let _ = service.shutdown();
}
