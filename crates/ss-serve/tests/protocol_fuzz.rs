//! Corruption suite for SSRP frames, mirroring the `SSRD` shard suite:
//! damage anywhere in a frame must surface as a typed
//! [`ProtocolError`] — never a panic, a wrong parse, or (the dangerous
//! one for a dispatcher) a frame that decodes as a *different* op than
//! the one that was sent.
//!
//! The trailing CRC-32 covers the header *and* body, so every
//! single-bit flip — including in the op byte and the length field — is
//! guaranteed detectable; this suite proves it exhaustively for
//! representative frames of every op and both kinds, through both the
//! slice parser and the stream reader.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ss_serve::protocol::{Frame, Kind, Op, ProtocolError, Status, DEFAULT_MAX_BODY, HEADER_LEN};

/// Representative frames: every op, request and response kinds, empty
/// and non-empty bodies, edge-case ids.
fn corpus() -> Vec<Frame> {
    let mut frames = Vec::new();
    for (i, &op) in Op::ALL.iter().enumerate() {
        frames.push(Frame::request(op, i as u64, Vec::new()));
        frames.push(Frame::request(
            op,
            u64::MAX - i as u64,
            (0..64u32).map(|v| (v.wrapping_mul(37) % 251) as u8).collect(),
        ));
        frames.push(Frame::response(op, 7 * i as u64, Status::Ok, &[1, 2, 3, 4, 5]));
        frames.push(Frame::response(op, 0, Status::Overloaded, b"queue full"));
    }
    frames
}

/// Decodes damaged bytes and asserts the outcome is a typed refusal; a
/// successful parse is only tolerable if it reproduces the original
/// frame exactly (impossible for a real flip, but the harness guards
/// itself). Returns `true` when the damage was detected.
fn detects(original: &Frame, damaged: &[u8]) -> bool {
    // Slice parser.
    let slice_detected = match Frame::decode(damaged, DEFAULT_MAX_BODY) {
        Ok((frame, used)) => {
            assert_eq!(
                (&frame, used),
                (original, damaged.len()),
                "corruption silently changed the parsed frame"
            );
            false
        }
        Err(_) => true,
    };
    // Stream reader must agree with the slice parser.
    let mut cursor = std::io::Cursor::new(damaged.to_vec());
    let stream_detected = Frame::read_from(&mut cursor, DEFAULT_MAX_BODY).is_err();
    assert_eq!(
        slice_detected, stream_detected,
        "slice parser and stream reader disagree on damaged input"
    );
    slice_detected
}

#[test]
fn every_single_bit_flip_is_detected() {
    for frame in corpus() {
        let clean = frame.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut damaged = clean.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    detects(&frame, &damaged),
                    "{:?}: flip of bit {bit} at byte {byte} went undetected",
                    frame.kind
                );
            }
        }
        // The clean frame must still parse (guards the harness).
        assert!(!detects(&frame, &clean));
    }
}

#[test]
fn a_flipped_op_byte_never_dispatches_as_another_op() {
    // The mis-dispatch hazard specifically: corrupt only the kind byte
    // into *every other value* — including other valid op bytes — and
    // require a typed refusal every time. A corrupted-but-valid op byte
    // is caught by the CRC; an invalid one by the kind check.
    let frame = Frame::request(Op::Encode, 42, vec![9; 16]);
    let clean = frame.encode();
    for value in 0..=255u8 {
        if value == clean[5] {
            continue;
        }
        let mut damaged = clean.clone();
        damaged[5] = value;
        match Frame::decode(&damaged, DEFAULT_MAX_BODY) {
            Err(ProtocolError::UnknownOp(b)) => assert_eq!(b, value),
            Err(ProtocolError::CrcMismatch { .. }) => {
                // A valid-but-different op byte reaches the CRC check and
                // dies there.
                assert!(
                    Kind::from_byte(value).is_some(),
                    "byte {value:#04x} should have been refused as UnknownOp"
                );
            }
            other => panic!("kind byte {value:#04x} must be refused, got {other:?}"),
        }
    }
}

#[test]
fn every_truncation_is_typed() {
    for frame in corpus() {
        let clean = frame.encode();
        for cut in 0..clean.len() {
            match Frame::decode(&clean[..cut], DEFAULT_MAX_BODY) {
                Err(ProtocolError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                    assert!(needed <= clean.len());
                }
                other => panic!("truncation to {cut} bytes must be Truncated, got {other:?}"),
            }
            // The stream reader sees the same prefix as an EOF.
            let mut cursor = std::io::Cursor::new(clean[..cut].to_vec());
            assert!(
                matches!(
                    Frame::read_from(&mut cursor, DEFAULT_MAX_BODY),
                    Err(ProtocolError::Io(std::io::ErrorKind::UnexpectedEof))
                        | Err(ProtocolError::Truncated { .. })
                ),
                "stream truncation to {cut} bytes must be typed"
            );
        }
    }
}

#[test]
fn hostile_lengths_are_refused_before_allocation() {
    let frame = Frame::request(Op::Decode, 3, vec![1; 32]);
    let clean = frame.encode();
    // Every declared length larger than the cap dies at the length
    // check, no matter what the rest of the frame claims.
    for hostile in [
        DEFAULT_MAX_BODY as u32 + 1,
        u32::MAX,
        u32::MAX - 1,
        1 << 30,
    ] {
        let mut damaged = clean.clone();
        damaged[14..18].copy_from_slice(&hostile.to_le_bytes());
        assert!(matches!(
            Frame::decode(&damaged, DEFAULT_MAX_BODY),
            Err(ProtocolError::BodyTooLarge { len, .. }) if len == u64::from(hostile)
        ));
        let mut cursor = std::io::Cursor::new(damaged);
        assert!(matches!(
            Frame::read_from(&mut cursor, DEFAULT_MAX_BODY),
            Err(ProtocolError::BodyTooLarge { .. })
        ));
    }
    // A *small* cap is honored too: the same clean frame is refused by a
    // parser configured tighter than its body.
    assert!(matches!(
        Frame::decode(&clean, 16),
        Err(ProtocolError::BodyTooLarge { len: 32, max: 16 })
    ));
}

#[test]
fn garbage_prefixes_are_typed() {
    // Arbitrary garbage (deterministic xorshift bytes) must always be a
    // typed refusal for both parsers.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for len in [0usize, 1, 3, 4, 5, HEADER_LEN - 1, HEADER_LEN, 64, 256] {
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            bytes.push((state >> 56) as u8);
        }
        assert!(Frame::decode(&bytes, DEFAULT_MAX_BODY).is_err());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(Frame::read_from(&mut cursor, DEFAULT_MAX_BODY).is_err());
    }
}

#[test]
fn frame_error_variants_map_to_their_fields() {
    let clean = Frame::request(Op::Stats, 11, vec![5; 8]).encode();

    let mut bad = clean.clone();
    bad[0..4].copy_from_slice(b"JUNK");
    assert!(matches!(
        Frame::decode(&bad, DEFAULT_MAX_BODY),
        Err(ProtocolError::BadMagic(m)) if &m == b"JUNK"
    ));

    let mut bad = clean.clone();
    bad[4] = 200;
    assert!(matches!(
        Frame::decode(&bad, DEFAULT_MAX_BODY),
        Err(ProtocolError::UnsupportedVersion(200))
    ));

    let mut bad = clean;
    let crc_at = bad.len() - 4;
    bad[crc_at] ^= 0xFF;
    match Frame::decode(&bad, DEFAULT_MAX_BODY) {
        Err(ProtocolError::CrcMismatch { stored, computed }) => assert_ne!(stored, computed),
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
}
