//! Property tests on the quantizers: order preservation, bounded
//! round-trip error, and the structural difference between the affine
//! (TF) and power-of-two (RA) schemes that Figure 3 visualizes.

use proptest::prelude::*;
use ss_quant::{OutlierAwareQuantizer, RangeAwareQuantizer, TfQuantizer};
use ss_tensor::{FixedType, Shape, Tensor};

fn i16_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-32767i32..=32767, 1..300).prop_map(|v| {
        Tensor::from_vec(Shape::flat(v.len()), FixedType::I16, v).expect("values fit i16")
    })
}

fn u16_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(0i32..=65535, 1..300).prop_map(|v| {
        Tensor::from_vec(Shape::flat(v.len()), FixedType::U16, v).expect("values fit u16")
    })
}

proptest! {
    #[test]
    fn tf_is_order_preserving(t in i16_tensor(), asym in 0.0f64..=1.0) {
        let q = TfQuantizer::new(asym).unwrap();
        let out = q.quantize(&t, 32_767).unwrap();
        let mut pairs: Vec<(i32, i32)> =
            t.values().iter().copied().zip(out.values().iter().copied()).collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn tf_roundtrip_error_is_bounded_by_half_a_step(t in i16_tensor(), asym in 0.1f64..=1.0) {
        let cal_max = 32_767i32;
        let q = TfQuantizer::new(asym).unwrap();
        let out = q.quantize(&t, cal_max).unwrap();
        let scale = (f64::from(cal_max) * (1.0 + asym)) / 255.0;
        let zp = f64::from(q.zero_point());
        for (&v, &s) in t.values().iter().zip(out.values()) {
            // Values inside the calibration range dequantize to within
            // one step (rounding) of the original.
            let lo = -asym * f64::from(cal_max);
            if f64::from(v) >= lo && v <= cal_max && s > 0 && s < 255 {
                let deq = (f64::from(s) - zp) * scale;
                prop_assert!(
                    (deq - f64::from(v)).abs() <= scale,
                    "v {v} stored {s} dequantizes to {deq}"
                );
            }
        }
    }

    #[test]
    fn ra_preserves_zero_sign_and_order(t in u16_tensor(), profile in 8u8..=16) {
        let q = RangeAwareQuantizer::new(8).unwrap();
        let out = q.quantize(&t, profile).unwrap();
        for (&v, &s) in t.values().iter().zip(out.values()) {
            if v == 0 {
                prop_assert_eq!(s, 0, "zeros map to zero");
            }
            prop_assert!(s >= 0);
        }
        let mut pairs: Vec<(i32, i32)> =
            t.values().iter().copied().zip(out.values().iter().copied()).collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ra_roundtrip_error_is_bounded(t in u16_tensor()) {
        let q = RangeAwareQuantizer::new(8).unwrap();
        let profile = t.profiled_width();
        let shift = u32::from(q.shift_for(profile));
        let out = q.quantize(&t, profile).unwrap();
        for (&v, &s) in t.values().iter().zip(out.values()) {
            if s < 255 {
                // Not saturated: dequantization lands within half a step.
                let deq = i64::from(s) << shift;
                let err = (deq - i64::from(v)).abs();
                prop_assert!(err <= 1 << shift.max(1) >> 1, "v {v} -> {s} (shift {shift})");
            }
        }
    }

    #[test]
    fn outlier_counts_are_capped(t in i16_tensor(), bits in 2u8..=8) {
        let q = OutlierAwareQuantizer::new(bits, 0.01).unwrap();
        let oq = q.quantize(&t).unwrap();
        let nonzero = t.values().iter().filter(|&&v| v != 0).count();
        // The top-k rule: round(nonzero * f) outliers, at least one when
        // any non-zero value exists.
        let expect = ((nonzero as f64) * 0.01).round().max(1.0) as usize;
        if nonzero > 0 {
            prop_assert_eq!(oq.outlier_count(), expect.min(nonzero));
        } else {
            prop_assert_eq!(oq.outlier_count(), 0);
        }
    }

    #[test]
    fn outlier_common_values_fit_their_container(t in i16_tensor(), bits in 2u8..=8) {
        let q = OutlierAwareQuantizer::new(bits, 0.05).unwrap();
        let oq = q.quantize(&t).unwrap();
        let max_common = (1i32 << (bits - 1)) - 1;
        let mut outliers_seen = 0;
        for &v in oq.tensor().values() {
            if v.abs() > max_common {
                outliers_seen += 1;
            }
        }
        prop_assert!(outliers_seen <= oq.outlier_count());
    }
}
