//! Range-aware power-of-two quantization.

use ss_tensor::{FixedType, Signedness, Tensor, TensorError};

use crate::QuantError;

/// Range-aware 8-bit quantization: a per-layer power-of-two rescale,
/// `q = round(v / 2^shift)`, with the shift chosen just large enough that
/// the layer's profiled maximum fits the 8-bit container.
///
/// Unlike the affine TensorFlow scheme, zero maps to zero and a value that
/// needed `w` bits in the master needs about `w - shift` bits afterwards —
/// narrow value ranges are *not* expanded to fill the container, preserving
/// the per-group opportunity ShapeShifter exploits ("we deploy a
/// range-aware quantization method, preserving the benefits of per group
/// data length adaptation", paper §1).
///
/// # Examples
///
/// ```
/// use ss_quant::RangeAwareQuantizer;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = RangeAwareQuantizer::new(8)?;
/// let acts = Tensor::from_vec(Shape::flat(3), FixedType::U16, vec![0, 12, 60_000])?;
/// // Profiled width 16 -> shift 8.
/// let t = q.quantize(&acts, 16)?;
/// assert_eq!(t.values(), &[0, 0, 234]); // zero stays zero, small stays small
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeAwareQuantizer {
    target_bits: u8,
}

impl RangeAwareQuantizer {
    /// Creates a quantizer targeting a container of `target_bits` total
    /// bits (8 for the paper's int8 studies).
    ///
    /// # Errors
    ///
    /// [`QuantError::InvalidTargetWidth`] unless `2 <= target_bits <= 16`.
    pub fn new(target_bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&target_bits) {
            return Err(QuantError::InvalidTargetWidth { bits: target_bits });
        }
        Ok(Self { target_bits })
    }

    /// The target container width.
    #[must_use]
    pub fn target_bits(&self) -> u8 {
        self.target_bits
    }

    /// The right-shift applied to a tensor whose profile-derived width is
    /// `profiled_width` (in the same signed/unsigned metric as the tensor).
    #[must_use]
    pub fn shift_for(&self, profiled_width: u8) -> u8 {
        profiled_width.saturating_sub(self.target_bits)
    }

    /// Quantizes a master tensor given its per-layer profiled width.
    ///
    /// The target container keeps the master's signedness. Values are
    /// rounded (ties away from zero) and clamped — a value beyond the
    /// profiled range saturates exactly as in a deployed quantized model.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] only on internal container violations, which
    /// the clamping makes unreachable in practice.
    pub fn quantize(&self, master: &Tensor, profiled_width: u8) -> Result<Tensor, TensorError> {
        let shift = u32::from(self.shift_for(profiled_width));
        let dtype = match master.signedness() {
            Signedness::Unsigned => FixedType::unsigned(self.target_bits)?,
            Signedness::Signed => FixedType::signed(self.target_bits)?,
        };
        let max_mag = dtype.max_magnitude();
        let half = if shift == 0 { 0 } else { 1i32 << (shift - 1) };
        let data = master
            .values()
            .iter()
            .map(|&v| {
                let mag = ((v.abs() + half) >> shift).min(max_mag);
                if v < 0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        Tensor::from_vec(master.shape().clone(), dtype, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{width, Shape};

    fn u16_master(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::U16, vals).unwrap()
    }

    fn i16_master(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn shift_amounts() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        assert_eq!(q.shift_for(16), 8);
        assert_eq!(q.shift_for(12), 4);
        assert_eq!(q.shift_for(8), 0);
        assert_eq!(q.shift_for(5), 0, "narrow layers are left untouched");
    }

    #[test]
    fn zero_maps_to_zero() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        let t = q.quantize(&u16_master(vec![0, 0, 40_000]), 16).unwrap();
        assert_eq!(t.values()[0], 0);
        assert_eq!(t.values()[1], 0);
    }

    #[test]
    fn widths_shrink_by_the_shift() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        // Master width 12 (value 2048) with profile 16 -> shift 8 -> width 4.
        let t = q.quantize(&u16_master(vec![2048]), 16).unwrap();
        assert_eq!(
            width::value_width(t.values()[0], Signedness::Unsigned),
            4
        );
    }

    #[test]
    fn signed_masters_keep_sign() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        let t = q.quantize(&i16_master(vec![-4096, 4096]), 16).unwrap();
        assert_eq!(t.values()[0], -t.values()[1]);
        assert!(t.values()[0] < 0);
        assert_eq!(t.dtype(), FixedType::I8);
    }

    #[test]
    fn saturates_at_container_max() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        // Profile said 12 bits but a 16-bit value shows up: clamp, not wrap.
        let t = q.quantize(&u16_master(vec![65_535]), 12).unwrap();
        assert_eq!(t.values()[0], 255);
    }

    #[test]
    fn rounds_to_nearest() {
        let q = RangeAwareQuantizer::new(8).unwrap();
        // shift 4: 24 -> 1.5 -> 2; 23 -> 1.44 -> 1.
        let t = q.quantize(&u16_master(vec![24, 23]), 12).unwrap();
        assert_eq!(t.values(), &[2, 1]);
    }

    #[test]
    fn rejects_bad_targets() {
        assert!(RangeAwareQuantizer::new(1).is_err());
        assert!(RangeAwareQuantizer::new(17).is_err());
    }
}
