//! Outlier-aware quantization (Park et al., ISCA 2018), used in the
//! paper's Figure 16 study.

use ss_tensor::{Signedness, Tensor, TensorError};

use crate::QuantError;

/// Outlier-aware quantization: the vast majority of values ("common"
/// values, 97–99%) are quantized to a short width (4–5 bits), while the
/// rare high-magnitude outliers keep the full 16-bit width.
///
/// The paper applies ShapeShifter compression *on top of* outlier-aware
/// quantized models to show it "delivers virtually all the memory traffic
/// reduction possible … despite not being specialized for them" (§5.4).
/// The quantized tensor therefore stays in a 16-bit container: common
/// values are rescaled into the short range (so they need at most
/// `common_bits`), outliers keep their magnitude.
///
/// # Examples
///
/// ```
/// use ss_quant::OutlierAwareQuantizer;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = OutlierAwareQuantizer::new(4, 0.25)?; // 4b common, 25% outliers
/// let t = Tensor::from_vec(
///     Shape::flat(4),
///     FixedType::I16,
///     vec![2, -3, 1, 30_000],
/// )?;
/// let oq = q.quantize(&t)?;
/// assert_eq!(oq.outlier_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierAwareQuantizer {
    common_bits: u8,
    outlier_fraction: f64,
}

/// An outlier-aware quantized tensor: the transformed values plus the
/// bookkeeping the storage schemes need.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierQuantized {
    tensor: Tensor,
    common_bits: u8,
    outlier_count: usize,
    threshold: i32,
}

impl OutlierAwareQuantizer {
    /// Creates a quantizer with `common_bits` for common values (the
    /// paper's Figure 16 uses 4 for ResNet50 and 5 for MobileNet-V2) and
    /// the given outlier fraction (1% in the paper).
    ///
    /// # Errors
    ///
    /// * [`QuantError::InvalidTargetWidth`] unless `2 <= common_bits <= 8`.
    /// * [`QuantError::InvalidOutlierFraction`] unless
    ///   `0 < outlier_fraction < 1`.
    pub fn new(common_bits: u8, outlier_fraction: f64) -> Result<Self, QuantError> {
        if !(2..=8).contains(&common_bits) {
            return Err(QuantError::InvalidTargetWidth { bits: common_bits });
        }
        if !(outlier_fraction > 0.0 && outlier_fraction < 1.0) {
            return Err(QuantError::InvalidOutlierFraction {
                fraction: outlier_fraction,
            });
        }
        Ok(Self {
            common_bits,
            outlier_fraction,
        })
    }

    /// Width of the common-value container.
    #[must_use]
    pub fn common_bits(&self) -> u8 {
        self.common_bits
    }

    /// Fraction of values kept at full width.
    #[must_use]
    pub fn outlier_fraction(&self) -> f64 {
        self.outlier_fraction
    }

    /// Quantizes a master tensor: the top `outlier_fraction` of non-zero
    /// magnitudes keep their value; the rest are rescaled into the
    /// common-value range.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] only on internal container violations, which
    /// the clamping makes unreachable in practice.
    pub fn quantize(&self, master: &Tensor) -> Result<OutlierQuantized, TensorError> {
        // Find the magnitude threshold: the (1 - f) quantile of non-zero
        // magnitudes.
        let mut mags: Vec<i32> = master
            .values()
            .iter()
            .filter(|&&v| v != 0)
            .map(|&v| v.abs())
            .collect();
        if mags.is_empty() {
            return Ok(OutlierQuantized {
                tensor: master.clone(),
                common_bits: self.common_bits,
                outlier_count: 0,
                threshold: 0,
            });
        }
        mags.sort_unstable();
        // Exactly the top `k` non-zero magnitudes become outliers. A plain
        // quantile threshold over-selects when many values tie at the
        // threshold (common with narrow integer distributions), so ties
        // are broken by arrival order with a hard cap of `k`.
        let k = ((mags.len() as f64) * self.outlier_fraction)
            .round()
            .max(1.0) as usize;
        let threshold = mags[mags.len() - k];

        let mag_bits = match master.signedness() {
            Signedness::Unsigned => self.common_bits,
            Signedness::Signed => self.common_bits - 1,
        };
        let common_max = (1i32 << mag_bits) - 1;
        // Uniform quantization step over the *common* region, bounded by
        // the largest common magnitude (everything at or above `threshold`
        // is an outlier candidate). Never below 1: a common range already
        // narrower than the container is stored as-is — expanding it to
        // fill the container would manufacture precision that does not
        // exist and destroy the value skew (exactly the pathology the
        // paper attributes to TF quantization).
        let common_bound = if mags.len() > k {
            mags[mags.len() - k - 1]
        } else {
            threshold
        };
        let scale = (f64::from(common_bound.max(1)) / f64::from(common_max)).max(1.0);

        let mut remaining = k;
        let mut outlier_count = 0usize;
        let data = master
            .values()
            .iter()
            .map(|&v| {
                if v != 0 && v.abs() >= threshold && remaining > 0 {
                    remaining -= 1;
                    outlier_count += 1;
                    return v;
                }
                if v == 0 {
                    0
                } else {
                    let mag = (f64::from(v.abs()) / scale).round().min(f64::from(common_max))
                        as i32;
                    if v < 0 {
                        -mag
                    } else {
                        mag
                    }
                }
            })
            .collect();
        let tensor = Tensor::from_vec(master.shape().clone(), master.dtype(), data)?;
        Ok(OutlierQuantized {
            tensor,
            common_bits: self.common_bits,
            outlier_count,
            threshold,
        })
    }
}

impl OutlierQuantized {
    /// The quantized values (16-bit container, mixed widths).
    #[must_use]
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Width of the common-value container.
    #[must_use]
    pub fn common_bits(&self) -> u8 {
        self.common_bits
    }

    /// Number of full-width outliers.
    #[must_use]
    pub fn outlier_count(&self) -> usize {
        self.outlier_count
    }

    /// The magnitude threshold separating common values from outliers.
    #[must_use]
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    /// Fraction of values that are outliers.
    #[must_use]
    pub fn outlier_share(&self) -> f64 {
        if self.tensor.is_empty() {
            0.0
        } else {
            self.outlier_count as f64 / self.tensor.len() as f64
        }
    }

    /// Consumes the wrapper, returning the quantized tensor.
    #[must_use]
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{width, FixedType, Shape};

    fn master(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn common_values_fit_common_bits() {
        let q = OutlierAwareQuantizer::new(4, 0.05).unwrap();
        let vals: Vec<i32> = (1..=100).collect();
        let oq = q.quantize(&master(vals)).unwrap();
        for &v in oq.tensor().values() {
            if v.abs() < oq.threshold() {
                assert!(
                    width::value_width(v, Signedness::Signed) <= 4,
                    "common value {v} exceeds 4 bits"
                );
            }
        }
    }

    #[test]
    fn outlier_fraction_is_respected() {
        let q = OutlierAwareQuantizer::new(5, 0.01).unwrap();
        let vals: Vec<i32> = (1..=10_000).collect();
        let oq = q.quantize(&master(vals)).unwrap();
        let share = oq.outlier_share();
        assert!((0.005..0.02).contains(&share), "outlier share {share}");
    }

    #[test]
    fn outliers_keep_their_value() {
        let q = OutlierAwareQuantizer::new(4, 0.25).unwrap();
        let oq = q.quantize(&master(vec![1, 2, 3, 30_000])).unwrap();
        assert!(oq.tensor().values().contains(&30_000));
    }

    #[test]
    fn zeros_are_neither_common_nor_outlier() {
        let q = OutlierAwareQuantizer::new(4, 0.1).unwrap();
        let oq = q.quantize(&master(vec![0, 0, 5_000, 10_000, 0, 0])).unwrap();
        assert_eq!(oq.tensor().values().iter().filter(|&&v| v == 0).count(), 4);
        assert_eq!(oq.outlier_count(), 1);
        // A common value far below its quantization step rounds to zero —
        // the lossy part of outlier-aware quantization. 30 sits at 0.6% of
        // the 5000-wide common range whose 4b step is ~714.
        let oq = q
            .quantize(&master(vec![0, 0, 30, 5_000, 10_000, 0]))
            .unwrap();
        assert_eq!(oq.tensor().values().iter().filter(|&&v| v == 0).count(), 4);
    }

    #[test]
    fn all_zero_tensor_passes_through() {
        let q = OutlierAwareQuantizer::new(4, 0.01).unwrap();
        let oq = q.quantize(&master(vec![0; 8])).unwrap();
        assert_eq!(oq.outlier_count(), 0);
        assert_eq!(oq.tensor().num_zero(), 8);
    }

    #[test]
    fn narrow_common_ranges_are_not_expanded() {
        // Threshold 6 fits a 4b signed container: values must pass through
        // unchanged, keeping their narrow widths for ShapeShifter.
        let q = OutlierAwareQuantizer::new(4, 0.1).unwrap();
        let vals = vec![1, -2, 3, 0, 6, -1, 2, 1, 0, 30_000];
        let oq = q.quantize(&master(vals.clone())).unwrap();
        assert_eq!(oq.tensor().values(), &vals[..]);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(OutlierAwareQuantizer::new(1, 0.01).is_err());
        assert!(OutlierAwareQuantizer::new(9, 0.01).is_err());
        assert!(OutlierAwareQuantizer::new(4, 0.0).is_err());
        assert!(OutlierAwareQuantizer::new(4, 1.0).is_err());
    }
}
