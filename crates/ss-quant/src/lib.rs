#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Quantizers and per-layer width profiling for the ShapeShifter
//! reproduction.
//!
//! The paper's second contribution is the observation that popular
//! quantization methods, while they "squeeze" wide value ranges into a
//! short container, also **expand** narrow ranges to fill the container —
//! destroying the per-group width-reduction opportunity (paper §1, §2 "8b
//! Quantization", Figure 3). This crate implements the three quantization
//! families the evaluation uses, all derived from the int16 master models
//! of `ss-models`:
//!
//! * [`TfQuantizer`] — TensorFlow-style asymmetric affine quantization. Its
//!   non-zero zero-point relocates near-zero values to the middle of the
//!   8-bit range, so even tiny values need 6–8 stored bits.
//! * [`RangeAwareQuantizer`] — power-of-two rescaling that keeps zero at
//!   zero and small values small, preserving the group-width opportunity.
//! * [`OutlierAwareQuantizer`] — Park et al.'s two-width scheme: 97–99% of
//!   values in 4–5 bits, rare outliers at full width (used in Figure 16).
//! * [`AdaBitsFamily`] — AdaBits-style multi-width serving variants of one
//!   range-aware-quantized model (one profiling run; narrower variants
//!   are MSB truncations, matching the `AdaBits` container scheme's
//!   stream-prefix property).
//!
//! [`QuantizedNetwork`] wraps a zoo [`ss_models::Network`] with a method so
//! the rest of the pipeline can consume 8-bit models through the same
//! tensor API as the 16-bit masters. [`profile`] provides the per-layer
//! profiled widths used by the "Profile" compression baseline and by the
//! original Stripes.

mod adabits;
mod error;
mod outlier;
pub mod profile;
mod quantized;
mod range_aware;
mod tf;

pub use adabits::{AdaBitsFamily, AdaBitsVariant, ADABITS_WIDTH_RANGE};
pub use error::QuantError;
pub use outlier::{OutlierAwareQuantizer, OutlierQuantized};
pub use quantized::{QuantMethod, QuantizedNetwork};
pub use range_aware::RangeAwareQuantizer;
pub use tf::TfQuantizer;
