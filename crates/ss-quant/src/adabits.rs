//! AdaBits-style multi-width serving variants of one quantized model
//! (arXiv:1912.09666), coupled to the registry's `AdaBits` container
//! scheme.
//!
//! AdaBits trains **one** network servable at several bit-widths. This
//! module reproduces the serving side: one range-aware quantization of
//! the int16 master at the family's widest width (one
//! [`NetworkProfile`] run, shared by every variant), with each narrower
//! variant defined as the **MSB truncation** of the widest — the value
//! at width `w` is the full-width value with its `max - w` lowest
//! magnitude bit-planes dropped.
//!
//! That truncation relationship is exactly what
//! `ss_core::scheme::AdaBitsScheme` stores: its MSB-first bit-plane
//! stream makes the width-`w` variant a per-group stream *prefix*, so a
//! store or server holding the full-width stream serves every family
//! member without re-encoding (`AdaBitsScheme::truncated_bits` prices
//! the prefix). The property test in this module plus
//! `msb_prefix_is_the_quantized_variant` in `ss-core` pin both halves
//! of the contract.

use ss_models::Network;
use ss_tensor::{FixedType, Signedness, Tensor};

use crate::profile::NetworkProfile;
use crate::{QuantError, RangeAwareQuantizer};

/// The widths an [`AdaBitsFamily`] accepts: at least 2 bits (a sign needs
/// a magnitude) and at most 8 (the paper's int8 deployment regime).
pub const ADABITS_WIDTH_RANGE: std::ops::RangeInclusive<u8> = 2..=8;

/// One trained model, servable at several bit-widths (AdaBits §3).
///
/// Built from a zoo master with **one** profiling run; every serving
/// width shares the profile and the widest width's quantized values.
///
/// # Examples
///
/// ```
/// use ss_models::zoo;
/// use ss_quant::AdaBitsFamily;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let family = AdaBitsFamily::new(zoo::alexnet_s(), &[4, 6, 8])?;
/// let w8 = family.variant(8).expect("widest");
/// let w4 = family.variant(4).expect("narrowest");
/// assert_eq!(w4.name(), "AlexNet-S (AdaBits-4b)");
/// // Narrow variants are MSB truncations of the widest.
/// let full = w8.weight_tensor(0, 0);
/// let cut = w4.weight_tensor(0, 0);
/// assert!(full.len() == cut.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBitsFamily {
    base: Network,
    profile: NetworkProfile,
    widths: Vec<u8>,
}

impl AdaBitsFamily {
    /// Builds a family of `widths`-bit serving variants of `base`,
    /// profiling the master exactly once.
    ///
    /// Widths are deduplicated and sorted ascending; the largest is the
    /// width the single stored model is quantized at.
    ///
    /// # Errors
    ///
    /// [`QuantError::InvalidTargetWidth`] if `widths` is empty or any
    /// width falls outside [`ADABITS_WIDTH_RANGE`].
    pub fn new(base: Network, widths: &[u8]) -> Result<Self, QuantError> {
        if widths.is_empty() {
            return Err(QuantError::InvalidTargetWidth { bits: 0 });
        }
        let mut sorted = Vec::with_capacity(widths.len());
        for &w in widths {
            if !ADABITS_WIDTH_RANGE.contains(&w) {
                return Err(QuantError::InvalidTargetWidth { bits: w });
            }
            if !sorted.contains(&w) {
                sorted.push(w);
            }
        }
        sorted.sort_unstable();
        let profile = NetworkProfile::of(&base);
        Ok(Self {
            base,
            profile,
            widths: sorted,
        })
    }

    /// The underlying int16 master.
    #[must_use]
    pub fn base(&self) -> &Network {
        &self.base
    }

    /// The shared per-layer profile (computed once at construction).
    #[must_use]
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// The serving widths, ascending and deduplicated.
    #[must_use]
    pub fn widths(&self) -> &[u8] {
        &self.widths
    }

    /// The width the single stored model is quantized at.
    #[must_use]
    pub fn max_width(&self) -> u8 {
        *self.widths.last().unwrap_or(&8)
    }

    /// The serving variant at `width`, if it is one of the family's.
    #[must_use]
    pub fn variant(&self, width: u8) -> Option<AdaBitsVariant<'_>> {
        self.widths
            .contains(&width)
            .then(|| AdaBitsVariant::new(self, width))
    }

    /// Every serving variant, narrowest first.
    #[must_use]
    pub fn variants(&self) -> Vec<AdaBitsVariant<'_>> {
        self.widths
            .iter()
            .map(|&w| AdaBitsVariant::new(self, w))
            .collect()
    }

    /// The full-width quantized form of a master tensor: one range-aware
    /// pass at the family's widest width against the shared profile.
    fn quantize_full(&self, master: &Tensor, profiled_width: u8) -> Tensor {
        // ss-lint: allow(panic-freedom) -- max_width is bounded to 2..=8 at construction, inside the quantizer's accepted range
        let q = RangeAwareQuantizer::new(self.max_width()).expect("validated width");
        q.quantize(master, profiled_width)
            // ss-lint: allow(panic-freedom) -- quantize clamps to the container range before constructing the tensor
            .expect("clamped values fit the container")
    }
}

/// One serving width of an [`AdaBitsFamily`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBitsVariant<'a> {
    family: &'a AdaBitsFamily,
    width: u8,
    name: String,
}

impl<'a> AdaBitsVariant<'a> {
    fn new(family: &'a AdaBitsFamily, width: u8) -> Self {
        let name = format!("{} (AdaBits-{width}b)", family.base.name());
        Self {
            family,
            width,
            name,
        }
    }

    /// The display name, e.g. `AlexNet-S (AdaBits-4b)`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This variant's serving width.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The family this variant serves from.
    #[must_use]
    pub fn family(&self) -> &'a AdaBitsFamily {
        self.family
    }

    /// Container of this variant's weights (signed, `width` bits).
    #[must_use]
    pub fn weight_dtype(&self) -> FixedType {
        // ss-lint: allow(panic-freedom) -- width is bounded to 2..=8 at family construction, a valid signed container
        FixedType::signed(self.width).expect("validated width")
    }

    /// Container of this variant's activations (unsigned, `width` bits).
    #[must_use]
    pub fn act_dtype(&self) -> FixedType {
        // ss-lint: allow(panic-freedom) -- width is bounded to 2..=8 at family construction, a valid unsigned container
        FixedType::unsigned(self.width).expect("validated width")
    }

    /// Quantized weights of `layer`: the family's full-width weights with
    /// the low bit-planes truncated to this width.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range (as the zoo does).
    #[must_use]
    pub fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        let master = self.family.base.weight_tensor(layer, model_seed);
        // ss-lint: allow(panic-freedom) -- out-of-range layer is a documented panic, matching the zoo
        let profiled = self.family.profile.wgt_widths()[layer];
        self.truncate(&self.family.quantize_full(&master, profiled))
    }

    /// Quantized input activations of `layer` for one input, truncated to
    /// this width.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range (as the zoo does).
    #[must_use]
    pub fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        let master = self.family.base.input_tensor(layer, input_seed);
        // ss-lint: allow(panic-freedom) -- out-of-range layer is a documented panic, matching the zoo
        let profiled = self.family.profile.act_widths()[layer];
        self.truncate(&self.family.quantize_full(&master, profiled))
    }

    /// Quantized output activations of `layer` for one input, truncated
    /// to this width. Matches `input_tensor(layer + 1)` on linear chains
    /// (same guarantee as the master zoo).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range (as the zoo does).
    #[must_use]
    pub fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        let master = self.family.base.output_tensor(layer, input_seed);
        let profiled = self.family.profile.output_act_width(layer);
        self.truncate(&self.family.quantize_full(&master, profiled))
    }

    /// Drops the low `max_width - width` magnitude bit-planes of a
    /// full-width tensor — the AdaBits serving truncation. Sign survives;
    /// a magnitude that loses all its planes becomes zero.
    fn truncate(&self, full: &Tensor) -> Tensor {
        let shift = u32::from(self.family.max_width() - self.width);
        let dtype = match full.signedness() {
            Signedness::Signed => self.weight_dtype(),
            Signedness::Unsigned => self.act_dtype(),
        };
        let data = full
            .values()
            .iter()
            .map(|&v| {
                let mag = (v.unsigned_abs() >> shift) as i32;
                if v < 0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        Tensor::from_vec(full.shape().clone(), dtype, data)
            // ss-lint: allow(panic-freedom) -- a truncated magnitude needs at most `width` bits, inside the container by construction
            .expect("truncated values fit the container")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::zoo;

    fn family() -> AdaBitsFamily {
        AdaBitsFamily::new(zoo::alexnet().scaled_down(4), &[4, 6, 8]).unwrap()
    }

    #[test]
    fn widths_are_validated_sorted_and_deduplicated() {
        let f = AdaBitsFamily::new(zoo::alexnet_s(), &[8, 4, 6, 4]).unwrap();
        assert_eq!(f.widths(), &[4, 6, 8]);
        assert_eq!(f.max_width(), 8);
        assert!(matches!(
            AdaBitsFamily::new(zoo::alexnet_s(), &[]),
            Err(QuantError::InvalidTargetWidth { bits: 0 })
        ));
        assert!(matches!(
            AdaBitsFamily::new(zoo::alexnet_s(), &[4, 9]),
            Err(QuantError::InvalidTargetWidth { bits: 9 })
        ));
        assert!(matches!(
            AdaBitsFamily::new(zoo::alexnet_s(), &[1]),
            Err(QuantError::InvalidTargetWidth { bits: 1 })
        ));
    }

    #[test]
    fn one_profile_serves_every_variant() {
        let f = family();
        // The family's profile is the master's, computed once — each
        // variant sees the identical object.
        assert_eq!(f.profile(), &NetworkProfile::of(f.base()));
        let variants = f.variants();
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].width(), 4);
        assert!(f.variant(5).is_none());
    }

    #[test]
    fn narrow_variants_are_msb_truncations_of_the_widest() {
        let f = family();
        let full = f.variant(8).unwrap();
        for width in [4u8, 6] {
            let v = f.variant(width).unwrap();
            for (layer, seed) in [(0usize, 7u64), (2, 11)] {
                let wide = full.weight_tensor(layer, seed);
                let cut = v.weight_tensor(layer, seed);
                for (a, b) in wide.values().iter().zip(cut.values()) {
                    let mag = (a.unsigned_abs() >> (8 - width)) as i32;
                    let expect = if *a < 0 { -mag } else { mag };
                    assert_eq!(*b, expect, "layer {layer} width {width}");
                }
                let acts_wide = full.input_tensor(layer, seed);
                let acts_cut = v.input_tensor(layer, seed);
                for (a, b) in acts_wide.values().iter().zip(acts_cut.values()) {
                    assert_eq!(*b, a >> (8 - width), "acts layer {layer} width {width}");
                }
            }
        }
    }

    #[test]
    fn containers_match_the_serving_width() {
        let f = family();
        let v = f.variant(6).unwrap();
        assert_eq!(v.weight_dtype().bits(), 6);
        assert!(v.weight_dtype().signedness().is_signed());
        assert_eq!(v.act_dtype().bits(), 6);
        assert_eq!(v.weight_tensor(0, 0).dtype(), v.weight_dtype());
        assert_eq!(v.input_tensor(0, 0).dtype(), v.act_dtype());
    }

    #[test]
    fn outputs_chain_into_inputs() {
        let f = family();
        let v = f.variant(4).unwrap();
        assert_eq!(v.output_tensor(2, 3), v.input_tensor(3, 3));
    }

    #[test]
    fn names_follow_the_family_convention() {
        let f = family();
        assert!(f.variant(8).unwrap().name().contains("(AdaBits-8b)"));
    }
}
