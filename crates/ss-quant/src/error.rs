use std::error::Error;
use std::fmt;

/// Errors produced by quantizer construction and application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantError {
    /// The requested target width is outside the supported range.
    InvalidTargetWidth {
        /// The invalid width.
        bits: u8,
    },
    /// The outlier fraction must lie strictly between 0 and 1.
    InvalidOutlierFraction {
        /// The invalid fraction.
        fraction: f64,
    },
    /// The asymmetry ratio must be non-negative.
    InvalidAsymmetry {
        /// The invalid ratio.
        ratio: f64,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QuantError::InvalidTargetWidth { bits } => {
                write!(f, "target width {bits} is outside the supported 2..=16 range")
            }
            QuantError::InvalidOutlierFraction { fraction } => {
                write!(f, "outlier fraction {fraction} must be in (0, 1)")
            }
            QuantError::InvalidAsymmetry { ratio } => {
                write!(f, "asymmetry ratio {ratio} must be non-negative")
            }
        }
    }
}

impl Error for QuantError {}

// `f64` keeps QuantError from deriving Eq cleanly with NaN, but the stored
// values are caller inputs echoed back; Eq on bit patterns is not needed.
impl Eq for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_bad_input() {
        assert!(QuantError::InvalidTargetWidth { bits: 40 }
            .to_string()
            .contains("40"));
        assert!(QuantError::InvalidOutlierFraction { fraction: 2.0 }
            .to_string()
            .contains('2'));
    }
}
