//! TensorFlow-style asymmetric affine quantization.

use ss_tensor::{FixedType, Tensor, TensorError};

use crate::QuantError;

/// TensorFlow-style 8-bit quantization: `q = round(v / scale) + zero_point`
/// stored in an unsigned 8-bit container.
///
/// The calibrated real-value range `[min, max]` maps linearly onto
/// `[0, 255]`. Because `min < 0` in practice (weights are roughly
/// symmetric; activation calibration ranges dip below zero), the zero-point
/// is *not* zero — and therefore every near-zero real value is stored as a
/// number near `zero_point`, which needs `bits(zero_point)` bits. This is
/// the "unnecessary expansion" of the paper's Figure 3: TF-quantized
/// GoogLeNetS needs 6–8 stored bits where range-aware quantization needs 3.
///
/// The quantizer is configured by the **asymmetry ratio** `r = -min / max`
/// of the calibration range: `r ≈ 1` for weights (symmetric range,
/// `zero_point ≈ 128`), smaller for post-ReLU activations whose calibrated
/// minima dip only slightly below zero.
///
/// # Examples
///
/// ```
/// use ss_quant::TfQuantizer;
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Weights: symmetric calibration range.
/// let q = TfQuantizer::new(1.0)?;
/// let w = Tensor::from_vec(Shape::flat(3), FixedType::I16, vec![-1000, 0, 1000])?;
/// let t = q.quantize(&w, 1000)?;
/// // A real zero lands on the mid-range zero-point: ~128, needing 8 bits.
/// assert_eq!(t.values()[1], 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfQuantizer {
    asymmetry: f64,
}

/// Asymmetry ratio modelling typical TF activation calibration: ranges dip
/// ~25% of the maximum below zero, giving zero-points near 51 and pinning
/// most stored activations at 6 bits (paper Figure 3a).
pub const TF_ACT_ASYMMETRY: f64 = 0.25;
/// Asymmetry ratio for weights: calibration ranges are symmetric, giving
/// zero-points near 128 and pinning stored weights at 8 bits (Figure 3b).
pub const TF_WGT_ASYMMETRY: f64 = 1.0;

impl TfQuantizer {
    /// Creates a quantizer whose calibration range is `[-r·max, max]`.
    ///
    /// # Errors
    ///
    /// [`QuantError::InvalidAsymmetry`] if `r` is negative or not finite.
    pub fn new(asymmetry: f64) -> Result<Self, QuantError> {
        if !asymmetry.is_finite() || asymmetry < 0.0 {
            return Err(QuantError::InvalidAsymmetry { ratio: asymmetry });
        }
        Ok(Self { asymmetry })
    }

    /// The configured asymmetry ratio.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        self.asymmetry
    }

    /// The zero-point the calibration range `[-r·max, max]` induces.
    #[must_use]
    pub fn zero_point(&self) -> u8 {
        // zero_point = round(-min / scale) with scale = (max - min) / 255
        //            = round(255 r / (1 + r)).
        let zp = 255.0 * self.asymmetry / (1.0 + self.asymmetry);
        zp.round() as u8
    }

    /// Quantizes a master tensor into an unsigned 8-bit container using a
    /// calibration maximum of `cal_max` (typically the profile-derived
    /// maximum magnitude of the layer; values beyond it saturate, exactly
    /// as TF's fake-quant does).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError`] only on internal container violations, which
    /// the clamping makes unreachable in practice.
    ///
    /// # Panics
    ///
    /// Panics if `cal_max == 0` (an all-zero calibration range is
    /// meaningless).
    pub fn quantize(&self, master: &Tensor, cal_max: i32) -> Result<Tensor, TensorError> {
        assert!(cal_max > 0, "calibration maximum must be positive");
        let max = f64::from(cal_max);
        let min = -self.asymmetry * max;
        let scale = (max - min) / 255.0;
        let zp = f64::from(self.zero_point());
        let data = master
            .values()
            .iter()
            .map(|&v| {
                let q = (f64::from(v) / scale).round() + zp;
                q.clamp(0.0, 255.0) as i32
            })
            .collect();
        Tensor::from_vec(master.shape().clone(), FixedType::U8, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_tensor::{Shape, Signedness, width};

    fn master(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn zero_point_positions() {
        assert_eq!(TfQuantizer::new(1.0).unwrap().zero_point(), 128);
        assert_eq!(TfQuantizer::new(0.25).unwrap().zero_point(), 51);
        assert_eq!(TfQuantizer::new(0.0).unwrap().zero_point(), 0);
    }

    #[test]
    fn symmetric_range_expands_small_values() {
        // The paper's criticism: a tiny weight needs the full 8 bits.
        let q = TfQuantizer::new(TF_WGT_ASYMMETRY).unwrap();
        let t = q.quantize(&master(vec![1, -1, 0, 10]), 20_000).unwrap();
        for &v in t.values() {
            assert!(
                width::value_width(v, Signedness::Unsigned) >= 7,
                "stored value {v} should sit near the zero-point"
            );
        }
    }

    #[test]
    fn zero_asymmetry_preserves_small_widths() {
        // With min = 0 the zero-point vanishes and small stays small.
        let q = TfQuantizer::new(0.0).unwrap();
        let t = q.quantize(&master(vec![0, 100, 255]), 255).unwrap();
        assert_eq!(t.values(), &[0, 100, 255]);
    }

    #[test]
    fn saturates_beyond_calibration_range() {
        let q = TfQuantizer::new(1.0).unwrap();
        let t = q.quantize(&master(vec![30_000, -30_000]), 10_000).unwrap();
        assert_eq!(t.values(), &[255, 0]);
    }

    #[test]
    fn order_preserving() {
        let q = TfQuantizer::new(TF_ACT_ASYMMETRY).unwrap();
        let vals = vec![0, 5, 50, 500, 5000, 20_000];
        let t = q.quantize(&master(vals), 20_000).unwrap();
        let v = t.values();
        for pair in v.windows(2) {
            assert!(pair[0] <= pair[1], "quantization must preserve order");
        }
    }

    #[test]
    fn rejects_negative_asymmetry() {
        assert!(TfQuantizer::new(-0.1).is_err());
        assert!(TfQuantizer::new(f64::NAN).is_err());
    }

    #[test]
    fn output_container_is_u8() {
        let q = TfQuantizer::new(0.25).unwrap();
        let t = q.quantize(&master(vec![0, 1]), 100).unwrap();
        assert_eq!(t.dtype(), FixedType::U8);
    }
}
