//! Per-layer profiled widths: the "static" widths of the paper's
//! Figures 1–2 and the input to the Profile compression baseline
//! (Judd et al., Proteus) and to the original Stripes.
//!
//! Profiling answers: *what is the widest value this layer will ever
//! produce over the calibration set?* For the synthetic zoo this is
//! computed analytically from the generator's distribution (see
//! [`ss_models::stats::profiled_width_estimate`]) over the equivalent of
//! [`PROFILE_INPUTS`] calibration inputs — mirroring the paper's profiling
//! over thousands of ImageNet images, with no sampling noise.

use ss_models::stats::profiled_width_estimate;
use ss_models::Network;

/// Number of calibration inputs the activation profile represents (the
/// paper profiles over 5,000 images for Figure 1 and 1,000 for Figure 4).
pub const PROFILE_INPUTS: usize = 1000;

/// Profile-derived per-layer widths for a whole network.
///
/// # Examples
///
/// ```
/// use ss_models::zoo;
/// use ss_quant::profile::NetworkProfile;
///
/// let net = zoo::alexnet();
/// let p = NetworkProfile::of(&net);
/// assert_eq!(p.act_widths().len(), net.layers().len());
/// // Profiled widths exceed the per-group effective widths of Table 1.
/// assert!(p.act_widths()[0] >= 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkProfile {
    act: Vec<u8>,
    wgt: Vec<u8>,
}

impl NetworkProfile {
    /// Profiles every layer of `net`.
    #[must_use]
    pub fn of(net: &Network) -> Self {
        let act = (0..net.layers().len())
            .map(|i| profiled_act_width(net, i))
            .collect();
        let wgt = (0..net.layers().len())
            .map(|i| profiled_wgt_width(net, i))
            .collect();
        Self { act, wgt }
    }

    /// Per-layer profiled input-activation widths.
    #[must_use]
    pub fn act_widths(&self) -> &[u8] {
        &self.act
    }

    /// Per-layer profiled weight widths.
    #[must_use]
    pub fn wgt_widths(&self) -> &[u8] {
        &self.wgt
    }

    /// Profiled width of the activations *written* by `layer` (the input
    /// profile of the next layer; the last layer reuses its own).
    #[must_use]
    pub fn output_act_width(&self, layer: usize) -> u8 {
        self.act[(layer + 1).min(self.act.len() - 1)]
    }
}

/// Profile-derived width of one layer's input activations.
#[must_use]
pub fn profiled_act_width(net: &Network, layer: usize) -> u8 {
    let gen = net.input_gen(layer);
    let count = net.layers()[layer].input_count().saturating_mul(PROFILE_INPUTS);
    profiled_width_estimate(
        gen.scale(),
        gen.sparsity(),
        gen.dtype().signedness(),
        gen.dtype().magnitude_bits(),
        count.max(1),
    )
}

/// Empirical activation profile: the maximum width actually observed over
/// a set of input seeds — what the paper's profiling pass over thousands
/// of images measures directly. Slower than the analytic estimate (it
/// generates every tensor) and used to validate it.
#[must_use]
pub fn empirical_act_width(net: &Network, layer: usize, seeds: &[u64]) -> u8 {
    seeds
        .iter()
        .map(|&s| net.input_tensor(layer, s).profiled_width())
        .max()
        .unwrap_or(0)
}

/// Profile-derived width of one layer's weights (weights are fixed, so the
/// profile covers exactly the weight tensor).
#[must_use]
pub fn profiled_wgt_width(net: &Network, layer: usize) -> u8 {
    let gen = net.weight_gen(layer);
    profiled_width_estimate(
        gen.scale(),
        gen.sparsity(),
        gen.dtype().signedness(),
        gen.dtype().magnitude_bits(),
        net.layers()[layer].weight_count().max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::zoo;

    #[test]
    fn profile_covers_actual_tensors() {
        // The analytic profile must be an upper bound (up to its half-value
        // tolerance) for the width of real generated tensors.
        let net = zoo::alexnet().scaled_down(4);
        let p = NetworkProfile::of(&net);
        for (i, _) in net.layers().iter().enumerate() {
            let t = net.input_tensor(i, 42);
            assert!(
                t.profiled_width() <= p.act_widths()[i] + 1,
                "layer {i}: tensor width {} vs profile {}",
                t.profiled_width(),
                p.act_widths()[i]
            );
            let w = net.weight_tensor(i, 0);
            assert!(
                w.profiled_width() <= p.wgt_widths()[i] + 1,
                "layer {i}: weights {} vs profile {}",
                w.profiled_width(),
                p.wgt_widths()[i]
            );
        }
    }

    #[test]
    fn profiled_exceeds_effective() {
        // Figure 1's gap: the profile provisions for the rare worst case.
        let net = zoo::googlenet();
        let p = NetworkProfile::of(&net);
        for (i, l) in net.layers().iter().enumerate() {
            assert!(
                f64::from(p.act_widths()[i]) > l.stats().act_width,
                "layer {} profile {} <= effective {}",
                l.name(),
                p.act_widths()[i],
                l.stats().act_width
            );
        }
    }

    #[test]
    fn output_width_is_next_layers_input() {
        let net = zoo::alexnet();
        let p = NetworkProfile::of(&net);
        assert_eq!(p.output_act_width(0), p.act_widths()[1]);
        let last = net.layers().len() - 1;
        assert_eq!(p.output_act_width(last), p.act_widths()[last]);
    }

    #[test]
    fn analytic_profile_tracks_the_empirical_one() {
        // The analytic estimate substitutes for a real profiling pass;
        // over a handful of inputs it must bracket the empirical maximum
        // within a bit (the empirical one grows slowly with more inputs).
        let net = zoo::vgg_s().scaled_down(2);
        let seeds: Vec<u64> = (0..5).collect();
        for i in 0..net.layers().len() {
            let analytic = profiled_act_width(&net, i);
            let empirical = empirical_act_width(&net, i, &seeds);
            assert!(
                (i16::from(analytic) - i16::from(empirical)).abs() <= 1,
                "layer {i}: analytic {analytic} vs empirical {empirical}"
            );
        }
    }

    #[test]
    fn googlenet_conv1_profile_matches_paper_magnitude() {
        // Paper Figure 1a: GoogLeNet conv1's profile-determined width is
        // 10 bits. Our synthetic master should land in that vicinity.
        let net = zoo::googlenet();
        let w = profiled_act_width(&net, 0);
        assert!((9..=12).contains(&w), "conv1 profiled width {w}");
    }
}
