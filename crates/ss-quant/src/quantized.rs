//! 8-bit model variants: a zoo network viewed through a quantizer.

use ss_models::Network;
use ss_tensor::{FixedType, Tensor};

use crate::profile::NetworkProfile;
use crate::tf::{TF_ACT_ASYMMETRY, TF_WGT_ASYMMETRY};
use crate::{RangeAwareQuantizer, TfQuantizer};

/// The quantization method applied to a master network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMethod {
    /// TensorFlow-style asymmetric affine quantization (Figure 3 "TF").
    Tensorflow,
    /// Range-aware power-of-two quantization (Figure 3 "RA").
    RangeAware,
}

impl QuantMethod {
    /// Short label used in figure row names ("TF" / "RA").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            QuantMethod::Tensorflow => "TF",
            QuantMethod::RangeAware => "RA",
        }
    }
}

/// An 8-bit view of an int16 master network.
///
/// Exposes the same deterministic tensor API as [`Network`], with every
/// tensor passed through the configured quantizer using the network's
/// per-layer profiled ranges — exactly how a deployed int8 model is
/// produced from a trained full-precision one.
///
/// # Examples
///
/// ```
/// use ss_models::zoo;
/// use ss_quant::{QuantMethod, QuantizedNetwork};
///
/// let q = QuantizedNetwork::new(zoo::alexnet_s(), QuantMethod::RangeAware);
/// assert_eq!(q.name(), "AlexNet-S (RA-8b)");
/// let w = q.weight_tensor(0, 0);
/// assert_eq!(w.dtype().bits(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    base: Network,
    method: QuantMethod,
    profile: NetworkProfile,
    name: String,
}

impl QuantizedNetwork {
    /// Quantizes a master network with the given method.
    #[must_use]
    pub fn new(base: Network, method: QuantMethod) -> Self {
        let profile = NetworkProfile::of(&base);
        let name = format!("{} ({}-8b)", base.name(), method.label());
        Self {
            base,
            method,
            profile,
            name,
        }
    }

    /// The display name, e.g. `GoogLeNet-S (TF-8b)`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying int16 master.
    #[must_use]
    pub fn base(&self) -> &Network {
        &self.base
    }

    /// The quantization method in use.
    #[must_use]
    pub fn method(&self) -> QuantMethod {
        self.method
    }

    /// The per-layer profile driving the quantization ranges.
    #[must_use]
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// Container of quantized weights: unsigned under TF (affine with
    /// zero-point), signed under RA (sign-preserving rescale).
    #[must_use]
    pub fn weight_dtype(&self) -> FixedType {
        match self.method {
            QuantMethod::Tensorflow => FixedType::U8,
            QuantMethod::RangeAware => FixedType::I8,
        }
    }

    /// Container of quantized activations (unsigned 8-bit in both methods).
    #[must_use]
    pub fn act_dtype(&self) -> FixedType {
        FixedType::U8
    }

    /// The TF calibration asymmetry (`-min / max`) of one layer's
    /// activations. Real calibration ranges vary per layer: some layers'
    /// observed minima barely dip below zero (small zero-point, narrow
    /// stored values) while others dip substantially (large zero-point,
    /// the Figure 3 expansion). The per-layer value is deterministic in
    /// the layer index, spanning `0.02..=~0.5` around the
    /// `TF_ACT_ASYMMETRY` average.
    #[must_use]
    pub fn tf_act_asymmetry(&self, layer: usize) -> f64 {
        // SplitMix-style hash of the layer index into [0, 1).
        let mut z = (layer as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        0.02 + unit * 2.0 * (TF_ACT_ASYMMETRY - 0.02)
    }

    /// The TF calibration asymmetry of one layer's weights. Trained
    /// weight distributions are roughly symmetric but rarely exactly so;
    /// per-layer calibration puts the zero-point anywhere from ~mid-range
    /// down to the low tens (the spread behind Figure 3b, where one layer
    /// needs the full 8 stored bits and others 5–6).
    #[must_use]
    pub fn tf_wgt_asymmetry(&self, layer: usize) -> f64 {
        let mut z = (layer as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        0.2 + unit * (TF_WGT_ASYMMETRY - 0.2)
    }

    /// Quantized weights of `layer` (deterministic in `model_seed`).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        let master = self.base.weight_tensor(layer, model_seed);
        let profiled = self.profile.wgt_widths()[layer];
        self.quantize_weights(&master, profiled, layer)
    }

    /// Quantized input activations of `layer` for one input.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        let master = self.base.input_tensor(layer, input_seed);
        let profiled = self.profile.act_widths()[layer];
        self.quantize_acts(&master, profiled, layer)
    }

    /// Quantized output activations of `layer` for one input. Quantized
    /// with the next layer's profile, so it matches `input_tensor(layer+1)`
    /// on linear chains (same guarantee as the master zoo).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        let master = self.base.output_tensor(layer, input_seed);
        let profiled = self.profile.output_act_width(layer);
        let stats_layer = (layer + 1).min(self.base.layers().len() - 1);
        self.quantize_acts(&master, profiled, stats_layer)
    }

    fn quantize_acts(&self, master: &Tensor, profiled_width: u8, layer: usize) -> Tensor {
        match self.method {
            QuantMethod::Tensorflow => {
                let q = TfQuantizer::new(self.tf_act_asymmetry(layer))
                    // ss-lint: allow(panic-freedom) -- tf_act_asymmetry clamps to [0, 1), the constructor's accepted range
                    .expect("asymmetry is bounded and finite");
                let cal_max = (1i32 << profiled_width.max(1)) - 1;
                // ss-lint: allow(panic-freedom) -- quantize only errors on values above cal_max, and it clamps to cal_max first
                q.quantize(master, cal_max).expect("clamped values fit u8")
            }
            QuantMethod::RangeAware => {
                // ss-lint: allow(panic-freedom) -- RangeAwareQuantizer::new accepts 1..=8; the literal 8 is in range
                let q = RangeAwareQuantizer::new(8).expect("8 is a valid width");
                q.quantize(master, profiled_width)
                    // ss-lint: allow(panic-freedom) -- quantize clamps to the profiled width before the container range check
                    .expect("clamped values fit the container")
            }
        }
    }

    fn quantize_weights(&self, master: &Tensor, profiled_width: u8, layer: usize) -> Tensor {
        match self.method {
            QuantMethod::Tensorflow => {
                let q = TfQuantizer::new(self.tf_wgt_asymmetry(layer))
                    // ss-lint: allow(panic-freedom) -- tf_wgt_asymmetry clamps to [0, 1), the constructor's accepted range
                    .expect("asymmetry is bounded and finite");
                // Signed profile width includes the sign bit.
                let mag = profiled_width.saturating_sub(1).max(1);
                let cal_max = (1i32 << mag) - 1;
                // ss-lint: allow(panic-freedom) -- quantize only errors on values above cal_max, and it clamps to cal_max first
                q.quantize(master, cal_max).expect("clamped values fit u8")
            }
            QuantMethod::RangeAware => {
                // ss-lint: allow(panic-freedom) -- RangeAwareQuantizer::new accepts 1..=8; the literal 8 is in range
                let q = RangeAwareQuantizer::new(8).expect("8 is a valid width");
                q.quantize(master, profiled_width)
                    // ss-lint: allow(panic-freedom) -- quantize clamps to the profiled width before the container range check
                    .expect("clamped values fit the container")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::zoo;
    use ss_tensor::Signedness;

    fn small_ra() -> QuantizedNetwork {
        QuantizedNetwork::new(zoo::alexnet().scaled_down(4), QuantMethod::RangeAware)
    }

    fn small_tf() -> QuantizedNetwork {
        QuantizedNetwork::new(zoo::alexnet().scaled_down(4), QuantMethod::Tensorflow)
    }

    #[test]
    fn ra_preserves_zero_and_small_widths() {
        let q = small_ra();
        let acts = q.input_tensor(2, 7);
        let master = q.base().input_tensor(2, 7);
        // Zeros stay zeros.
        assert_eq!(acts.num_zero(), master.num_zero());
        // Effective width must be far below the 8b container.
        assert!(
            acts.effective_width(16) < 6.0,
            "RA effective width {}",
            acts.effective_width(16)
        );
    }

    #[test]
    fn tf_expands_widths() {
        let ra = small_ra();
        let tf = small_tf();
        let ra_w = ra.input_tensor(2, 7).effective_width(16);
        let tf_w = tf.input_tensor(2, 7).effective_width(16);
        // Figure 3: the same layer needs far more stored bits under TF.
        assert!(
            tf_w > ra_w + 1.5,
            "TF width {tf_w} should exceed RA width {ra_w}"
        );
    }

    #[test]
    fn tf_destroys_zero_population() {
        let q = small_tf();
        let acts = q.input_tensor(2, 7);
        let master = q.base().input_tensor(2, 7);
        // Real zeros are stored as the zero-point, not as stored-zero.
        assert!(master.num_zero() > 0);
        assert!(acts.num_zero() < master.num_zero() / 10);
    }

    #[test]
    fn tf_weights_hug_the_zero_point() {
        let q = small_tf();
        let w = q.weight_tensor(1, 0);
        // Near-zero master weights dominate, so the median stored value
        // sits at the layer's calibrated zero-point.
        let zp = i32::from(
            TfQuantizer::new(q.tf_wgt_asymmetry(1))
                .unwrap()
                .zero_point(),
        );
        let mut vals: Vec<i32> = w.values().to_vec();
        vals.sort_unstable();
        let median = vals[vals.len() / 2];
        // Small master weights land within a few quantization steps of
        // the zero-point.
        assert!(
            (median - zp).abs() <= 8,
            "median {median} vs zero-point {zp}"
        );
        // And the zero-point itself is material: stored values need >=5
        // bits even for tiny weights.
        assert!(zp >= 16, "zero-point {zp}");
    }

    #[test]
    fn ra_weights_stay_signed() {
        let q = small_ra();
        let w = q.weight_tensor(0, 0);
        assert_eq!(w.signedness(), Signedness::Signed);
        assert!(w.values().iter().any(|&v| v < 0));
    }

    #[test]
    fn output_matches_next_input_after_quantization() {
        let q = small_ra();
        assert_eq!(q.output_tensor(2, 3), q.input_tensor(3, 3));
        let q = small_tf();
        assert_eq!(q.output_tensor(2, 3), q.input_tensor(3, 3));
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(
            QuantizedNetwork::new(zoo::bilstm(), QuantMethod::RangeAware).name(),
            "BiLSTM (RA-8b)"
        );
        assert_eq!(QuantMethod::Tensorflow.label(), "TF");
    }
}
