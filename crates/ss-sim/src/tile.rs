//! Loop-level cycle simulation of the Stripes/SStripes tile dataflow
//! (paper Figure 7c), used to validate the analytic throughput laws of
//! [`crate::accel`] against an exact walk of the synchronized broadcast
//! schedule.
//!
//! A tile holds a grid of SIPs: rows process different windows of the same
//! output channels, columns different output channels, and each SIP
//! multiply-accumulates 16 (activation, weight) lanes. One **broadcast
//! step** feeds every row its window's next 16 channel values for one
//! kernel position; all rows advance together, so the step lasts as long
//! as the *worst* row group needs — the layer profile under Stripes, the
//! detected per-group width under SStripes (EOG). This module walks every
//! step of a convolution and sums exact step durations.

use ss_tensor::{width, Signedness, Tensor};
use ss_trace::{Counter, WidthCounts, WidthHist};

use crate::SimError;

/// Rows of SIPs per tile (windows processed concurrently).
pub const TILE_ROWS: usize = 16;
/// Activation/weight lanes per SIP (channels per step).
pub const SIP_CHANNELS: usize = 16;

/// Geometry of the convolution being scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Output channels (filters).
    pub out_ch: usize,
    /// SIP columns per tile × tiles: how many filters run concurrently.
    pub concurrent_filters: usize,
}

impl ConvGeometry {
    fn out_h(&self) -> usize {
        self.in_h - self.kh + 1
    }

    fn out_w(&self) -> usize {
        self.in_w - self.kw + 1
    }

    /// Activation value at `(c, y, x)` of a channel-innermost flat tensor
    /// (the layout the zoo generates and the paper groups along).
    fn act(&self, acts: &Tensor, c: usize, y: usize, x: usize) -> i32 {
        // ss-lint: allow(panic-freedom) -- tile_cycles rejects mismatched tensors with
        // GeometryMismatch before the walk, and every caller stays within
        // in_ch/in_h/in_w by loop construction
        acts.values()[(y * self.in_w + x) * self.in_ch + c]
    }
}

/// Exact tile cycles for one convolution under the synchronized broadcast
/// schedule.
///
/// `step_width` decides each step's duration from the 16 concurrent row
/// groups' detected widths: Stripes ignores them (fixed layer profile),
/// SStripes takes their maximum (the EOG of the slowest row), clamped to
/// one cycle.
///
/// With a collecting [`ss_trace`] recorder installed, the walk records
/// step/cycle counters and the worst-row EOG width of every synchronized
/// broadcast step ([`WidthHist::TileStepWidth`]).
///
/// # Errors
///
/// Returns [`SimError::GeometryMismatch`] when the tensor's element count
/// is not `in_ch * in_h * in_w`.
pub fn tile_cycles(
    geom: &ConvGeometry,
    acts: &Tensor,
    mut step_width: impl FnMut(&[u8]) -> u64,
) -> Result<u64, SimError> {
    let expected = geom.in_ch * geom.in_h * geom.in_w;
    if acts.len() != expected {
        return Err(SimError::GeometryMismatch {
            expected,
            actual: acts.len(),
        });
    }
    let rec = ss_trace::global();
    let tracing = rec.enabled();
    let mut steps = 0u64;
    let mut step_widths = WidthCounts::new();
    let filter_blocks = geom.out_ch.div_ceil(geom.concurrent_filters) as u64;
    let mut cycles = 0u64;
    let mut widths = Vec::with_capacity(TILE_ROWS);
    let channel_groups = geom.in_ch.div_ceil(SIP_CHANNELS);
    for y in 0..geom.out_h() {
        // Rows take 16 adjacent output columns.
        for x0 in (0..geom.out_w()).step_by(TILE_ROWS) {
            let rows = (geom.out_w() - x0).min(TILE_ROWS);
            for dy in 0..geom.kh {
                for dx in 0..geom.kw {
                    for g in 0..channel_groups {
                        let c0 = g * SIP_CHANNELS;
                        let c1 = (c0 + SIP_CHANNELS).min(geom.in_ch);
                        widths.clear();
                        for r in 0..rows {
                            let (ay, ax) = (y + dy, x0 + r + dx);
                            let mut group = [0i32; SIP_CHANNELS];
                            for (slot, c) in group.iter_mut().zip(c0..c1) {
                                *slot = geom.act(acts, c, ay, ax);
                            }
                            // ss-lint: allow(panic-freedom) -- c1 - c0 <= SIP_CHANNELS, the array length
                            let live = &group[..c1 - c0];
                            widths.push(width::group_width(live, Signedness::Unsigned));
                        }
                        if tracing {
                            steps += 1;
                            let worst = widths.iter().copied().max().unwrap_or(0);
                            step_widths.observe(worst, 1);
                        }
                        cycles += step_width(&widths);
                    }
                }
            }
        }
    }
    let total = cycles * filter_blocks;
    if tracing {
        rec.add(Counter::TileSteps, steps);
        rec.add(Counter::TileCycles, total);
        rec.record_widths(WidthHist::TileStepWidth, &step_widths);
    }
    Ok(total)
}

/// Step duration under original Stripes: the layer's profiled width,
/// regardless of content.
pub fn stripes_step(profiled: u8) -> impl FnMut(&[u8]) -> u64 {
    move |_| u64::from(profiled.max(1))
}

/// Step duration under SStripes: the worst concurrent row group's
/// detected width (the EOG synchronization), at least one cycle.
pub fn sstripes_step() -> impl FnMut(&[u8]) -> u64 {
    |widths: &[u8]| u64::from(widths.iter().copied().max().unwrap_or(0).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::ValueGen;
    use ss_tensor::FixedType;

    fn geom() -> ConvGeometry {
        ConvGeometry {
            in_ch: 32,
            in_h: 20,
            in_w: 20,
            kh: 3,
            kw: 3,
            out_ch: 32,
            concurrent_filters: 16,
        }
    }

    fn acts(g: &ConvGeometry, target_width: f64, seed: u64) -> Tensor {
        ValueGen::from_width_target(target_width, 0.5, FixedType::U16)
            .tensor_flat(g.in_ch * g.in_h * g.in_w, seed)
    }

    #[test]
    fn stripes_cycles_match_closed_form() {
        let g = geom();
        let a = acts(&g, 4.0, 1);
        let profiled = 11u8;
        let cycles = tile_cycles(&g, &a, stripes_step(profiled)).unwrap();
        // Steps: out_h x ceil(out_w/16) x kh x kw x ceil(C/16), times
        // filter blocks, each lasting the profile.
        let steps = (g.out_h() * g.out_w().div_ceil(TILE_ROWS) * g.kh * g.kw * 2) as u64;
        let blocks = (g.out_ch / g.concurrent_filters) as u64;
        assert_eq!(cycles, steps * blocks * u64::from(profiled));
    }

    #[test]
    fn sstripes_never_exceeds_stripes_and_tracks_content() {
        let g = geom();
        for seed in 0..5 {
            let a = acts(&g, 4.5, seed);
            let profiled = a.profiled_width();
            let stripes = tile_cycles(&g, &a, stripes_step(profiled)).unwrap();
            let sstripes = tile_cycles(&g, &a, sstripes_step()).unwrap();
            assert!(sstripes <= stripes, "seed {seed}");
            // Content matters: narrower values, fewer cycles.
            let narrow = acts(&g, 2.5, seed + 100);
            let narrow_cycles = tile_cycles(&g, &narrow, sstripes_step()).unwrap();
            assert!(narrow_cycles < sstripes, "seed {seed}");
        }
    }

    #[test]
    fn analytic_law_tracks_the_exact_schedule() {
        // The accel::SStripes law models the synchronized step as the
        // effective width over 256 concurrently broadcast values. The
        // exact schedule synchronizes 16 groups of 16 drawn from
        // *overlapping* windows, so with full row/channel/filter
        // occupancy the law must land within ~15% (partial blocks add
        // occupancy padding on top, which the utilization-free law
        // ignores by design).
        let g = ConvGeometry {
            in_ch: 32,
            in_h: 10,
            in_w: 34, // out_w = 32: two fully occupied row blocks
            kh: 3,
            kw: 3,
            out_ch: 32,
            concurrent_filters: 16,
        };
        let a = acts(&g, 4.5, 42);
        let exact = tile_cycles(&g, &a, sstripes_step()).unwrap() as f64;
        let macs = (g.out_ch * g.in_ch * g.kh * g.kw * g.out_h() * g.out_w()) as u64;
        // Lanes live in this one tile: concurrent_filters x 16 rows x 16.
        let lanes = (g.concurrent_filters * TILE_ROWS * SIP_CHANNELS) as f64;
        let eff = a.effective_width(256).max(1.0);
        // The schedule rounds partial row/channel blocks up; compare on
        // the fully-occupied portion by normalizing per step.
        let analytic = macs as f64 * eff / lanes;
        let ratio = exact / analytic;
        assert!(
            (0.85..=1.35).contains(&ratio),
            "exact {exact} vs analytic {analytic} (ratio {ratio})"
        );
    }

    #[test]
    fn empty_and_tiny_geometries() {
        let g = ConvGeometry {
            in_ch: 4,
            in_h: 3,
            in_w: 3,
            kh: 3,
            kw: 3,
            out_ch: 1,
            concurrent_filters: 16,
        };
        let a = acts(&g, 3.0, 7);
        // Single output position, one channel group, 9 kernel offsets.
        let c = tile_cycles(&g, &a, stripes_step(8)).unwrap();
        assert_eq!(c, 9 * 8);
    }

    #[test]
    fn mismatched_tensor_is_a_typed_error_not_a_panic() {
        let g = geom();
        // A tensor one element short of the geometry's requirement.
        let short = ValueGen::from_width_target(4.0, 0.5, FixedType::U16)
            .tensor_flat(g.in_ch * g.in_h * g.in_w - 1, 3);
        let err = tile_cycles(&g, &short, sstripes_step()).unwrap_err();
        assert_eq!(
            err,
            SimError::GeometryMismatch {
                expected: g.in_ch * g.in_h * g.in_w,
                actual: g.in_ch * g.in_h * g.in_w - 1,
            }
        );
        // And an empty tensor.
        let empty = ValueGen::from_width_target(4.0, 0.5, FixedType::U16).tensor_flat(0, 3);
        assert!(tile_cycles(&g, &empty, sstripes_step()).is_err());
    }
}
