//! The simulation driver: binds a model, an accelerator and an off-chip
//! compression scheme into per-layer and whole-network results.

use ss_core::scheme::{CompressionScheme, SchemeCtx};
use ss_models::stats::CALIBRATION_GROUP;
use ss_trace::{Counter, LayerRecord, WidthCounts, WidthHist};

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::mem::{BufferConfig, DramConfig, LayerPasses};
use crate::workload::TensorSource;

/// Seed under which every model's (fixed) weights are generated.
pub const MODEL_SEED: u64 = 0;

/// Cycles the datapath idles waiting for memory under the overlap model
/// (`wall = max(compute, memory)`): the excess of transfer over compute,
/// zero for compute-bound layers.
///
/// This is the **single** stall definition in the workspace. Both pricing
/// paths — [`simulate`] and [`RunResult::with_dram`] — call it, and
/// [`LayerResult::stall_cycles`] reduces to the same expression, so the
/// three cannot drift apart. `tests/stall_reference.rs` cross-checks all
/// of them against a naive per-layer reference model (the audit found the
/// two former `saturating_sub` sites consistent; unifying them here keeps
/// it that way).
#[must_use]
pub fn stall_cycles(compute_cycles: u64, memory_cycles: u64) -> u64 {
    memory_cycles.saturating_sub(compute_cycles)
}

/// Simulation-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Off-chip memory.
    pub dram: DramConfig,
    /// On-chip buffers; `None` applies the paper's container-scaled rule
    /// (4 MB + 4 MB at 8 bits, 8 MB + 8 MB at 16).
    pub buffers: Option<BufferConfig>,
    /// Core clock (all paper designs run at 1 GHz).
    pub clock_hz: u64,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Memory-container group size (the paper's N = 16).
    pub group_size: usize,
    /// Compute-synchronization group: the number of concurrently
    /// broadcast activations that advance in lockstep in the SIP array
    /// (16 window groups of 16 values).
    pub sync_group: usize,
    /// Hold on-chip buffer contents compressed as well (the "on-chip
    /// storage" extension of the paper's §3 title): the buffers
    /// effectively grow by each operand's compression ratio, deferring
    /// the small-buffer tiling cliff.
    pub onchip_compression: bool,
}

impl SimConfig {
    /// The paper's evaluation configuration with the given DRAM node.
    #[must_use]
    pub fn with_dram(dram: DramConfig) -> Self {
        Self {
            dram,
            buffers: None,
            clock_hz: 1_000_000_000,
            energy: EnergyModel::default(),
            group_size: 16,
            sync_group: 256,
            onchip_compression: false,
        }
    }
}

impl Default for SimConfig {
    /// DDR4-3200, paper buffers, 1 GHz.
    fn default() -> Self {
        Self::with_dram(DramConfig::DDR4_3200)
    }
}

/// Per-layer simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Datapath cycles.
    pub compute_cycles: u64,
    /// Off-chip transfer cycles.
    pub memory_cycles: u64,
    /// Off-chip traffic under the active scheme, in bits.
    pub traffic_bits: u64,
    /// Off-chip traffic with no compression, in bits.
    pub base_traffic_bits: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl LayerResult {
    /// Wall-clock cycles: compute and transfer overlap, the slower wins.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// Cycles the datapath sits idle waiting for memory.
    /// Equals [`stall_cycles`]`(compute, memory)`: `max(c, m) - c = max(0, m - c)`.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        stall_cycles(self.compute_cycles, self.memory_cycles)
    }

    /// `true` when the layer is limited by arithmetic, not traffic.
    #[must_use]
    pub fn is_compute_bound(&self) -> bool {
        self.compute_cycles >= self.memory_cycles
    }
}

/// Whole-run outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Model display name.
    pub model: String,
    /// Accelerator display name.
    pub accel: String,
    /// Compression scheme display name.
    pub scheme: String,
    /// Per-layer results in network order.
    pub layers: Vec<LayerResult>,
}

impl RunResult {
    /// Total wall-clock cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerResult::cycles).sum()
    }

    /// Total off-chip traffic in bits.
    #[must_use]
    pub fn total_traffic_bits(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic_bits).sum()
    }

    /// Total uncompressed off-chip traffic in bits.
    #[must_use]
    pub fn base_traffic_bits(&self) -> u64 {
        self.layers.iter().map(|l| l.base_traffic_bits).sum()
    }

    /// Traffic relative to no compression (the Figure 8 metric; lower is
    /// better).
    #[must_use]
    pub fn relative_traffic(&self) -> f64 {
        self.total_traffic_bits() as f64 / self.base_traffic_bits().max(1) as f64
    }

    /// Total energy.
    #[must_use]
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for l in &self.layers {
            e.add(&l.energy);
        }
        e
    }

    /// Speedup of this run over a baseline run (same model!).
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.total_cycles() as f64 / self.total_cycles().max(1) as f64
    }

    /// Energy efficiency of this run relative to a baseline
    /// (baseline energy / this energy; higher is better).
    #[must_use]
    pub fn efficiency_over(&self, baseline: &RunResult) -> f64 {
        baseline.total_energy().total_pj() / self.total_energy().total_pj().max(1e-12)
    }

    /// Re-prices this run under a different DRAM node without
    /// re-simulating: compute cycles, traffic and datapath/SRAM energy are
    /// DRAM-independent, so only transfer cycles, DRAM energy and
    /// stall-idle energy change. Used by the Figure 9 harness to sweep
    /// DDR4-2133/2400/3200 from one simulation.
    #[must_use]
    pub fn with_dram(&self, dram: DramConfig, cfg: &SimConfig) -> RunResult {
        let layers = self
            .layers
            .iter()
            .map(|l| {
                let memory_cycles = dram.cycles_for_bits(l.traffic_bits, cfg.clock_hz);
                let stall = stall_cycles(l.compute_cycles, memory_cycles);
                LayerResult {
                    name: l.name.clone(),
                    compute_cycles: l.compute_cycles,
                    memory_cycles,
                    traffic_bits: l.traffic_bits,
                    base_traffic_bits: l.base_traffic_bits,
                    energy: EnergyBreakdown {
                        dram_pj: l.traffic_bits as f64 * cfg.energy.dram_pj_per_bit,
                        sram_pj: l.energy.sram_pj,
                        compute_pj: l.energy.compute_pj,
                        idle_pj: stall as f64 * cfg.energy.idle_pj_per_cycle,
                    },
                }
            })
            .collect();
        RunResult {
            model: self.model.clone(),
            accel: self.accel.clone(),
            scheme: self.scheme.clone(),
            layers,
        }
    }

    /// Fraction of wall-clock time spent computing (the Figure 13
    /// compute/memory breakdown; the remainder is memory stall).
    #[must_use]
    pub fn compute_time_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 1.0;
        }
        let compute: u64 = self
            .layers
            .iter()
            .map(|l| l.compute_cycles.min(l.cycles()))
            .sum();
        compute as f64 / total as f64
    }
}

/// A tensor generated only if some consumer actually needs the raw values
/// (a scheme or width the shared statistics cannot answer).
struct LazyTensor<'a> {
    cell: std::cell::OnceCell<ss_tensor::Tensor>,
    make: Box<dyn Fn() -> ss_tensor::Tensor + 'a>,
}

impl<'a> LazyTensor<'a> {
    fn new(make: impl Fn() -> ss_tensor::Tensor + 'a) -> Self {
        Self {
            cell: std::cell::OnceCell::new(),
            make: Box::new(make),
        }
    }

    fn get(&self) -> &ss_tensor::Tensor {
        self.cell.get_or_init(|| (self.make)())
    }
}

/// Simulates one input through a model on an accelerator with an off-chip
/// compression scheme.
///
/// Per layer: the shared one-pass statistics of weights, input and output
/// activations (see [`TensorSource::weight_stats`]) supply everything the
/// models consume — scheme pricing, container bits, effective widths at
/// the sync group, zero fractions. Raw tensors are generated lazily, only
/// when a scheme cannot price from statistics (or the sync group falls
/// outside [`crate::workload::STAT_GROUP_SIZES`]). The scheme prices each
/// operand's off-chip footprint (times the tiling pass counts the buffers
/// impose), DRAM bandwidth turns traffic into cycles, the accelerator's
/// law turns MACs and widths into cycles, and the energy model prices all
/// of it. Wall-clock is `max(compute, memory)` per layer.
pub fn simulate(
    model: &dyn TensorSource,
    accel: &dyn Accelerator,
    scheme: &dyn CompressionScheme,
    cfg: &SimConfig,
    input_seed: u64,
) -> RunResult {
    let container_bits = model.act_dtype().bits().max(model.weight_dtype().bits());
    let buffers = cfg
        .buffers
        .unwrap_or_else(|| BufferConfig::for_container_bits(container_bits));
    let num_layers = model.layers().len();
    let mut layers = Vec::with_capacity(num_layers);

    for (i, layer) in model.layers().iter().enumerate() {
        let wgt_stats = model.weight_stats(i, MODEL_SEED);
        let act_in_stats = model.input_stats(i, input_seed);
        let act_out_stats = model.output_stats(i, input_seed);
        let wgt = LazyTensor::new(move || model.weight_tensor(i, MODEL_SEED));
        let act_in = LazyTensor::new(move || model.input_tensor(i, input_seed));
        let act_out = LazyTensor::new(move || model.output_tensor(i, input_seed));

        let act_ctx = SchemeCtx::profiled(model.profiled_act_width(i));
        let wgt_ctx = SchemeCtx::profiled(model.profiled_wgt_width(i));
        let out_ctx = SchemeCtx::profiled(
            model.profiled_act_width((i + 1).min(num_layers - 1)),
        );

        let price = |stats: &ss_tensor::TensorStats, lazy: &LazyTensor<'_>, ctx: &SchemeCtx| {
            scheme
                .compressed_bits_from_stats(stats, ctx)
                .unwrap_or_else(|| scheme.compressed_bits(lazy.get(), ctx))
        };
        let act_in_c = price(&act_in_stats, &act_in, &act_ctx);
        let wgt_c = price(&wgt_stats, &wgt, &wgt_ctx);
        let act_out_c = price(&act_out_stats, &act_out, &out_ctx);

        let passes = if cfg.onchip_compression {
            let r = |compressed: u64, raw: u64| {
                (compressed as f64 / raw.max(1) as f64).clamp(1e-6, 1.0)
            };
            LayerPasses::for_layer_with_onchip_ratio(
                &buffers,
                act_in_stats.container_bits(),
                wgt_stats.container_bits(),
                r(act_in_c, act_in_stats.container_bits()),
                r(wgt_c, wgt_stats.container_bits()),
            )
        } else {
            LayerPasses::for_layer(
                &buffers,
                act_in_stats.container_bits(),
                wgt_stats.container_bits(),
            )
        };
        let traffic = passes.act_reads * act_in_c + passes.wgt_reads * wgt_c + act_out_c;
        let base_traffic = passes.act_reads * act_in_stats.container_bits()
            + passes.wgt_reads * wgt_stats.container_bits()
            + act_out_stats.container_bits();
        let memory_cycles = cfg.dram.cycles_for_bits(traffic, cfg.clock_hz);

        let eff_sync = |stats: &ss_tensor::TensorStats, lazy: &LazyTensor<'_>| {
            stats
                .effective_width(cfg.sync_group)
                .unwrap_or_else(|| lazy.get().effective_width(cfg.sync_group))
        };
        let signals = LayerSignals {
            macs: layer.macs(),
            act_container: model.act_dtype().bits(),
            wgt_container: model.weight_dtype().bits(),
            act_profiled: model.profiled_act_width(i),
            wgt_profiled: model.profiled_wgt_width(i),
            act_eff_sync: eff_sync(&act_in_stats, &act_in),
            wgt_eff_sync: eff_sync(&wgt_stats, &wgt),
            act_nonzero: act_in_stats.nonzero_fraction(),
            wgt_nonzero: wgt_stats.nonzero_fraction(),
            weight_reuse: layer.macs() / (layer.weight_count() as u64).max(1),
        };
        let compute_cycles = accel.compute_cycles(&signals);

        let stall = stall_cycles(compute_cycles, memory_cycles);
        let sram_bits = base_traffic;
        let energy = EnergyBreakdown {
            dram_pj: traffic as f64 * cfg.energy.dram_pj_per_bit,
            sram_pj: sram_bits as f64 * cfg.energy.sram_pj_per_bit,
            compute_pj: accel.compute_energy_pj(&signals, &cfg.energy),
            idle_pj: stall as f64 * cfg.energy.idle_pj_per_cycle,
        };

        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::SimLayers, 1);
            rec.add(Counter::SimComputeCycles, compute_cycles);
            rec.add(Counter::SimMemoryCycles, memory_cycles);
            rec.add(Counter::SimStallCycles, stall);
            rec.add(Counter::SimTrafficBits, traffic);
            rec.add(Counter::SimBaseTrafficBits, base_traffic);
            rec.add(Counter::for_scheme(scheme.name()), traffic);
            let paired = accel.composer_paired(&signals);
            if paired {
                rec.add(Counter::SimComposerPairedLayers, 1);
            }
            // Per-group EOG width distribution at the sync granularity —
            // straight from the shared statistics when the sync group is a
            // tracked size (it is, under the default config), else from
            // the raw tensor.
            let eog = act_in_stats
                .group(cfg.sync_group)
                .map(|g| WidthCounts::from(g.group_width_hist))
                .unwrap_or_else(|| {
                    let t = act_in.get();
                    let signedness = t.dtype().signedness();
                    let mut wc = WidthCounts::new();
                    for group in t.values().chunks(cfg.sync_group.max(1)) {
                        wc.observe(ss_tensor::width::group_width(group, signedness), 1);
                    }
                    wc
                });
            rec.record_widths(WidthHist::LayerEogWidth, &eog);
            rec.record_layer(LayerRecord {
                model: model.name().to_string(),
                accel: accel.name().to_string(),
                scheme: scheme.name().to_string(),
                layer: layer.name().to_string(),
                index: i,
                compute_cycles,
                memory_cycles,
                stall_cycles: stall,
                traffic_bits: traffic,
                base_traffic_bits: base_traffic,
                act_profiled: signals.act_profiled,
                act_eff_sync: signals.act_eff_sync,
                composer_paired: paired,
                eog_width_hist: eog,
            });
        }

        layers.push(LayerResult {
            name: layer.name().to_string(),
            compute_cycles,
            memory_cycles,
            traffic_bits: traffic,
            base_traffic_bits: base_traffic,
            energy,
        });
    }

    RunResult {
        model: model.name().to_string(),
        accel: accel.name().to_string(),
        scheme: scheme.name().to_string(),
        layers,
    }
}

/// Group size constant re-exported for harnesses (the Table 1 grouping).
pub const MEMORY_GROUP: usize = CALIBRATION_GROUP;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{DaDianNao, SStripes, Stripes};
    use ss_core::scheme::{Base, ShapeShifterScheme};
    use ss_models::zoo;

    fn tiny() -> ss_models::Network {
        zoo::alexnet().scaled_down(8)
    }

    #[test]
    fn shapeshifter_reduces_traffic_and_cycles() {
        let net = tiny();
        let cfg = SimConfig::default();
        let base = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
        let ss = simulate(&net, &DaDianNao::new(), &ShapeShifterScheme::default(), &cfg, 1);
        assert!(ss.total_traffic_bits() < base.total_traffic_bits());
        assert!(ss.total_cycles() <= base.total_cycles());
        assert!(ss.relative_traffic() < 0.6, "{}", ss.relative_traffic());
        // Compute is identical: only memory moved.
        for (a, b) in ss.layers.iter().zip(&base.layers) {
            assert_eq!(a.compute_cycles, b.compute_cycles);
        }
    }

    #[test]
    fn sstripes_beats_stripes_on_compute() {
        let net = tiny();
        let cfg = SimConfig::default();
        let scheme = ShapeShifterScheme::default();
        let stripes = simulate(&net, &Stripes::new(), &scheme, &cfg, 1);
        let sstripes = simulate(&net, &SStripes::new(), &scheme, &cfg, 1);
        for (a, b) in sstripes.layers.iter().zip(&stripes.layers) {
            assert!(
                a.compute_cycles <= b.compute_cycles,
                "layer {}: {} vs {}",
                a.name,
                a.compute_cycles,
                b.compute_cycles
            );
        }
        assert!(sstripes.speedup_over(&stripes) >= 1.0);
    }

    #[test]
    fn stalls_burn_idle_energy() {
        let net = tiny();
        // Starve the memory system to force stalls.
        let cfg = SimConfig::with_dram(DramConfig::new(100, 1));
        let r = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
        let e = r.total_energy();
        assert!(e.idle_pj > 0.0);
        assert!(r.compute_time_fraction() < 1.0);
    }

    #[test]
    fn run_result_accounting() {
        let net = tiny();
        let cfg = SimConfig::default();
        let r = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
        assert_eq!(r.layers.len(), net.layers().len());
        assert_eq!(
            r.total_cycles(),
            r.layers.iter().map(LayerResult::cycles).sum::<u64>()
        );
        assert!((r.relative_traffic() - 1.0).abs() < 1e-9, "Base is 1.0");
        assert_eq!(r.speedup_over(&r), 1.0);
    }

    #[test]
    fn with_dram_matches_a_fresh_simulation() {
        let net = tiny();
        let slow = SimConfig::with_dram(DramConfig::DDR4_2133);
        let fast = SimConfig::default();
        let on_fast = simulate(&net, &Stripes::new(), &Base, &fast, 2);
        let repriced = on_fast.with_dram(DramConfig::DDR4_2133, &slow);
        let direct = simulate(&net, &Stripes::new(), &Base, &slow, 2);
        assert_eq!(repriced, direct);
    }

    #[test]
    fn deterministic_across_calls() {
        let net = tiny();
        let cfg = SimConfig::default();
        let a = simulate(&net, &Stripes::new(), &Base, &cfg, 7);
        let b = simulate(&net, &Stripes::new(), &Base, &cfg, 7);
        assert_eq!(a, b);
    }
}
