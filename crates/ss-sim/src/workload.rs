//! Abstraction over the models a simulator can run: int16 masters and
//! their quantized 8-bit variants expose the same tensor API.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use ss_models::{Layer, Network};
use ss_quant::{AdaBitsVariant, QuantizedNetwork};
use ss_tensor::{FixedType, Tensor, TensorStats};

/// Grouping granularities every shared [`TensorStats`] is computed at: the
/// paper's memory-container group (16) and the compute-synchronization
/// group (256). Covering both lets one statistics pass serve the traffic
/// schemes and the bit-serial cycle models alike.
pub const STAT_GROUP_SIZES: [usize; 2] = [16, 256];

/// Anything that can supply per-layer tensors to a simulator.
///
/// Implemented by [`ss_models::Network`] (int16 masters),
/// [`ss_quant::QuantizedNetwork`] (the TF-8b/RA-8b variants) and
/// [`ss_quant::AdaBitsVariant`] (multi-width servings of one model), so
/// every simulator and figure harness runs unchanged across the paper's
/// model suites.
pub trait TensorSource {
    /// Display name used in figure rows.
    fn name(&self) -> &str;

    /// The layer descriptors (geometry + statistics).
    fn layers(&self) -> &[Layer];

    /// Container of this model's weights.
    fn weight_dtype(&self) -> FixedType;

    /// Container of this model's activations.
    fn act_dtype(&self) -> FixedType;

    /// Weights of `layer` (input-independent).
    fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor;

    /// Input activations of `layer` for one input.
    fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor;

    /// Output activations of `layer` for one input.
    fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor;

    /// Profile-derived width of `layer`'s input activations — what a
    /// per-layer design (Stripes, Bit Fusion, the Profile scheme)
    /// provisions for.
    fn profiled_act_width(&self, layer: usize) -> u8;

    /// Profile-derived width of `layer`'s weights.
    fn profiled_wgt_width(&self, layer: usize) -> u8;

    /// One-pass statistics of `layer`'s weights at [`STAT_GROUP_SIZES`].
    ///
    /// Everything the traffic schemes and cycle models need (width
    /// histograms, zero counts and runs, per-group aggregates) from a
    /// single scan. The default computes fresh each call; [`Cached`]
    /// memoizes per `(layer, seed)` so one computation serves every scheme
    /// and figure that prices the layer.
    fn weight_stats(&self, layer: usize, model_seed: u64) -> Arc<TensorStats> {
        Arc::new(TensorStats::compute(
            &self.weight_tensor(layer, model_seed),
            &STAT_GROUP_SIZES,
        ))
    }

    /// One-pass statistics of `layer`'s input activations for one input.
    fn input_stats(&self, layer: usize, input_seed: u64) -> Arc<TensorStats> {
        Arc::new(TensorStats::compute(
            &self.input_tensor(layer, input_seed),
            &STAT_GROUP_SIZES,
        ))
    }

    /// One-pass statistics of `layer`'s output activations for one input.
    fn output_stats(&self, layer: usize, input_seed: u64) -> Arc<TensorStats> {
        Arc::new(TensorStats::compute(
            &self.output_tensor(layer, input_seed),
            &STAT_GROUP_SIZES,
        ))
    }
}

impl TensorSource for Network {
    fn name(&self) -> &str {
        Network::name(self)
    }

    fn layers(&self) -> &[Layer] {
        Network::layers(self)
    }

    fn weight_dtype(&self) -> FixedType {
        Network::weight_dtype(self)
    }

    fn act_dtype(&self) -> FixedType {
        Network::act_dtype(self)
    }

    fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        Network::weight_tensor(self, layer, model_seed)
    }

    fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        Network::input_tensor(self, layer, input_seed)
    }

    fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        Network::output_tensor(self, layer, input_seed)
    }

    fn profiled_act_width(&self, layer: usize) -> u8 {
        ss_quant::profile::profiled_act_width(self, layer)
    }

    fn profiled_wgt_width(&self, layer: usize) -> u8 {
        ss_quant::profile::profiled_wgt_width(self, layer)
    }
}

impl TensorSource for QuantizedNetwork {
    fn name(&self) -> &str {
        QuantizedNetwork::name(self)
    }

    fn layers(&self) -> &[Layer] {
        self.base().layers()
    }

    fn weight_dtype(&self) -> FixedType {
        QuantizedNetwork::weight_dtype(self)
    }

    fn act_dtype(&self) -> FixedType {
        QuantizedNetwork::act_dtype(self)
    }

    fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        QuantizedNetwork::weight_tensor(self, layer, model_seed)
    }

    fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        QuantizedNetwork::input_tensor(self, layer, input_seed)
    }

    fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        QuantizedNetwork::output_tensor(self, layer, input_seed)
    }

    fn profiled_act_width(&self, layer: usize) -> u8 {
        match self.method() {
            // TF affine maps the calibrated maximum onto 255 and shifts
            // everything by the zero-point: the stored profile is the full
            // 8 bits for every layer.
            ss_quant::QuantMethod::Tensorflow => 8,
            // RA shifts so the profile just fits: narrow layers keep their
            // narrow profile.
            ss_quant::QuantMethod::RangeAware => {
                self.profile().act_widths()[layer].min(8)
            }
        }
    }

    fn profiled_wgt_width(&self, layer: usize) -> u8 {
        match self.method() {
            ss_quant::QuantMethod::Tensorflow => 8,
            ss_quant::QuantMethod::RangeAware => {
                self.profile().wgt_widths()[layer].min(8)
            }
        }
    }
}

impl TensorSource for AdaBitsVariant<'_> {
    fn name(&self) -> &str {
        AdaBitsVariant::name(self)
    }

    fn layers(&self) -> &[Layer] {
        self.family().base().layers()
    }

    fn weight_dtype(&self) -> FixedType {
        AdaBitsVariant::weight_dtype(self)
    }

    fn act_dtype(&self) -> FixedType {
        AdaBitsVariant::act_dtype(self)
    }

    fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        AdaBitsVariant::weight_tensor(self, layer, model_seed)
    }

    fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        AdaBitsVariant::input_tensor(self, layer, input_seed)
    }

    fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        AdaBitsVariant::output_tensor(self, layer, input_seed)
    }

    fn profiled_act_width(&self, layer: usize) -> u8 {
        // The family's shared profile, rescaled by the truncation: what
        // needed the profiled width in the master needs at most the
        // serving width after the range-aware shift plus MSB truncation.
        // ss-lint: allow(panic-freedom) -- out-of-range layer is a documented panic, matching the zoo
        self.family().profile().act_widths()[layer].min(self.width())
    }

    fn profiled_wgt_width(&self, layer: usize) -> u8 {
        // ss-lint: allow(panic-freedom) -- out-of-range layer is a documented panic, matching the zoo
        self.family().profile().wgt_widths()[layer].min(self.width())
    }
}

/// A memoizing wrapper around any [`TensorSource`]: each generated tensor
/// is cached on first use and cloned on subsequent requests.
///
/// Sweeps that run one model through several schemes, accelerators, DRAM
/// nodes or buffer sizes would otherwise regenerate tens of millions of
/// synthetic values per configuration; a clone is a plain memcpy. Intended
/// per-model, inside one sweep — the cache grows to the model's full
/// weight footprint and is freed when the wrapper drops.
pub struct Cached<'a> {
    inner: &'a dyn TensorSource,
    weights: RefCell<HashMap<(usize, u64), Tensor>>,
    inputs: RefCell<HashMap<(usize, u64), Tensor>>,
    outputs: RefCell<HashMap<(usize, u64), Tensor>>,
    weight_stats: RefCell<HashMap<(usize, u64), Arc<TensorStats>>>,
    input_stats: RefCell<HashMap<(usize, u64), Arc<TensorStats>>>,
    output_stats: RefCell<HashMap<(usize, u64), Arc<TensorStats>>>,
}

impl std::fmt::Debug for Cached<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cached")
            .field("model", &self.inner.name())
            .field("weights_cached", &self.weights.borrow().len())
            .field("inputs_cached", &self.inputs.borrow().len())
            .field("outputs_cached", &self.outputs.borrow().len())
            .field("stats_cached", &{
                self.weight_stats.borrow().len()
                    + self.input_stats.borrow().len()
                    + self.output_stats.borrow().len()
            })
            .finish()
    }
}

impl<'a> Cached<'a> {
    /// Wraps a tensor source.
    #[must_use]
    pub fn new(inner: &'a dyn TensorSource) -> Self {
        Self {
            inner,
            weights: RefCell::new(HashMap::new()),
            inputs: RefCell::new(HashMap::new()),
            outputs: RefCell::new(HashMap::new()),
            weight_stats: RefCell::new(HashMap::new()),
            input_stats: RefCell::new(HashMap::new()),
            output_stats: RefCell::new(HashMap::new()),
        }
    }
}

impl TensorSource for Cached<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn layers(&self) -> &[Layer] {
        self.inner.layers()
    }

    fn weight_dtype(&self) -> FixedType {
        self.inner.weight_dtype()
    }

    fn act_dtype(&self) -> FixedType {
        self.inner.act_dtype()
    }

    fn weight_tensor(&self, layer: usize, model_seed: u64) -> Tensor {
        self.weights
            .borrow_mut()
            .entry((layer, model_seed))
            .or_insert_with(|| self.inner.weight_tensor(layer, model_seed))
            .clone()
    }

    fn input_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        self.inputs
            .borrow_mut()
            .entry((layer, input_seed))
            .or_insert_with(|| self.inner.input_tensor(layer, input_seed))
            .clone()
    }

    fn output_tensor(&self, layer: usize, input_seed: u64) -> Tensor {
        self.outputs
            .borrow_mut()
            .entry((layer, input_seed))
            .or_insert_with(|| self.inner.output_tensor(layer, input_seed))
            .clone()
    }

    fn profiled_act_width(&self, layer: usize) -> u8 {
        self.inner.profiled_act_width(layer)
    }

    fn profiled_wgt_width(&self, layer: usize) -> u8 {
        self.inner.profiled_wgt_width(layer)
    }

    // Statistics memoize independently of the tensors: a sweep that only
    // needs widths and zero counts never materializes (or retains) the
    // multi-million-value tensors at all.

    fn weight_stats(&self, layer: usize, model_seed: u64) -> Arc<TensorStats> {
        self.weight_stats
            .borrow_mut()
            .entry((layer, model_seed))
            .or_insert_with(|| {
                Arc::new(TensorStats::compute(
                    &self.inner.weight_tensor(layer, model_seed),
                    &STAT_GROUP_SIZES,
                ))
            })
            .clone()
    }

    fn input_stats(&self, layer: usize, input_seed: u64) -> Arc<TensorStats> {
        self.input_stats
            .borrow_mut()
            .entry((layer, input_seed))
            .or_insert_with(|| {
                Arc::new(TensorStats::compute(
                    &self.inner.input_tensor(layer, input_seed),
                    &STAT_GROUP_SIZES,
                ))
            })
            .clone()
    }

    fn output_stats(&self, layer: usize, input_seed: u64) -> Arc<TensorStats> {
        self.output_stats
            .borrow_mut()
            .entry((layer, input_seed))
            .or_insert_with(|| {
                Arc::new(TensorStats::compute(
                    &self.inner.output_tensor(layer, input_seed),
                    &STAT_GROUP_SIZES,
                ))
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::zoo;
    use ss_quant::QuantMethod;

    fn exercise<M: TensorSource>(m: &M) {
        assert!(!m.layers().is_empty());
        let w = m.weight_tensor(0, 0);
        assert_eq!(w.dtype(), m.weight_dtype());
        let a = m.input_tensor(0, 1);
        assert_eq!(a.dtype(), m.act_dtype());
        assert_eq!(a.len(), m.layers()[0].input_count());
        let o = m.output_tensor(0, 1);
        assert_eq!(o.len(), m.layers()[0].output_count());
        let pa = m.profiled_act_width(0);
        assert!(pa >= 1 && pa <= m.act_dtype().bits());
        let pw = m.profiled_wgt_width(0);
        assert!(pw >= 1 && pw <= m.weight_dtype().bits());
    }

    #[test]
    fn tf_profiles_saturate_at_8() {
        let net = zoo::alexnet().scaled_down(8);
        let tf = QuantizedNetwork::new(net.clone(), QuantMethod::Tensorflow);
        for i in 0..net.layers().len() {
            assert_eq!(TensorSource::profiled_act_width(&tf, i), 8);
            assert_eq!(TensorSource::profiled_wgt_width(&tf, i), 8);
        }
    }

    #[test]
    fn cached_stats_match_fresh_and_are_shared() {
        let net = zoo::alexnet().scaled_down(8);
        let cached = Cached::new(&net);
        let a = cached.weight_stats(0, 0);
        let b = cached.weight_stats(0, 0);
        // Same Arc: computed once, shared thereafter.
        assert!(Arc::ptr_eq(&a, &b));
        // And identical to an uncached computation.
        assert_eq!(*a, *TensorSource::weight_stats(&net, 0, 0));
        let i = cached.input_stats(0, 3);
        assert_eq!(*i, *TensorSource::input_stats(&net, 0, 3));
        let o = cached.output_stats(0, 3);
        assert_eq!(*o, *TensorSource::output_stats(&net, 0, 3));
        // The stats cover both canonical granularities.
        for g in STAT_GROUP_SIZES {
            assert!(a.group(g).is_some());
        }
    }

    #[test]
    fn both_sources_expose_the_same_api() {
        let net = zoo::alexnet().scaled_down(8);
        exercise(&net);
        exercise(&QuantizedNetwork::new(net.clone(), QuantMethod::RangeAware));
        exercise(&QuantizedNetwork::new(net, QuantMethod::Tensorflow));
    }
}
