//! Typed simulation errors.
//!
//! PR 2 made the ss-sim hot paths panic-free; this module carries the
//! typed errors those paths return instead of asserting on caller
//! mistakes.

use std::error::Error;
use std::fmt;

/// An error from the cycle simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A tensor's element count does not match the convolution geometry
    /// it was scheduled against.
    GeometryMismatch {
        /// Elements the geometry requires (`in_ch * in_h * in_w`).
        expected: usize,
        /// Elements the tensor actually holds.
        actual: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::GeometryMismatch { expected, actual } => write!(
                f,
                "activation tensor does not match the geometry: \
                 expected {expected} elements, got {actual}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_counts() {
        let e = SimError::GeometryMismatch {
            expected: 100,
            actual: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains('7'), "{msg}");
    }
}
