//! The energy model: per-operation constants of published magnitude.
//!
//! The paper derives power from 65 nm layouts with ModelSim-captured
//! activity, plus CACTI for SRAMs; every energy figure it reports is
//! *relative*. This model substitutes per-operation constants in the range
//! established by the architecture literature (Horowitz ISSCC'14 tutorial
//! numbers scaled to 65 nm): what the figures compare — DRAM traffic,
//! serial compute cycles, and stall-idle overhead — are the quantities the
//! simulators compute exactly, so relative energy is preserved.

/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// DRAM transfer energy per bit (interface + DRAM core).
    pub dram_pj_per_bit: f64,
    /// Large on-chip SRAM access energy per bit.
    pub sram_pj_per_bit: f64,
    /// Bit-parallel 16x16 MAC energy.
    pub mac16_pj: f64,
    /// Bit-serial SIP energy per processed activation bit per MAC lane
    /// (one 1xN multiply-accumulate step).
    pub serial_bit_pj: f64,
    /// Idle (leakage + clock) energy per stalled cycle for a whole
    /// accelerator.
    pub idle_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Constants representative of the paper's 65 nm design point.
    #[must_use]
    pub fn default_65nm() -> Self {
        Self {
            dram_pj_per_bit: 20.0,
            sram_pj_per_bit: 1.0,
            mac16_pj: 4.0,
            // A 16b MAC done serially over ~16 bits costs slightly more
            // total than the parallel one (the bit-serial premium).
            serial_bit_pj: 0.3,
            idle_pj_per_cycle: 20_000.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_65nm()
    }
}

/// Energy spent by one layer (or one whole run), by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Off-chip transfer energy.
    pub dram_pj: f64,
    /// On-chip SRAM movement energy.
    pub sram_pj: f64,
    /// Datapath (MAC) energy.
    pub compute_pj: f64,
    /// Idle energy burnt while stalled on memory.
    pub idle_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.sram_pj + self.compute_pj + self.idle_pj
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.dram_pj += other.dram_pj;
        self.sram_pj += other.sram_pj;
        self.compute_pj += other.compute_pj;
        self.idle_pj += other.idle_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = EnergyBreakdown {
            dram_pj: 1.0,
            sram_pj: 2.0,
            compute_pj: 3.0,
            idle_pj: 4.0,
        };
        assert_eq!(a.total_pj(), 10.0);
        let b = a;
        a.add(&b);
        assert_eq!(a.total_pj(), 20.0);
    }

    #[test]
    fn dram_dominates_sram_per_bit() {
        // The premise of the whole paper: "most of their energy
        // expenditure is due to data transfers", off-chip being the
        // costliest.
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_bit > 10.0 * m.sram_pj_per_bit);
    }
}
