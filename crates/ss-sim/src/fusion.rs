//! Layer fusion (Alwani et al., MICRO 2016) combined with ShapeShifter
//! compression — the Figure 11 study.
//!
//! Fusing a chain of layers keeps the intermediate activations on-chip:
//! only the chain's first input, its weights, and its last output touch
//! DRAM. ShapeShifter then compresses what still travels. The figure
//! reports compression ratios "with and without ShapeShifter as opposed to
//! using neither".

use ss_core::scheme::{CompressionScheme, SchemeCtx};

use crate::sim::MODEL_SEED;
use crate::workload::TensorSource;

/// Off-chip traffic for a network executed in fused chains of
/// `fuse_depth` consecutive layers.
///
/// Intermediate activations inside a chain stay on-chip (a fused pyramid
/// holds them in the buffers); every chain reads its first input and all
/// its weights, and writes its final output. With `fuse_depth == 1` this
/// degenerates to the unfused per-layer traffic (single-pass regime).
///
/// Returns traffic in bits under the given scheme.
///
/// # Panics
///
/// Panics if `fuse_depth == 0`.
#[must_use]
pub fn fused_traffic_bits(
    model: &dyn TensorSource,
    scheme: &dyn CompressionScheme,
    fuse_depth: usize,
    input_seed: u64,
) -> u64 {
    assert!(fuse_depth > 0, "fusion depth must be at least 1");
    let num_layers = model.layers().len();
    let mut traffic = 0u64;
    let mut start = 0usize;
    while start < num_layers {
        let end = (start + fuse_depth).min(num_layers); // exclusive
        // Chain input.
        let act_in = model.input_tensor(start, input_seed);
        traffic += scheme.compressed_bits(
            &act_in,
            &SchemeCtx::profiled(model.profiled_act_width(start)),
        );
        // All weights of the chain.
        for i in start..end {
            let w = model.weight_tensor(i, MODEL_SEED);
            traffic += scheme
                .compressed_bits(&w, &SchemeCtx::profiled(model.profiled_wgt_width(i)));
        }
        // Chain output.
        let last = end - 1;
        let act_out = model.output_tensor(last, input_seed);
        let out_profile = model.profiled_act_width((last + 1).min(num_layers - 1));
        traffic += scheme.compressed_bits(&act_out, &SchemeCtx::profiled(out_profile));
        start = end;
    }
    traffic
}

/// The Figure 11 quadrant for one model: traffic relative to
/// no-fusion/no-compression for (fusion, compression) on/off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionStudy {
    /// Fusion off, compression on.
    pub compression_only: f64,
    /// Fusion on, compression off.
    pub fusion_only: f64,
    /// Both on.
    pub both: f64,
}

/// Runs the Figure 11 comparison at the given fusion depth.
#[must_use]
pub fn fusion_study(
    model: &dyn TensorSource,
    scheme: &dyn CompressionScheme,
    fuse_depth: usize,
    input_seed: u64,
) -> FusionStudy {
    let base = ss_core::scheme::Base;
    let neither = fused_traffic_bits(model, &base, 1, input_seed) as f64;
    FusionStudy {
        compression_only: fused_traffic_bits(model, scheme, 1, input_seed) as f64 / neither,
        fusion_only: fused_traffic_bits(model, &base, fuse_depth, input_seed) as f64 / neither,
        both: fused_traffic_bits(model, scheme, fuse_depth, input_seed) as f64 / neither,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::scheme::{Base, ShapeShifterScheme};
    use ss_models::zoo;

    #[test]
    fn fusion_removes_intermediate_activations() {
        let net = zoo::vgg_m().scaled_down(8);
        let unfused = fused_traffic_bits(&net, &Base, 1, 3);
        let fused = fused_traffic_bits(&net, &Base, 2, 3);
        assert!(fused < unfused);
    }

    #[test]
    fn deeper_fusion_never_increases_traffic() {
        let net = zoo::alexnet().scaled_down(8);
        let mut last = u64::MAX;
        for depth in [1usize, 2, 4, 8] {
            let t = fused_traffic_bits(&net, &Base, depth, 1);
            assert!(t <= last, "depth {depth}");
            last = t;
        }
    }

    #[test]
    fn combination_beats_either_alone() {
        // The Figure 11 claim.
        let net = zoo::vgg_m().scaled_down(8);
        let s = fusion_study(&net, &ShapeShifterScheme::default(), 2, 5);
        assert!(s.both < s.compression_only, "{s:?}");
        assert!(s.both < s.fusion_only, "{s:?}");
        assert!(s.compression_only < 1.0);
        assert!(s.fusion_only < 1.0);
    }

    #[test]
    fn depth_one_matches_per_layer_accounting() {
        let net = zoo::alexnet().scaled_down(8);
        let scheme = ShapeShifterScheme::default();
        // Same accounting as the simulate() single-pass path: in + w + out
        // per layer.
        let direct: u64 = (0..net.layers().len())
            .map(|i| {
                use ss_core::scheme::CompressionScheme as _;
                use crate::workload::TensorSource as _;
                let ctx_a = SchemeCtx::profiled(net.profiled_act_width(i));
                let ctx_w = SchemeCtx::profiled(net.profiled_wgt_width(i));
                let ctx_o = SchemeCtx::profiled(
                    net.profiled_act_width((i + 1).min(net.layers().len() - 1)),
                );
                scheme.compressed_bits(&net.input_tensor(i, 9), &ctx_a)
                    + scheme.compressed_bits(&net.weight_tensor(i, MODEL_SEED), &ctx_w)
                    + scheme.compressed_bits(&net.output_tensor(i, 9), &ctx_o)
            })
            .sum();
        assert_eq!(fused_traffic_bits(&net, &scheme, 1, 9), direct);
    }
}
