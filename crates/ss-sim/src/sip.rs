//! Functional model of the Stripes serial inner-product unit (SIP) and
//! the SStripes Composer (paper §4, Figure 7b).
//!
//! Where [`crate::accel`] models *throughput* analytically, this module
//! models the *datapath* bit by bit: a SIP multiply-accumulates 16
//! (activation, weight) pairs with the activation processed one bit per
//! cycle, LSB first, via shift-and-add of the weights. Terminating after
//! the group's detected width — the EOG signal — provably loses nothing,
//! because the detector's width covers every set bit; the tests verify
//! the paper's claim that SStripes "produces the same numerical result as
//! Stripes" against a direct integer dot product.

use ss_tensor::{width, Signedness};

use crate::accel::LayerSignals;

/// Lanes per SIP (16 activation/weight pairs, a paper design parameter).
pub const SIP_LANES: usize = 16;

/// A serial inner-product unit holding one set of weights.
///
/// # Examples
///
/// ```
/// use ss_sim::sip::SerialIp;
///
/// let mut sip = SerialIp::new(&[2, -3, 10, 0]);
/// let acts = [5, 1, 0, 9];
/// let cycles = sip.process_group(&acts, 3); // width-3 activations
/// assert_eq!(sip.accumulator(), 2 * 5 - 3 + 0 + 0);
/// assert_eq!(cycles, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialIp {
    weights: Vec<i64>,
    acc: i64,
}

impl SerialIp {
    /// Creates a SIP loaded with the given weights (up to
    /// [`SIP_LANES`]; fewer model a partially filled unit).
    ///
    /// # Panics
    ///
    /// Panics if more than [`SIP_LANES`] weights are supplied.
    #[must_use]
    pub fn new(weights: &[i32]) -> Self {
        assert!(
            weights.len() <= SIP_LANES,
            "a SIP holds at most {SIP_LANES} weights"
        );
        Self {
            weights: weights.iter().map(|&w| i64::from(w)).collect(),
            acc: 0,
        }
    }

    /// The running partial sum.
    #[must_use]
    pub fn accumulator(&self) -> i64 {
        self.acc
    }

    /// Clears the partial sum (a new output window).
    pub fn reset(&mut self) {
        self.acc = 0;
    }

    /// Processes one group of non-negative activations bit-serially for
    /// exactly `bits` cycles (the EOG cut-off), returning the cycles
    /// spent. Each cycle `c` adds `Σ w_l · bit_c(a_l)` shifted by `c` —
    /// the Figure 7b datapath.
    ///
    /// # Panics
    ///
    /// Panics if activation count differs from the loaded weight count or
    /// an activation is negative (Stripes streams magnitudes; signs ride
    /// with the weights).
    pub fn process_group(&mut self, acts: &[i32], bits: u8) -> u8 {
        assert_eq!(
            acts.len(),
            self.weights.len(),
            "activation lanes must match weight lanes"
        );
        assert!(
            acts.iter().all(|&a| a >= 0),
            "bit-serial activations are magnitudes"
        );
        for c in 0..u32::from(bits) {
            let mut row_sum = 0i64;
            for (&a, &w) in acts.iter().zip(&self.weights) {
                if (a >> c) & 1 == 1 {
                    row_sum += w;
                }
            }
            self.acc += row_sum << c;
        }
        bits
    }

    /// Processes a group at its *detected* width — the SStripes path:
    /// the dispatcher's width detector emits EOG after the widest live
    /// bit, so the unit spends only as many cycles as the group needs.
    pub fn process_group_dynamic(&mut self, acts: &[i32]) -> u8 {
        let w = width::group_width(acts, Signedness::Unsigned);
        self.process_group(acts, w)
    }
}

/// The Composer path: two 8-bit-weight SIPs carry the low and high halves
/// of a 16-bit weight; their partial sums combine as `low + (high << 8)`
/// when results drain to the partial-sum memory.
///
/// # Examples
///
/// ```
/// use ss_sim::sip::{compose, SerialIp};
///
/// let weights = [300, -4000];
/// let acts = [7, 12];
/// let direct: i64 = weights
///     .iter()
///     .zip(&acts)
///     .map(|(&w, &a)| i64::from(w) * i64::from(a))
///     .sum();
/// assert_eq!(compose(&weights, &acts, 4), direct);
/// ```
#[must_use]
pub fn compose(weights16: &[i32], acts: &[i32], bits: u8) -> i64 {
    // Two's-complement split: low byte unsigned, high part signed.
    let lo: Vec<i32> = weights16.iter().map(|&w| w & 0xFF).collect();
    let hi: Vec<i32> = weights16.iter().map(|&w| w >> 8).collect();
    let mut sip_lo = SerialIp::new(&lo);
    let mut sip_hi = SerialIp::new(&hi);
    sip_lo.process_group(acts, bits);
    sip_hi.process_group(acts, bits);
    sip_lo.accumulator() + (sip_hi.accumulator() << 8)
}

/// Cycle count the analytic SStripes law predicts for one group — kept
/// adjacent to the functional model so the two stay consistent (see the
/// cross-check test).
#[must_use]
pub fn analytic_group_cycles(sig: &LayerSignals) -> f64 {
    sig.act_eff_clamped()
}

/// The dispatcher's transposer: turns a group of up to 64 activation
/// magnitudes into bit-planes, one `u64` per bit position with lane `l`'s
/// bit in position `l` — the wire format the dispatcher streams to the
/// tiles ("a dispatcher per activation memory bank takes care of
/// transposing the values and communicating them bit-serially", §4).
///
/// Only `bits` planes are produced: the width detector has already bounded
/// the live positions.
///
/// # Panics
///
/// Panics if more than 64 lanes are supplied or any activation is
/// negative.
#[must_use]
pub fn transpose_to_bitplanes(acts: &[i32], bits: u8) -> Vec<u64> {
    assert!(acts.len() <= 64, "a plane word carries at most 64 lanes");
    assert!(
        acts.iter().all(|&a| a >= 0),
        "bit-serial activations are magnitudes"
    );
    (0..u32::from(bits))
        .map(|c| {
            acts.iter()
                .enumerate()
                .fold(0u64, |plane, (l, &a)| plane | (((a as u64 >> c) & 1) << l))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_models::ValueGen;
    use ss_tensor::FixedType;

    fn direct_dot(weights: &[i32], acts: &[i32]) -> i64 {
        weights
            .iter()
            .zip(acts)
            .map(|(&w, &a)| i64::from(w) * i64::from(a))
            .sum()
    }

    #[test]
    fn full_width_matches_direct_product() {
        let weights = [5, -3, 100, -32767, 0, 1, 77, -77];
        let acts = [9, 0, 65_535, 1, 4, 12_345, 2, 3];
        let mut sip = SerialIp::new(&weights);
        let cycles = sip.process_group(&acts, 16);
        assert_eq!(cycles, 16);
        assert_eq!(sip.accumulator(), direct_dot(&weights, &acts));
    }

    #[test]
    fn eog_early_termination_is_lossless() {
        // The central §4 claim: cutting at the detected width changes
        // nothing, on real zoo-like value distributions.
        let wgen = ValueGen::from_width_target(4.5, 0.0, FixedType::I16);
        let agen = ValueGen::from_width_target(4.0, 0.5, FixedType::U16);
        for seed in 0..50 {
            let w = wgen.tensor_flat(SIP_LANES, seed);
            let a = agen.tensor_flat(SIP_LANES, seed + 1000);
            let mut full = SerialIp::new(w.values());
            full.process_group(a.values(), 16);
            let mut early = SerialIp::new(w.values());
            let spent = early.process_group_dynamic(a.values());
            assert_eq!(full.accumulator(), early.accumulator(), "seed {seed}");
            assert!(spent <= 16);
            assert_eq!(
                spent,
                width::group_width(a.values(), Signedness::Unsigned)
            );
        }
    }

    #[test]
    fn cycles_equal_group_width_never_layer_profile() {
        let acts = [3, 1, 2, 0]; // width 2
        let mut sip = SerialIp::new(&[1, 1, 1, 1]);
        assert_eq!(sip.process_group_dynamic(&acts), 2);
        assert_eq!(sip.accumulator(), 6);
    }

    #[test]
    fn accumulation_spans_groups() {
        // Partial sums accumulate across successive groups of the same
        // window, as in the real dataflow.
        let mut sip = SerialIp::new(&[2, 2]);
        sip.process_group_dynamic(&[1, 1]);
        sip.process_group_dynamic(&[3, 0]);
        assert_eq!(sip.accumulator(), 2 + 2 + 6);
        sip.reset();
        assert_eq!(sip.accumulator(), 0);
    }

    #[test]
    fn composer_matches_16b_sip_on_random_values() {
        let wgen = ValueGen::from_width_target(5.5, 0.0, FixedType::I16);
        let agen = ValueGen::from_width_target(5.0, 0.4, FixedType::U16);
        for seed in 0..50 {
            let w = wgen.tensor_flat(SIP_LANES, seed);
            let a = agen.tensor_flat(SIP_LANES, seed + 99);
            let composed = compose(w.values(), a.values(), 16);
            assert_eq!(composed, direct_dot(w.values(), a.values()), "seed {seed}");
        }
    }

    #[test]
    fn composer_with_early_termination() {
        // Both halves honour the same EOG: composition stays exact.
        let weights = [-30_000, 255, 256, -1];
        let acts = [7, 5, 3, 1]; // width 3
        let bits = width::group_width(&acts, Signedness::Unsigned);
        assert_eq!(compose(&weights, &acts, bits), direct_dot(&weights, &acts));
    }

    #[test]
    fn zero_width_group_takes_zero_cycles() {
        let mut sip = SerialIp::new(&[9, 9]);
        let spent = sip.process_group_dynamic(&[0, 0]);
        assert_eq!(spent, 0);
        assert_eq!(sip.accumulator(), 0);
    }

    #[test]
    #[should_panic(expected = "magnitudes")]
    fn negative_activations_rejected() {
        let mut sip = SerialIp::new(&[1]);
        let _ = sip.process_group(&[-1], 4);
    }

    #[test]
    fn transpose_roundtrips() {
        let acts = [0b101, 0b010, 0b111, 0b000];
        let planes = transpose_to_bitplanes(&acts, 3);
        assert_eq!(planes, vec![0b0101, 0b0110, 0b0101]);
        // Reassemble: value l = sum over planes of bit l << c.
        for (l, &a) in acts.iter().enumerate() {
            let mut v = 0i32;
            for (c, &plane) in planes.iter().enumerate() {
                v |= (((plane >> l) & 1) as i32) << c;
            }
            assert_eq!(v, a, "lane {l}");
        }
    }

    #[test]
    fn transpose_width_bounds_planes() {
        let planes = transpose_to_bitplanes(&[0xFFFF; 16], 16);
        assert_eq!(planes.len(), 16);
        assert!(planes.iter().all(|&p| p == 0xFFFF));
        assert!(transpose_to_bitplanes(&[1, 2], 0).is_empty());
    }

    #[test]
    fn planes_feed_the_sip_identically() {
        // Driving the SIP from bit-planes (the real wire format) matches
        // driving it from values.
        let weights = [3, -5, 7, 11];
        let acts = [6, 2, 9, 1];
        let bits = width::group_width(&acts, Signedness::Unsigned);
        let planes = transpose_to_bitplanes(&acts, bits);
        let mut acc = 0i64;
        for (c, &plane) in planes.iter().enumerate() {
            let mut row = 0i64;
            for (l, &w) in weights.iter().enumerate() {
                if (plane >> l) & 1 == 1 {
                    row += i64::from(w);
                }
            }
            acc += row << c;
        }
        assert_eq!(acc, direct_dot(&weights, &acts));
    }
}
