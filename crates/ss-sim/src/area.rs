//! First-order area accounting for the Stripes-class tiles.
//!
//! The paper's area statements (§4) are relative: an 8b-weight SIP is
//! "1.8× smaller" than the 16b-weight SIP, the iso-area SStripes tile
//! holds 16×28 of them plus a Composer column, and "the area overhead of
//! per group width adaptation is negligible, at below 2% compared to the
//! tile". This module reproduces that accounting in normalized area units
//! (1.0 = one 16b-weight SIP) so the iso-area configurations the figures
//! assume are checked by tests rather than asserted in prose.

/// Area of one 16b-weight SIP (the normalization unit).
pub const SIP_16B: f64 = 1.0;
/// Area of one 8b-weight SIP: the paper measures 1.8x smaller.
pub const SIP_8B: f64 = 1.0 / 1.8;
/// A width-detection unit per dispatcher: OR trees over 16 values of 16
/// bits plus a leading-1 detector — a few hundred gates against a SIP's
/// few thousand.
pub const WIDTH_DETECTOR: f64 = 0.05;
/// One 2x36b adder of the Composer, serving two rows.
pub const COMPOSER_ADDER: f64 = 0.04;

/// Area accounting for one accelerator tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileArea {
    /// SIP grid area.
    pub sips: f64,
    /// Width-detection units.
    pub detectors: f64,
    /// Composer adders.
    pub composer: f64,
}

impl TileArea {
    /// The original Stripes tile: 16x16 16b-weight SIPs, no extensions.
    #[must_use]
    pub fn stripes() -> Self {
        Self {
            sips: 256.0 * SIP_16B,
            detectors: 0.0,
            composer: 0.0,
        }
    }

    /// The SStripes tile of §4: 16x28 8b-weight SIPs, one width detector
    /// per dispatcher (16 per tile), a Composer adder per two rows of
    /// each column pair (8 per column x 28 columns... the paper specifies
    /// "a 2x36b adder every two rows", i.e. 8 per column).
    #[must_use]
    pub fn sstripes() -> Self {
        Self {
            sips: (16.0 * 28.0) * SIP_8B,
            detectors: 16.0 * WIDTH_DETECTOR,
            composer: 28.0 * 8.0 * COMPOSER_ADDER,
        }
    }

    /// The dynamic-width-only variant (no Composer, 16b SIPs) used by the
    /// ablation: Stripes plus detectors.
    #[must_use]
    pub fn sstripes_without_composer() -> Self {
        Self {
            sips: 256.0 * SIP_16B,
            detectors: 16.0 * WIDTH_DETECTOR,
            composer: 0.0,
        }
    }

    /// Total tile area in SIP units.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sips + self.detectors + self.composer
    }

    /// Fraction of the tile spent on ShapeShifter extensions (detectors
    /// plus Composer).
    #[must_use]
    pub fn extension_overhead(&self) -> f64 {
        (self.detectors + self.composer) / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_adaptation_overhead_is_below_two_percent() {
        // The paper's §4 claim, for the surgical (detector-only) change.
        let t = TileArea::sstripes_without_composer();
        assert!(
            t.extension_overhead() < 0.02,
            "overhead {}",
            t.extension_overhead()
        );
    }

    #[test]
    fn sstripes_tile_is_iso_area_with_stripes() {
        // 16x28 smaller SIPs + detectors + composer ~ 16x16 big SIPs.
        let stripes = TileArea::stripes().total();
        let sstripes = TileArea::sstripes().total();
        let ratio = sstripes / stripes;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "area ratio {ratio} is not iso-area"
        );
    }

    #[test]
    fn composer_dominates_the_extension_area() {
        let t = TileArea::sstripes();
        assert!(t.composer > t.detectors);
        // But both together stay a small fraction of the tile.
        assert!(t.extension_overhead() < 0.1);
    }
}
