//! Bit Fusion (Sharma et al., ISCA 2018) — the spatial-first comparison
//! point of §5.2.1 and Figure 14.

use crate::accel::{pow2_precision, Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// Bit Fusion: a systolic array of bit-level "BitBrick" PEs that fuse
/// spatially to match the layer's precision. It "natively supports per
/// layer precisions of 8, 4, and 2 bits for both weights and activations"
/// and handles 16-bit values "by decomposing them into 8b multiplications
/// which it performs sequentially in time" (§5.1.2).
///
/// Throughput scales as `(8/Pa)·(8/Pw)` around an 8b×8b peak; 16-bit
/// operands halve the rate per operand (the 2× temporal decomposition per
/// 16-bit side). Precisions are per-layer, profile-derived, rounded up to
/// the supported power-of-two levels — Bit Fusion "as presented cannot
/// adapt to precisions at a fine granularity" (§4), which is exactly what
/// Figure 14 measures against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFusion {
    peak_8x8: u64,
}

impl BitFusion {
    /// The iso-area configuration used for Figure 14: an 8b×8b peak of
    /// 8192 MACs/cycle (the fused array doubles DaDianNao's 16b peak when
    /// operands halve).
    #[must_use]
    pub fn new() -> Self {
        Self { peak_8x8: 8192 }
    }

    /// A custom 8b×8b peak.
    ///
    /// # Panics
    ///
    /// Panics if `peak_8x8 == 0`.
    #[must_use]
    pub fn with_peak(peak_8x8: u64) -> Self {
        assert!(peak_8x8 > 0, "peak must be non-zero");
        Self { peak_8x8 }
    }

    /// MACs per cycle for the given per-layer profiled precisions.
    #[must_use]
    pub fn rate(&self, act_profiled: u8, wgt_profiled: u8) -> f64 {
        let pa = f64::from(pow2_precision(act_profiled));
        let pw = f64::from(pow2_precision(wgt_profiled));
        self.peak_8x8 as f64 * (8.0 / pa) * (8.0 / pw)
    }
}

impl Default for BitFusion {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for BitFusion {
    fn name(&self) -> &str {
        "Bit Fusion"
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        (sig.macs as f64 / self.rate(sig.act_profiled, sig.wgt_profiled)).ceil() as u64
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        let pa = f64::from(pow2_precision(sig.act_profiled));
        let pw = f64::from(pow2_precision(sig.wgt_profiled));
        sig.macs as f64 * em.mac16_pj * (pa * pw) / 256.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;

    #[test]
    fn rate_scales_with_fused_precision() {
        let bf = BitFusion::new();
        assert_eq!(bf.rate(8, 8), 8192.0);
        assert_eq!(bf.rate(4, 8), 16384.0);
        assert_eq!(bf.rate(2, 2), 131_072.0);
        // 16b x 16b: 4 sequential 8b x 8b products.
        assert_eq!(bf.rate(16, 16), 2048.0);
    }

    #[test]
    fn precisions_round_up_to_pow2() {
        let bf = BitFusion::new();
        // A 5-bit profile still pays the 8-bit rate.
        assert_eq!(bf.rate(5, 5), bf.rate(8, 8));
        assert_eq!(bf.rate(3, 3), bf.rate(4, 4));
        // 9-bit weights fall off the spatial cliff to 16.
        assert_eq!(bf.rate(8, 9), bf.rate(8, 16));
    }

    #[test]
    fn sixteen_bit_layers_are_4x_slower_than_8b() {
        let bf = BitFusion::new();
        let mut s = conv16();
        s.act_profiled = 16;
        s.wgt_profiled = 16;
        let c16 = bf.compute_cycles(&s);
        s.act_profiled = 8;
        s.wgt_profiled = 8;
        let c8 = bf.compute_cycles(&s);
        assert_eq!(c16, 4 * c8);
    }

    #[test]
    fn dynamic_widths_do_not_matter() {
        // The spatial-first design reconfigures per layer, not per group.
        let bf = BitFusion::new();
        let mut s = conv16();
        let base = bf.compute_cycles(&s);
        s.act_eff_sync = 1.0;
        assert_eq!(bf.compute_cycles(&s), base);
    }
}
