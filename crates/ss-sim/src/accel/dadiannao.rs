//! `DaDianNao*` — the bit-parallel baseline of §5.1.1.

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// A DaDianNao-class bit-parallel accelerator: 16 tiles of 256 MAC units,
/// 4096 MACs per cycle regardless of value content. It benefits from
/// ShapeShifter only through memory compression — the configuration of
/// Figure 9a/9b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DaDianNao {
    macs_per_cycle: u64,
}

impl DaDianNao {
    /// The paper's 4K-MAC/cycle configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            macs_per_cycle: 4096,
        }
    }

    /// A custom peak (for scaling studies).
    ///
    /// # Panics
    ///
    /// Panics if `macs_per_cycle == 0`.
    #[must_use]
    pub fn with_peak(macs_per_cycle: u64) -> Self {
        assert!(macs_per_cycle > 0, "peak must be non-zero");
        Self { macs_per_cycle }
    }
}

impl Default for DaDianNao {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for DaDianNao {
    fn name(&self) -> &str {
        "DaDianNao*"
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        sig.macs.div_ceil(self.macs_per_cycle)
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        // A bit-parallel MAC's energy scales with the product of operand
        // widths; the 16x16 constant anchors the scale.
        let scale = f64::from(sig.act_container) * f64::from(sig.wgt_container) / 256.0;
        sig.macs as f64 * em.mac16_pj * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;

    #[test]
    fn cycles_ignore_value_content() {
        let d = DaDianNao::new();
        let mut s = conv16();
        let base = d.compute_cycles(&s);
        assert_eq!(base, 1000);
        s.act_eff_sync = 1.0;
        s.act_profiled = 2;
        assert_eq!(d.compute_cycles(&s), base, "widths must not matter");
    }

    #[test]
    fn energy_scales_with_container_product() {
        let d = DaDianNao::new();
        let em = EnergyModel::default();
        let s16 = conv16();
        let mut s8 = conv16();
        s8.act_container = 8;
        s8.wgt_container = 8;
        let e16 = d.compute_energy_pj(&s16, &em);
        let e8 = d.compute_energy_pj(&s8, &em);
        assert!((e16 / e8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rounding_up() {
        let d = DaDianNao::with_peak(4096);
        let mut s = conv16();
        s.macs = 4097;
        assert_eq!(d.compute_cycles(&s), 2);
    }
}
