//! Stripes (Judd et al., MICRO 2016) — the activation-bit-serial design
//! SStripes extends.

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// Stripes: 16 tiles × 256 SIPs, each SIP multiply-accumulating 16
/// (activation, weight) pairs with the activation processed one bit at a
/// time. A layer profiled to `P` activation bits takes `P` cycles per
/// group of concurrently-processed activations, so throughput is
/// `65536 / P` MACs per cycle — 4K at the worst-case 16 bits, matching
/// the paper's iso-peak normalization.
///
/// Per-layer precisions are profile-derived, "as originally proposed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stripes {
    lanes: u64,
}

/// 16 tiles × 256 SIPs × 16 lanes per SIP.
const PAPER_LANES: u64 = 16 * 256 * 16;

impl Stripes {
    /// The paper's 16-tile configuration.
    #[must_use]
    pub fn new() -> Self {
        Self { lanes: PAPER_LANES }
    }

    /// Concurrent MAC lanes (each producing one bit-step per cycle).
    #[must_use]
    pub fn lanes(&self) -> u64 {
        self.lanes
    }
}

impl Default for Stripes {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for Stripes {
    fn name(&self) -> &str {
        "Stripes"
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        let p = u64::from(sig.act_profiled.max(1));
        (sig.macs * p).div_ceil(self.lanes)
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        sig.macs as f64 * f64::from(sig.act_profiled.max(1)) * em.serial_bit_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;

    #[test]
    fn worst_case_matches_dadiannao_peak() {
        // At 16-bit profiled precision Stripes degenerates to 4K MACs/cyc.
        let s = Stripes::new();
        let mut sig = conv16();
        sig.act_profiled = 16;
        assert_eq!(s.compute_cycles(&sig), sig.macs.div_ceil(4096));
    }

    #[test]
    fn cycles_scale_with_profiled_width() {
        let s = Stripes::new();
        let mut sig = conv16();
        sig.act_profiled = 8;
        let c8 = s.compute_cycles(&sig);
        sig.act_profiled = 4;
        let c4 = s.compute_cycles(&sig);
        assert_eq!(c8, 2 * c4);
    }

    #[test]
    fn dynamic_widths_do_not_matter() {
        // Original Stripes has no width detector: only the profile counts.
        let s = Stripes::new();
        let mut sig = conv16();
        let base = s.compute_cycles(&sig);
        sig.act_eff_sync = 1.0;
        assert_eq!(s.compute_cycles(&sig), base);
    }

    #[test]
    fn zero_width_profile_clamps_to_one() {
        let s = Stripes::new();
        let mut sig = conv16();
        sig.act_profiled = 0;
        assert!(s.compute_cycles(&sig) > 0);
    }
}
