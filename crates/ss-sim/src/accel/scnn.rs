//! SCNN (Parashar et al., ISCA 2017) — the sparse accelerator of §5.1.3.

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// SCNN: computes only non-zero × non-zero products. 64 processing
/// elements with a 4×4 multiplier array each give a 1024-multiply/cycle
/// peak; a utilization factor models the crossbar and accumulator-bank
/// contention the full design pays on real layers.
///
/// SCNN "targets pruned models"; its native off-chip format is the
/// run-length zero encoding that Figure 10 compares against ShapeShifter
/// compression (the codec choice lives in the driver — compute is
/// identical under both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scnn {
    multipliers: u64,
    utilization: f64,
}

impl Scnn {
    /// The published configuration: 64 PEs × 16 multipliers at ~75%
    /// sustained utilization.
    #[must_use]
    pub fn new() -> Self {
        Self {
            multipliers: 1024,
            utilization: 0.75,
        }
    }

    /// Custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers == 0` or `utilization` is outside `(0, 1]`.
    #[must_use]
    pub fn with_config(multipliers: u64, utilization: f64) -> Self {
        assert!(multipliers > 0, "need at least one multiplier");
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        Self {
            multipliers,
            utilization,
        }
    }

    /// Non-zero products a layer actually performs.
    #[must_use]
    pub fn effective_macs(&self, sig: &LayerSignals) -> f64 {
        sig.macs as f64 * sig.act_nonzero * sig.wgt_nonzero
    }
}

impl Default for Scnn {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for Scnn {
    fn name(&self) -> &str {
        "SCNN"
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        let rate = self.multipliers as f64 * self.utilization;
        (self.effective_macs(sig) / rate).ceil() as u64
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        self.effective_macs(sig) * em.mac16_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;

    #[test]
    fn sparsity_cuts_cycles_multiplicatively() {
        let s = Scnn::new();
        let mut sig = conv16();
        sig.act_nonzero = 1.0;
        sig.wgt_nonzero = 1.0;
        let dense = s.compute_cycles(&sig);
        sig.act_nonzero = 0.5;
        sig.wgt_nonzero = 0.4;
        let sparse = s.compute_cycles(&sig);
        assert!((dense as f64 / sparse as f64 - 5.0).abs() < 0.01);
    }

    #[test]
    fn widths_do_not_matter() {
        let s = Scnn::new();
        let mut sig = conv16();
        let base = s.compute_cycles(&sig);
        sig.act_profiled = 2;
        sig.act_eff_sync = 1.0;
        assert_eq!(s.compute_cycles(&sig), base);
    }

    #[test]
    fn utilization_bounds() {
        assert!(std::panic::catch_unwind(|| Scnn::with_config(0, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| Scnn::with_config(10, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Scnn::with_config(10, 1.1)).is_err());
        let _ = Scnn::with_config(10, 1.0);
    }
}
