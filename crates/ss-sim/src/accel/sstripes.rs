//! SStripes — the paper's surgical extension of Stripes (§4, Figure 7).

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// ShapeShifter-Stripes: Stripes plus (1) a width-detection unit per
/// dispatcher that terminates each activation group early via the
/// end-of-group (EOG) signal, and (2) the optional **Composer** column.
///
/// With the Composer, SIPs shrink to 8-bit weights (1.8× smaller), so an
/// iso-area tile holds 16×28 SIPs instead of 16×16 — a 1.75× lane gain.
/// Layers whose profiled weight width exceeds 8 bits pair two
/// column-adjacent SIPs (upper/lower weight halves, summed by the
/// Composer's 2×36b adder as results drain to the partial-sum memory),
/// halving the effective lanes for those layers only.
///
/// Per-group cycles follow the *dynamic* per-group width — the worst group
/// among the 256 concurrently-broadcast activations (`act_eff_sync`) — not
/// the layer profile. "SStripes does not affect accuracy, and produces the
/// same numerical result as Stripes."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SStripes {
    composer: bool,
}

/// Lanes with 8b-weight SIPs: 16 tiles × 16 rows × 28 columns × 16 lanes.
const COMPOSER_LANES: u64 = 16 * 16 * 28 * 16;
/// Lanes with the original 16b-weight SIPs (no Composer).
const PLAIN_LANES: u64 = 16 * 256 * 16;

impl SStripes {
    /// The paper's configuration: 8b-weight SIPs plus a Composer column.
    #[must_use]
    pub fn new() -> Self {
        Self { composer: true }
    }

    /// The ablation without the Composer: 16b-weight SIPs, per-group
    /// dynamic widths only.
    #[must_use]
    pub fn without_composer() -> Self {
        Self { composer: false }
    }

    /// Whether the Composer column (and 8b-weight SIPs) is present.
    #[must_use]
    pub fn has_composer(&self) -> bool {
        self.composer
    }

    /// Effective concurrent MAC lanes for a layer.
    #[must_use]
    pub fn effective_lanes(&self, sig: &LayerSignals) -> u64 {
        if self.composer {
            if sig.wgt_profiled > 8 {
                COMPOSER_LANES / 2 // two SIPs per >8b weight
            } else {
                COMPOSER_LANES
            }
        } else {
            PLAIN_LANES
        }
    }
}

impl Default for SStripes {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for SStripes {
    fn name(&self) -> &str {
        if self.composer {
            "SStripes"
        } else {
            "SStripes (no composer)"
        }
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        let lanes = self.effective_lanes(sig);
        (sig.macs as f64 * sig.act_eff_clamped() / lanes as f64).ceil() as u64
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        sig.macs as f64 * sig.act_eff_clamped() * em.serial_bit_pj
    }

    fn composer_paired(&self, sig: &LayerSignals) -> bool {
        self.composer && sig.wgt_profiled > 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;
    use crate::accel::Stripes;

    #[test]
    fn never_slower_than_stripes_per_layer() {
        // Per-group width <= profiled width by definition, and lanes are
        // >= half of 1.75x Stripes' — dynamic adaptation plus iso-area
        // lanes keep SStripes at or ahead of Stripes on every layer shape.
        let ss = SStripes::new();
        let st = Stripes::new();
        for (eff, prof, wprof) in [
            (5.0, 10u8, 9u8),
            (1.0, 16, 12),
            (7.9, 8, 8),
            (15.9, 16, 8),
        ] {
            let mut sig = conv16();
            sig.act_eff_sync = eff;
            sig.act_profiled = prof;
            sig.wgt_profiled = wprof;
            assert!(
                ss.compute_cycles(&sig) <= st.compute_cycles(&sig),
                "eff {eff} prof {prof} wprof {wprof}"
            );
        }
    }

    #[test]
    fn composer_pairing_follows_weight_profile() {
        let mut sig = conv16();
        sig.wgt_profiled = 8;
        assert!(!SStripes::new().composer_paired(&sig));
        sig.wgt_profiled = 9;
        assert!(SStripes::new().composer_paired(&sig));
        // No Composer, no pairing regardless of width.
        assert!(!SStripes::without_composer().composer_paired(&sig));
        // The default trait impl reports no pairing for other designs.
        assert!(!Stripes::new().composer_paired(&sig));
    }

    #[test]
    fn wide_weights_halve_lanes() {
        let ss = SStripes::new();
        let mut sig = conv16();
        sig.wgt_profiled = 8;
        let narrow = ss.effective_lanes(&sig);
        sig.wgt_profiled = 9;
        let wide = ss.effective_lanes(&sig);
        assert_eq!(narrow, 2 * wide);
    }

    #[test]
    fn composer_ablation_uses_plain_lanes() {
        let ss = SStripes::without_composer();
        let mut sig = conv16();
        sig.wgt_profiled = 16;
        // Without composer, 16b weights are native: no halving.
        assert_eq!(ss.effective_lanes(&sig), 16 * 256 * 16);
        assert!(!ss.has_composer());
    }

    #[test]
    fn iso_area_lane_ratio_is_1_75x() {
        let sig = conv16(); // wgt_profiled 9 > 8 -> halved
        let mut narrow = sig;
        narrow.wgt_profiled = 7;
        assert_eq!(
            SStripes::new().effective_lanes(&narrow),
            16 * 16 * 28 * 16
        );
        let ratio = SStripes::new().effective_lanes(&narrow) as f64
            / Stripes::new().lanes() as f64;
        assert!((ratio - 1.75).abs() < 1e-12);
    }

    #[test]
    fn cycles_follow_dynamic_width() {
        let ss = SStripes::new();
        let mut sig = conv16();
        sig.wgt_profiled = 8;
        sig.act_eff_sync = 4.0;
        let c4 = ss.compute_cycles(&sig);
        sig.act_eff_sync = 8.0;
        let c8 = ss.compute_cycles(&sig);
        assert!((c8 as f64 / c4 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn paper_example_goal() {
        // Figure 7a's goal: an 8b-profiled group whose values need only
        // 5 bits finishes in 5 cycles, not 8.
        let ss = SStripes::new();
        let st = Stripes::new();
        let mut sig = conv16();
        sig.macs = 65536 * 100;
        sig.act_profiled = 8;
        sig.act_eff_sync = 5.0;
        sig.wgt_profiled = 8;
        let stripes_cycles = st.compute_cycles(&sig); // 8 cycles/group
        let sstripes_cycles = ss.compute_cycles(&sig); // 5 cycles/group, more lanes
        let speedup = stripes_cycles as f64 / sstripes_cycles as f64;
        assert!((speedup - (8.0 / 5.0) * 1.75).abs() < 0.05, "speedup {speedup}");
    }
}
