//! The simulated accelerators and their analytic throughput laws.
//!
//! Every design is normalized to the paper's methodology: a 1 GHz clock
//! and a worst-case peak of 4K 16-bit MACs per cycle for the
//! Stripes-class designs (§5.2: "16 tiles each containing 256 serial
//! processing units whose worst-case peak compute bandwidth is 4K
//! multiplications per cycle").
//!
//! | Design | Law (cycles for a layer of `M` MACs) |
//! |---|---|
//! | DaDianNao* | `M / 4096` |
//! | Stripes | `M · P_layer / 65536` (activation bits in time) |
//! | SStripes | `M · P_group / lanes`, lanes 1.75× via 8b SIPs + Composer |
//! | Bit Fusion | `M / (8192 · (8/Pa₂) · (8/Pw₂))`, precisions pow-2 |
//! | SCNN | `M · nzA · nzW / (1024 · u)` (non-zero products only) |
//! | Loom | `M · Pa · Pw / 2²⁰` (both operands' bits in time) |

mod bitfusion;
mod dadiannao;
mod loom;
mod scnn;
mod sstripes;
mod stripes;
mod tartan;

pub use bitfusion::BitFusion;
pub use dadiannao::DaDianNao;
pub use loom::Loom;
pub use scnn::Scnn;
pub use sstripes::SStripes;
pub use stripes::Stripes;
pub use tartan::Tartan;

use crate::energy::EnergyModel;

/// Per-layer signals an accelerator's throughput law consumes, computed
/// once by the simulation driver from the layer's actual tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSignals {
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Activation container width (bits).
    pub act_container: u8,
    /// Weight container width (bits).
    pub wgt_container: u8,
    /// Per-layer profile-derived activation width (what Stripes and Bit
    /// Fusion provision for).
    pub act_profiled: u8,
    /// Per-layer profile-derived weight width.
    pub wgt_profiled: u8,
    /// Effective per-group activation width at the SIP-array
    /// synchronization granularity (256 concurrently-broadcast values:
    /// 16 window groups of 16 advance in lockstep, so the step takes the
    /// worst group's width).
    pub act_eff_sync: f64,
    /// Effective per-group weight width at the same granularity (for
    /// designs serializing weight bits, §5.3).
    pub wgt_eff_sync: f64,
    /// Fraction of non-zero activations.
    pub act_nonzero: f64,
    /// Fraction of non-zero weights.
    pub wgt_nonzero: f64,
    /// MACs per weight (output-plane size for convolutions, 1 for FC,
    /// the unroll depth for LSTMs) — distinguishes weight-reusing from
    /// weight-streaming layers.
    pub weight_reuse: u64,
}

impl LayerSignals {
    /// The activation width a dynamic per-group design pays per step —
    /// never below one cycle per group (the EOG handshake).
    #[must_use]
    pub fn act_eff_clamped(&self) -> f64 {
        self.act_eff_sync.max(1.0)
    }

    /// The weight width a dynamic per-group design pays per step.
    #[must_use]
    pub fn wgt_eff_clamped(&self) -> f64 {
        self.wgt_eff_sync.max(1.0)
    }
}

/// An accelerator: a compute-throughput and compute-energy law.
///
/// Memory behaviour is shared across designs and handled by the driver in
/// [`crate::sim`]; accelerators only answer "how many cycles and how much
/// datapath energy does this layer's arithmetic cost".
pub trait Accelerator {
    /// Display name used in figures.
    fn name(&self) -> &str;

    /// Datapath cycles for one layer.
    fn compute_cycles(&self, sig: &LayerSignals) -> u64;

    /// Datapath energy for one layer in picojoules.
    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64;

    /// Whether this design pairs SIP columns for the layer (the SStripes
    /// Composer running a >8b-weight layer); `false` for every design
    /// without a Composer. Surfaced so the trace layer can count pairing
    /// events without downcasting.
    fn composer_paired(&self, sig: &LayerSignals) -> bool {
        let _ = sig;
        false
    }
}

/// Rounds a profiled precision up to Bit Fusion's supported power-of-two
/// levels (2, 4, 8, 16).
#[must_use]
pub fn pow2_precision(bits: u8) -> u8 {
    match bits {
        0..=2 => 2,
        3..=4 => 4,
        5..=8 => 8,
        _ => 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A representative 16-bit conv layer signal set for law tests.
    pub(crate) fn conv16() -> LayerSignals {
        LayerSignals {
            macs: 4_096_000,
            act_container: 16,
            wgt_container: 16,
            act_profiled: 10,
            wgt_profiled: 9,
            act_eff_sync: 5.0,
            wgt_eff_sync: 5.5,
            act_nonzero: 0.5,
            wgt_nonzero: 1.0,
            weight_reuse: 1000,
        }
    }

    #[test]
    fn pow2_levels() {
        assert_eq!(pow2_precision(1), 2);
        assert_eq!(pow2_precision(2), 2);
        assert_eq!(pow2_precision(3), 4);
        assert_eq!(pow2_precision(5), 8);
        assert_eq!(pow2_precision(8), 8);
        assert_eq!(pow2_precision(9), 16);
        assert_eq!(pow2_precision(16), 16);
    }

    #[test]
    fn eff_clamps_at_one_cycle_per_group() {
        let mut s = conv16();
        s.act_eff_sync = 0.2;
        assert_eq!(s.act_eff_clamped(), 1.0);
        s.act_eff_sync = 3.7;
        assert_eq!(s.act_eff_clamped(), 3.7);
    }
}
