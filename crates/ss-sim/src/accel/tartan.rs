//! Tartan (Delmas et al., 2017) — the Stripes derivative that also
//! exploits *weight* precision on fully-connected layers.
//!
//! The paper's related-work section notes "ShapeShifter is directly
//! compatible with Tartan and would increase benefits by adjusting
//! precisions per weight group instead. Due to limited space an evaluation
//! of this design is left for future work" (§6) — this module is that
//! evaluation.

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// Tartan: convolutional layers run activation-bit-serially (weights are
/// reused across windows, so activation precision is the lever, exactly
/// as in Stripes); fully-connected and LSTM layers run weight-bit-serially
/// (weights are single-use there, so weight precision is the lever and
/// Stripes' activation-serial scheme gains nothing).
///
/// The baseline uses per-layer profiled precisions;
/// [`Tartan::with_shapeshifter`] adapts per group — the future-work design
/// the paper sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tartan {
    dynamic: bool,
}

/// Same serial-lane budget as Stripes (iso-peak methodology).
const LANES: u64 = 16 * 256 * 16;

impl Tartan {
    /// Baseline Tartan with per-layer profiled precisions.
    #[must_use]
    pub fn new() -> Self {
        Self { dynamic: false }
    }

    /// ShapeShifter-Tartan: per-group dynamic precisions.
    #[must_use]
    pub fn with_shapeshifter() -> Self {
        Self { dynamic: true }
    }

    /// Whether per-group dynamic widths are in use.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// The serial width this layer pays per lane-step: activation width on
    /// weight-reusing (convolutional) layers, weight width on
    /// weight-streaming (FC/LSTM) layers, where per-weight reuse is too
    /// low for the activation-serial scheme to amortize anything.
    #[must_use]
    pub fn serial_width(&self, sig: &LayerSignals) -> f64 {
        let weight_streaming = sig.weight_reuse < 32;
        match (weight_streaming, self.dynamic) {
            (false, false) => f64::from(sig.act_profiled.max(1)),
            (false, true) => sig.act_eff_clamped(),
            (true, false) => f64::from(sig.wgt_profiled.max(1)),
            (true, true) => sig.wgt_eff_clamped(),
        }
    }
}

impl Default for Tartan {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for Tartan {
    fn name(&self) -> &str {
        if self.dynamic {
            "SS-Tartan"
        } else {
            "Tartan"
        }
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        (sig.macs as f64 * self.serial_width(sig) / LANES as f64).ceil() as u64
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        sig.macs as f64 * self.serial_width(sig) * em.serial_bit_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;
    use crate::accel::Stripes;

    fn fc16() -> LayerSignals {
        let mut s = conv16();
        s.weight_reuse = 1; // one MAC per weight
        s
    }

    #[test]
    fn conv_layers_match_stripes() {
        let sig = conv16(); // high weight reuse
        assert_eq!(
            Tartan::new().compute_cycles(&sig),
            Stripes::new().compute_cycles(&sig)
        );
    }

    #[test]
    fn fc_layers_use_weight_precision() {
        let mut sig = fc16();
        sig.wgt_profiled = 6;
        sig.act_profiled = 12;
        let t = Tartan::new();
        // 6-bit weights, not 12-bit activations, set the cycle count.
        assert_eq!(
            t.compute_cycles(&sig),
            (sig.macs * 6).div_ceil(16 * 256 * 16)
        );
        // Stripes pays the activation width instead.
        assert!(Stripes::new().compute_cycles(&sig) == 2 * t.compute_cycles(&sig));
    }

    #[test]
    fn dynamic_variant_uses_group_widths() {
        let mut sig = fc16();
        sig.wgt_profiled = 8;
        sig.wgt_eff_sync = 4.0;
        let base = Tartan::new();
        let ss = Tartan::with_shapeshifter();
        assert!((base.compute_cycles(&sig) as f64 / ss.compute_cycles(&sig) as f64 - 2.0).abs() < 0.01);
        assert_eq!(ss.name(), "SS-Tartan");
    }
}
