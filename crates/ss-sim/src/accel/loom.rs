//! Loom (Sharify et al., DAC 2018) — bit-serial in *both* operands
//! (§5.3).

use crate::accel::{Accelerator, LayerSignals};
use crate::energy::EnergyModel;

/// Loom: processes activation bits and weight bits serially, so a layer at
/// activation width `Pa` and weight width `Pw` takes `Pa × Pw` bit-steps
/// per MAC group — throughput scales as `256 / (Pa·Pw)` around the same
/// worst-case 4K-MAC/cycle peak as the other bit-serial designs.
///
/// The baseline uses per-layer profiled widths for both operands;
/// [`Loom::with_shapeshifter`] applies per-group dynamic widths to both —
/// the "ShapeShifter Loom" of §5.3 (16-bit SIPs, no composition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loom {
    dynamic: bool,
}

/// Bit-step lanes: the same 65536 serial lanes as Stripes, each now
/// needing `Pa × Pw / 16` steps per 16-bit-equivalent MAC.
const BIT_LANES: u64 = 16 * 256 * 16 * 16;

impl Loom {
    /// Baseline Loom with per-layer profiled widths.
    #[must_use]
    pub fn new() -> Self {
        Self { dynamic: false }
    }

    /// ShapeShifter-Loom: per-group dynamic widths for weights and
    /// activations.
    #[must_use]
    pub fn with_shapeshifter() -> Self {
        Self { dynamic: true }
    }

    /// Whether per-group dynamic widths are in use.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    fn widths(&self, sig: &LayerSignals) -> (f64, f64) {
        if self.dynamic {
            (sig.act_eff_clamped(), sig.wgt_eff_clamped())
        } else {
            (
                f64::from(sig.act_profiled.max(1)),
                f64::from(sig.wgt_profiled.max(1)),
            )
        }
    }
}

impl Default for Loom {
    fn default() -> Self {
        Self::new()
    }
}

impl Accelerator for Loom {
    fn name(&self) -> &str {
        if self.dynamic {
            "SS-Loom"
        } else {
            "Loom"
        }
    }

    fn compute_cycles(&self, sig: &LayerSignals) -> u64 {
        let (pa, pw) = self.widths(sig);
        (sig.macs as f64 * pa * pw / BIT_LANES as f64).ceil() as u64
    }

    fn compute_energy_pj(&self, sig: &LayerSignals, em: &EnergyModel) -> f64 {
        let (pa, pw) = self.widths(sig);
        // Energy per MAC scales with total bit-steps, normalized so a
        // 16x16 serial MAC costs the same as Stripes' 16-step one.
        sig.macs as f64 * (pa * pw / 16.0) * em.serial_bit_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::tests::conv16;

    #[test]
    fn worst_case_matches_the_4k_peak() {
        let l = Loom::new();
        let mut sig = conv16();
        sig.act_profiled = 16;
        sig.wgt_profiled = 16;
        assert_eq!(l.compute_cycles(&sig), sig.macs.div_ceil(4096));
    }

    #[test]
    fn both_operand_widths_multiply() {
        let l = Loom::new();
        let mut sig = conv16();
        sig.act_profiled = 8;
        sig.wgt_profiled = 8;
        let c88 = l.compute_cycles(&sig);
        sig.wgt_profiled = 4;
        let c84 = l.compute_cycles(&sig);
        assert_eq!(c88, 2 * c84);
    }

    #[test]
    fn shapeshifter_variant_uses_group_widths() {
        let base = Loom::new();
        let ss = Loom::with_shapeshifter();
        let sig = conv16(); // eff 5.0 x 5.5 vs profiled 10 x 9
        let speedup = base.compute_cycles(&sig) as f64 / ss.compute_cycles(&sig) as f64;
        let expect = (10.0 * 9.0) / (5.0 * 5.5);
        assert!(
            (speedup - expect).abs() / expect < 0.02,
            "speedup {speedup} vs {expect}"
        );
        assert_eq!(ss.name(), "SS-Loom");
    }
}
