#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Analytic-cycle accelerator, memory and energy simulators for the
//! ShapeShifter evaluation (paper §5).
//!
//! The paper models its designs with a custom cycle-accurate simulator,
//! 65 nm synthesis/layout for power and area, and CACTI for SRAMs. None of
//! that toolchain is available here, so — per the substitution policy of
//! `DESIGN.md` §4 — this crate models every design with **explicit analytic
//! throughput laws** plus a DDR4 bandwidth model and an energy model with
//! published-magnitude per-operation constants. Each layer's execution time
//! is `max(compute cycles, memory cycles)` and each figure's quantities are
//! *relative*, which the first-order model preserves: the paper's speedups
//! come from serial-cycle counts proportional to effective widths and from
//! DRAM stalls, both of which are computed exactly here.
//!
//! Simulated designs:
//!
//! * [`accel::DaDianNao`] — the bit-parallel baseline (`DaDianNao*`).
//! * [`accel::Stripes`] — activation-bit-serial, per-layer profiled widths.
//! * [`accel::SStripes`] — the paper's second contribution: Stripes with
//!   per-group dynamic widths (EOG early termination) and the Composer.
//! * [`accel::BitFusion`] — the spatial-first fused-PE comparison point.
//! * [`accel::Scnn`] — the sparse accelerator of §5.1.3.
//! * [`accel::Loom`] — weight-and-activation bit-serial (§5.3).
//!
//! plus [`mem`] (DDR4 + on-chip buffer/tiling model), [`energy`], the
//! [`sim`] driver that binds a model, an accelerator and a compression
//! scheme into per-layer and whole-network results, and [`fusion`] (layer
//! fusion, Figure 11).

pub mod accel;
pub mod area;
pub mod energy;
mod error;
pub mod fusion;
pub mod mem;
pub mod sip;
pub mod tile;
pub mod sim;
pub mod workload;

pub use accel::Accelerator;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::SimError;
pub use mem::{BufferConfig, DramConfig};
pub use sim::{stall_cycles, LayerResult, RunResult, SimConfig};
pub use workload::TensorSource;
