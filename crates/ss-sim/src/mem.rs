//! Off-chip DRAM and on-chip buffer models.

/// A DDR4 off-chip memory configuration.
///
/// The paper reports results with DDR4-2133, DDR4-2400 and DDR4-3200
/// (Figure 9), all dual-channel for the Stripes-class comparisons (§5.2).
/// Only sustained bandwidth matters for the sequential streaming access
/// pattern ShapeShifter guarantees (§3 "Memory Layout and Access
/// Strategy"), so the model is a bandwidth pipe.
///
/// # Examples
///
/// ```
/// use ss_sim::DramConfig;
///
/// let dram = DramConfig::DDR4_3200;
/// // Dual channel x 8 bytes x 3200 MT/s = 51.2 GB/s.
/// assert_eq!(dram.bandwidth_bytes_per_sec(), 51_200_000_000);
/// // ~410 bits per 1 GHz core cycle.
/// assert_eq!(dram.bits_per_cycle(1_000_000_000), 409.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Mega-transfers per second (e.g. 3200 for DDR4-3200).
    mts: u64,
    /// Independent 64-bit channels.
    channels: u64,
}

impl DramConfig {
    /// Dual-channel DDR4-2133 (the "lower-end" node of Figure 9).
    pub const DDR4_2133: DramConfig = DramConfig {
        mts: 2133,
        channels: 2,
    };
    /// Dual-channel DDR4-2400 (the "halfway" node).
    pub const DDR4_2400: DramConfig = DramConfig {
        mts: 2400,
        channels: 2,
    };
    /// Dual-channel DDR4-3200 (the "higher-end" node).
    pub const DDR4_3200: DramConfig = DramConfig {
        mts: 3200,
        channels: 2,
    };

    /// Creates a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(mts: u64, channels: u64) -> Self {
        assert!(mts > 0, "transfer rate must be non-zero");
        assert!(channels > 0, "need at least one channel");
        Self { mts, channels }
    }

    /// Transfer rate in MT/s.
    #[must_use]
    pub fn mts(&self) -> u64 {
        self.mts
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Sustained bandwidth in bytes per second (8 bytes per transfer per
    /// channel).
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> u64 {
        self.mts * 1_000_000 * 8 * self.channels
    }

    /// Bits delivered per core clock cycle.
    #[must_use]
    pub fn bits_per_cycle(&self, clock_hz: u64) -> f64 {
        (self.bandwidth_bytes_per_sec() as f64 * 8.0) / clock_hz as f64
    }

    /// Core cycles to transfer `bits` of traffic.
    #[must_use]
    pub fn cycles_for_bits(&self, bits: u64, clock_hz: u64) -> u64 {
        (bits as f64 / self.bits_per_cycle(clock_hz)).ceil() as u64
    }

    /// A short display label ("DDR4-3200").
    #[must_use]
    pub fn label(&self) -> String {
        format!("DDR4-{}", self.mts)
    }
}

/// On-chip activation and weight buffer sizes.
///
/// The paper sizes them "so that for most layers it is possible to read
/// each value from off-chip memory at most once per layer" (Siu et al.):
/// 4 MB + 4 MB for 8-bit models, doubled for 16-bit (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferConfig {
    /// Activation buffer capacity in bytes.
    pub act_bytes: u64,
    /// Weight buffer capacity in bytes.
    pub wgt_bytes: u64,
}

impl BufferConfig {
    /// The paper's configuration for 8-bit models: 4 MB + 4 MB.
    #[must_use]
    pub fn paper_8b() -> Self {
        Self {
            act_bytes: 4 << 20,
            wgt_bytes: 4 << 20,
        }
    }

    /// The paper's configuration for 16-bit models: 8 MB + 8 MB.
    #[must_use]
    pub fn paper_16b() -> Self {
        Self {
            act_bytes: 8 << 20,
            wgt_bytes: 8 << 20,
        }
    }

    /// Symmetric buffers of `bytes` each (the Figure 15 sweep).
    #[must_use]
    pub fn symmetric(bytes: u64) -> Self {
        Self {
            act_bytes: bytes,
            wgt_bytes: bytes,
        }
    }

    /// Configuration sized for the given container width (the paper's
    /// rule: 4 MB each at 8 bits, scaled with the container).
    #[must_use]
    pub fn for_container_bits(bits: u8) -> Self {
        let each = (4u64 << 20) * u64::from(bits) / 8;
        Self {
            act_bytes: each,
            wgt_bytes: each,
        }
    }
}

/// Off-chip access pattern for one layer under a tiled dataflow.
///
/// When both operands fit on-chip, each is read once. Otherwise the layer
/// is tiled and one operand streams multiple times; the model picks the
/// cheaper orientation, exactly the choice a dataflow compiler makes:
///
/// * weight-stationary: weights read once, activations re-read once per
///   weight-buffer-sized chunk;
/// * activation-stationary: activations read once, weights re-read once
///   per activation-buffer-sized chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerPasses {
    /// How many times the input activations stream from off-chip.
    pub act_reads: u64,
    /// How many times the weights stream from off-chip.
    pub wgt_reads: u64,
}

impl LayerPasses {
    /// Single-pass access (the large-buffer regime).
    #[must_use]
    pub fn single() -> Self {
        Self {
            act_reads: 1,
            wgt_reads: 1,
        }
    }

    /// Computes the pass counts for a layer whose uncompressed on-chip
    /// footprints are `act_bits` and `wgt_bits` (on-chip data is stored
    /// decompressed; the buffers bound the working set).
    ///
    /// A single pass suffices whenever *either* operand fits on-chip: the
    /// resident operand is reused against the other, which merely streams
    /// through once (the Siu et al. criterion). Only when neither fits
    /// must one operand re-stream once per resident chunk of the other;
    /// the model picks the cheaper orientation, exactly the choice a
    /// dataflow compiler makes.
    #[must_use]
    pub fn for_layer(buffers: &BufferConfig, act_bits: u64, wgt_bits: u64) -> Self {
        Self::for_layer_with_onchip_ratio(buffers, act_bits, wgt_bits, 1.0, 1.0)
    }

    /// Pass counts when the *on-chip* copies are also held compressed —
    /// the "on-chip storage" half of the paper's §3 title ("reducing
    /// off- and on-chip storage and communication"), evaluated as an
    /// extension. `act_ratio`/`wgt_ratio` are the compressed/uncompressed
    /// footprint ratios (1.0 = stored raw), so compression effectively
    /// enlarges the buffers and defers the tiling cliff.
    ///
    /// # Panics
    ///
    /// Panics unless both ratios are in `(0, 1]`.
    #[must_use]
    pub fn for_layer_with_onchip_ratio(
        buffers: &BufferConfig,
        act_bits: u64,
        wgt_bits: u64,
        act_ratio: f64,
        wgt_ratio: f64,
    ) -> Self {
        assert!(
            act_ratio > 0.0 && act_ratio <= 1.0 && wgt_ratio > 0.0 && wgt_ratio <= 1.0,
            "on-chip compression ratios must be in (0, 1]"
        );
        let act_cap = (buffers.act_bytes as f64 * 8.0 / act_ratio) as u64;
        let wgt_cap = (buffers.wgt_bytes as f64 * 8.0 / wgt_ratio) as u64;
        if act_bits <= act_cap || wgt_bits <= wgt_cap {
            return Self::single();
        }
        // Weight-stationary: acts re-read once per resident weight chunk.
        let ws = Self {
            act_reads: wgt_bits.div_ceil(wgt_cap).max(1),
            wgt_reads: 1,
        };
        // Activation-stationary: weights re-read per activation chunk.
        let as_ = Self {
            act_reads: 1,
            wgt_reads: act_bits.div_ceil(act_cap).max(1),
        };
        let ws_traffic = ws.act_reads * act_bits + ws.wgt_reads * wgt_bits;
        let as_traffic = as_.act_reads * act_bits + as_.wgt_reads * wgt_bits;
        if ws_traffic <= as_traffic {
            ws
        } else {
            as_
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_bandwidths() {
        assert_eq!(
            DramConfig::DDR4_2133.bandwidth_bytes_per_sec(),
            34_128_000_000
        );
        assert_eq!(
            DramConfig::DDR4_2400.bandwidth_bytes_per_sec(),
            38_400_000_000
        );
        assert!(
            DramConfig::DDR4_3200.bits_per_cycle(1_000_000_000) > 400.0
        );
    }

    #[test]
    fn cycles_for_bits_rounds_up() {
        let d = DramConfig::new(1000, 1); // 8 GB/s -> 64 bits/cycle at 1 GHz
        assert_eq!(d.cycles_for_bits(64, 1_000_000_000), 1);
        assert_eq!(d.cycles_for_bits(65, 1_000_000_000), 2);
        assert_eq!(d.cycles_for_bits(0, 1_000_000_000), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(DramConfig::DDR4_3200.label(), "DDR4-3200");
    }

    #[test]
    fn buffer_presets() {
        assert_eq!(BufferConfig::paper_8b().act_bytes, 4 << 20);
        assert_eq!(BufferConfig::paper_16b().wgt_bytes, 8 << 20);
        assert_eq!(
            BufferConfig::for_container_bits(16).act_bytes,
            BufferConfig::paper_16b().act_bytes
        );
        assert_eq!(
            BufferConfig::for_container_bits(8).act_bytes,
            BufferConfig::paper_8b().act_bytes
        );
    }

    #[test]
    fn single_pass_when_everything_fits() {
        let b = BufferConfig::symmetric(1 << 20);
        let p = LayerPasses::for_layer(&b, 1 << 20, 1 << 20);
        assert_eq!(p, LayerPasses::single());
    }

    #[test]
    fn one_resident_operand_means_single_pass() {
        let b = BufferConfig::symmetric(1024); // 8192 bits each
        // Weights oversized but activations resident: weights stream once.
        assert_eq!(LayerPasses::for_layer(&b, 100, 32_768), LayerPasses::single());
        // Mirror case.
        assert_eq!(LayerPasses::for_layer(&b, 32_768, 100), LayerPasses::single());
    }

    #[test]
    fn neither_fits_forces_rereads_of_the_smaller() {
        let b = BufferConfig::symmetric(1024); // 8192-bit caps
        // acts 16384, wgts 32768: WS re-reads acts x4 (traffic 98304);
        // AS re-reads wgts x2 (traffic 81920) -> AS wins.
        let p = LayerPasses::for_layer(&b, 16_384, 32_768);
        assert_eq!(p.act_reads, 1);
        assert_eq!(p.wgt_reads, 2);
    }

    #[test]
    fn picks_the_cheaper_orientation() {
        let b = BufferConfig::symmetric(1024); // 8192-bit caps
        // Both oversized: acts 16384 bits, weights 81920 bits.
        // WS: acts x10 + weights x1 = 245760; AS: acts x1 + weights x2 =
        // 180224 -> activation-stationary wins.
        let p = LayerPasses::for_layer(&b, 16_384, 81_920);
        assert_eq!(p.act_reads, 1);
        assert_eq!(p.wgt_reads, 2);
    }

    #[test]
    fn onchip_compression_defers_the_tiling_cliff() {
        let b = BufferConfig::symmetric(1024); // 8192-bit caps
        // Both operands at 12288 bits: raw storage tiles, 0.6-ratio
        // compressed storage fits both.
        let raw = LayerPasses::for_layer(&b, 12_288, 12_288);
        assert_ne!(raw, LayerPasses::single());
        let packed = LayerPasses::for_layer_with_onchip_ratio(&b, 12_288, 12_288, 0.6, 0.6);
        assert_eq!(packed, LayerPasses::single());
    }

    #[test]
    #[should_panic(expected = "ratios must be in")]
    fn rejects_expanding_onchip_ratio() {
        let b = BufferConfig::symmetric(1024);
        let _ = LayerPasses::for_layer_with_onchip_ratio(&b, 1, 1, 1.5, 1.0);
    }

    #[test]
    fn shrinking_buffers_increase_traffic_monotonically() {
        // The premise of Figure 15.
        let act_bits = 50_000_000;
        let wgt_bits = 80_000_000;
        let mut last = 0u64;
        for mb in [16u64, 8, 4, 2, 1] {
            let b = BufferConfig::symmetric(mb << 20);
            let p = LayerPasses::for_layer(&b, act_bits, wgt_bits);
            let traffic = p.act_reads * act_bits + p.wgt_reads * wgt_bits;
            assert!(traffic >= last, "buffer {mb} MB");
            last = traffic;
        }
    }
}
