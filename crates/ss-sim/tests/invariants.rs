//! Cross-accelerator invariants over real zoo workloads: orderings the
//! paper's designs must respect on every model, and equivalence of the
//! caching wrapper.

use ss_core::scheme::{Base, ProfileScheme, ShapeShifterScheme};
use ss_models::zoo;
use ss_sim::accel::{BitFusion, DaDianNao, Loom, SStripes, Scnn, Stripes, Tartan};
use ss_sim::sim::{simulate, SimConfig};
use ss_sim::workload::Cached;
use ss_sim::{DramConfig, TensorSource};

fn nets() -> Vec<ss_models::Network> {
    vec![
        zoo::alexnet().scaled_down(8),
        zoo::googlenet().scaled_down(8),
        zoo::mobilenet().scaled_down(8),
        zoo::bilstm().scaled_down(2),
    ]
}

#[test]
fn cached_wrapper_is_transparent() {
    let net = zoo::alexnet().scaled_down(8);
    let cfg = SimConfig::default();
    let scheme = ShapeShifterScheme::default();
    let direct = simulate(&net, &Stripes::new(), &scheme, &cfg, 3);
    let cached = Cached::new(&net);
    // Run twice through the cache: second run must hit and still match.
    let first = simulate(&cached, &Stripes::new(), &scheme, &cfg, 3);
    let second = simulate(&cached, &Stripes::new(), &scheme, &cfg, 3);
    assert_eq!(direct, first);
    assert_eq!(direct, second);
}

#[test]
fn bit_serial_designs_never_beat_their_width_budget() {
    // At worst-case widths every bit-serial design converges to the same
    // 4K-MAC/cycle peak as DaDianNao*, so none can have *fewer* compute
    // cycles than DaDianNao on any layer once widths hit the container.
    let cfg = SimConfig::with_dram(DramConfig::new(100_000, 8)); // no stalls
    for net in nets() {
        let dad = simulate(&net, &DaDianNao::new(), &Base, &cfg, 1);
        let stripes = simulate(&net, &Stripes::new(), &Base, &cfg, 1);
        let loom = simulate(&net, &Loom::new(), &Base, &cfg, 1);
        for ((d, s), l) in dad.layers.iter().zip(&stripes.layers).zip(&loom.layers) {
            // Profiled widths are < 16, so serial designs are faster.
            assert!(
                s.compute_cycles <= d.compute_cycles,
                "{}: stripes {} vs dadiannao {}",
                net.name(),
                s.compute_cycles,
                d.compute_cycles
            );
            assert!(l.compute_cycles <= d.compute_cycles);
        }
    }
}

#[test]
fn sstripes_dominates_stripes_and_sstartan_dominates_tartan() {
    let cfg = SimConfig::default();
    let scheme = ShapeShifterScheme::default();
    for net in nets() {
        let cached = Cached::new(&net);
        let stripes = simulate(&cached, &Stripes::new(), &ProfileScheme, &cfg, 1);
        let sstripes = simulate(&cached, &SStripes::new(), &scheme, &cfg, 1);
        assert!(
            sstripes.speedup_over(&stripes) >= 1.0,
            "{}",
            net.name()
        );
        let tartan = simulate(&cached, &Tartan::new(), &ProfileScheme, &cfg, 1);
        let sstartan = simulate(&cached, &Tartan::with_shapeshifter(), &scheme, &cfg, 1);
        assert!(
            sstartan.speedup_over(&tartan) >= 1.0,
            "{}",
            net.name()
        );
        // Tartan never loses to Stripes (it only changes FC behaviour,
        // always for the better when weight profiles are narrower than
        // the full container).
        assert!(tartan.total_cycles() <= stripes.total_cycles(), "{}", net.name());
    }
}

#[test]
fn scnn_gains_track_sparsity() {
    // The denser the model, the smaller SCNN's edge over the dense
    // baseline at equal traffic.
    let cfg = SimConfig::with_dram(DramConfig::new(100_000, 8));
    let dense = zoo::alexnet().scaled_down(8);
    let sparse = zoo::alexnet_s().scaled_down(8);
    let cycles = |net: &ss_models::Network| {
        simulate(net, &Scnn::new(), &Base, &cfg, 1).total_cycles()
    };
    assert!(cycles(&sparse) < cycles(&dense));
}

#[test]
fn bitfusion_prefers_low_precision_profiles() {
    // Layers whose 16b profile exceeds 8 bits fall off Bit Fusion's
    // spatial cliff (per-operand 2x temporal decomposition); the same
    // layer quantized to 8 bits recovers the fused rate.
    let cfg = SimConfig::with_dram(DramConfig::new(100_000, 8));
    // Full scale: the profiled widths of a down-scaled model shrink with
    // its sample count and would all fit 8 bits.
    let master = zoo::googlenet_s();
    let quant = ss_quant::QuantizedNetwork::new(master.clone(), ss_quant::QuantMethod::RangeAware);
    let m16 = simulate(&master, &BitFusion::new(), &Base, &cfg, 1);
    let m8 = simulate(&quant, &BitFusion::new(), &Base, &cfg, 1);
    let mut compared = 0;
    for (i, (l16, l8)) in m16.layers.iter().zip(&m8.layers).enumerate() {
        // A >8b activation profile forces the 2x temporal decomposition
        // on the activation operand.
        if TensorSource::profiled_act_width(&master, i) > 8 {
            compared += 1;
            assert!(
                // Allow one cycle of div_ceil slack.
                l16.compute_cycles + 1 >= 2 * l8.compute_cycles,
                "layer {i}: 16b {} vs 8b {}",
                l16.compute_cycles,
                l8.compute_cycles
            );
        } else {
            assert!(l16.compute_cycles >= l8.compute_cycles, "layer {i}");
        }
    }
    assert!(compared > 0, "no wide layers to compare");
}

#[test]
fn energy_components_are_all_accounted() {
    let net = zoo::vgg_s().scaled_down(8);
    let cfg = SimConfig::default();
    let run = simulate(&net, &SStripes::new(), &ShapeShifterScheme::default(), &cfg, 1);
    let e = run.total_energy();
    assert!(e.dram_pj > 0.0);
    assert!(e.sram_pj > 0.0);
    assert!(e.compute_pj > 0.0);
    let sum = run
        .layers
        .iter()
        .map(|l| l.energy.total_pj())
        .sum::<f64>();
    assert!((sum - e.total_pj()).abs() < 1e-6 * sum.max(1.0));
}

#[test]
fn traffic_is_scheme_dependent_but_compute_is_not() {
    let net = zoo::resnet50().scaled_down(8);
    let cfg = SimConfig::default();
    let cached = Cached::new(&net);
    let a = simulate(&cached, &Stripes::new(), &Base, &cfg, 1);
    let b = simulate(&cached, &Stripes::new(), &ShapeShifterScheme::default(), &cfg, 1);
    for (x, y) in a.layers.iter().zip(&b.layers) {
        assert_eq!(x.compute_cycles, y.compute_cycles);
        assert!(y.traffic_bits <= x.traffic_bits);
        assert_eq!(x.base_traffic_bits, y.base_traffic_bits);
    }
}
