//! End-to-end functional check: a convolution computed through the
//! bit-serial SIP datapath with per-group dynamic widths (the SStripes
//! path) produces bit-identical outputs to a direct integer reference —
//! the paper's "SStripes does not affect accuracy, and produces the same
//! numerical result as Stripes" (§4), demonstrated on an actual layer
//! computation rather than a single dot product.

use ss_models::ValueGen;
use ss_sim::sip::{compose, SerialIp, SIP_LANES};
use ss_tensor::{FixedType, Tensor};

/// A small convolution problem: `out_ch` filters of `in_ch x k x k` over
/// an `in_ch x h x w` input, unit stride, no padding.
struct ConvProblem {
    out_ch: usize,
    in_ch: usize,
    k: usize,
    h: usize,
    w: usize,
    weights: Tensor,
    acts: Tensor,
}

impl ConvProblem {
    fn new(seed: u64) -> Self {
        let (out_ch, in_ch, k, h, w) = (4, 8, 3, 6, 6);
        let weights = ValueGen::from_width_target(4.5, 0.1, FixedType::I16)
            .tensor_flat(out_ch * in_ch * k * k, seed);
        let acts = ValueGen::from_width_target(5.0, 0.5, FixedType::U16)
            .tensor_flat(in_ch * h * w, seed + 1);
        Self {
            out_ch,
            in_ch,
            k,
            h,
            w,
            weights,
            acts,
        }
    }

    fn act(&self, c: usize, y: usize, x: usize) -> i32 {
        self.acts.values()[(c * self.h + y) * self.w + x]
    }

    fn weight(&self, f: usize, c: usize, dy: usize, dx: usize) -> i32 {
        self.weights.values()[((f * self.in_ch + c) * self.k + dy) * self.k + dx]
    }

    fn out_hw(&self) -> usize {
        self.h - self.k + 1
    }

    /// Direct integer reference.
    fn reference(&self) -> Vec<i64> {
        let o = self.out_hw();
        let mut out = vec![0i64; self.out_ch * o * o];
        for f in 0..self.out_ch {
            for y in 0..o {
                for x in 0..o {
                    let mut acc = 0i64;
                    for c in 0..self.in_ch {
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                acc += i64::from(self.weight(f, c, dy, dx))
                                    * i64::from(self.act(c, y + dy, x + dx));
                            }
                        }
                    }
                    out[(f * o + y) * o + x] = acc;
                }
            }
        }
        out
    }

    /// The receptive-field values for one output position, flattened in
    /// the same order as the filter weights.
    fn window(&self, y: usize, x: usize) -> Vec<i32> {
        let mut v = Vec::with_capacity(self.in_ch * self.k * self.k);
        for c in 0..self.in_ch {
            for dy in 0..self.k {
                for dx in 0..self.k {
                    v.push(self.act(c, y + dy, x + dx));
                }
            }
        }
        v
    }

    /// The same convolution evaluated through bit-serial SIPs: each
    /// output accumulates over groups of up to [`SIP_LANES`] lanes, each
    /// group processed at its detected width. Also counts the serial
    /// cycles spent.
    fn bit_serial(&self, use_composer: bool) -> (Vec<i64>, u64) {
        let o = self.out_hw();
        let mut out = vec![0i64; self.out_ch * o * o];
        let mut cycles = 0u64;
        for f in 0..self.out_ch {
            let filter: Vec<i32> = (0..self.in_ch)
                .flat_map(|c| {
                    (0..self.k).flat_map(move |dy| (0..self.k).map(move |dx| (c, dy, dx)))
                })
                .map(|(c, dy, dx)| self.weight(f, c, dy, dx))
                .collect();
            for y in 0..o {
                for x in 0..o {
                    let window = self.window(y, x);
                    let mut acc = 0i64;
                    for (wchunk, achunk) in
                        filter.chunks(SIP_LANES).zip(window.chunks(SIP_LANES))
                    {
                        let bits = ss_tensor::width::group_width(
                            achunk,
                            ss_tensor::Signedness::Unsigned,
                        );
                        cycles += u64::from(bits);
                        if use_composer {
                            acc += compose(wchunk, achunk, bits);
                        } else {
                            let mut sip = SerialIp::new(wchunk);
                            sip.process_group(achunk, bits);
                            acc += sip.accumulator();
                        }
                    }
                    out[(f * o + y) * o + x] = acc;
                }
            }
        }
        (out, cycles)
    }
}

#[test]
fn bit_serial_conv_matches_reference_exactly() {
    for seed in [1u64, 2, 3] {
        let p = ConvProblem::new(seed);
        let reference = p.reference();
        let (serial, _) = p.bit_serial(false);
        assert_eq!(serial, reference, "seed {seed}");
    }
}

#[test]
fn composer_conv_matches_reference_exactly() {
    // 16b weights split across paired 8b SIPs and re-composed: still
    // bit-identical.
    for seed in [4u64, 5] {
        let p = ConvProblem::new(seed);
        assert_eq!(p.bit_serial(true).0, p.reference(), "seed {seed}");
    }
}

#[test]
fn dynamic_widths_save_cycles_over_worst_case() {
    let p = ConvProblem::new(9);
    let (_, dynamic_cycles) = p.bit_serial(false);
    // Worst case: every group at the full 16 bits.
    let o = p.out_hw();
    let groups_per_window = (p.in_ch * p.k * p.k).div_ceil(SIP_LANES) as u64;
    let worst = (p.out_ch * o * o) as u64 * groups_per_window * 16;
    assert!(
        (dynamic_cycles as f64) < 0.6 * worst as f64,
        "dynamic {dynamic_cycles} vs worst {worst}"
    );
}
