//! Stall-accounting audit: cross-checks the driver's stall arithmetic
//! against a naive single-loop reference model, and the ss-trace stall
//! counters against the per-layer results.
//!
//! Background: `simulate` and `RunResult::with_dram` each derived the
//! stall as `memory.saturating_sub(compute)` at two independent sites,
//! and `LayerResult::stall_cycles` as `max(c, m) - c`. The three are
//! algebraically identical under the overlap model (`wall = max(c, m)`),
//! but nothing enforced it — this test is that enforcement, and the
//! shared `ss_sim::stall_cycles` helper is the single definition they now
//! all call.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ss_sim::accel::{DaDianNao, SStripes};
use ss_sim::sim::simulate;
use ss_sim::{stall_cycles, DramConfig, LayerResult, RunResult, SimConfig};
use ss_core::scheme::{Base, ShapeShifterScheme};
use ss_trace::{Counter, TraceRecorder};

/// The naive reference: walk the layers once, recomputing every stall
/// quantity from first principles (`wall = max(c, m)`).
struct Reference {
    per_layer_stall: Vec<u64>,
    total_stall: u64,
    total_wall: u64,
    total_compute: u64,
}

fn reference(run: &RunResult) -> Reference {
    let mut per_layer_stall = Vec::new();
    let mut total_stall = 0u64;
    let mut total_wall = 0u64;
    let mut total_compute = 0u64;
    for l in &run.layers {
        let wall = if l.compute_cycles > l.memory_cycles {
            l.compute_cycles
        } else {
            l.memory_cycles
        };
        let stall = wall - l.compute_cycles;
        per_layer_stall.push(stall);
        total_stall += stall;
        total_wall += wall;
        total_compute += l.compute_cycles;
    }
    Reference {
        per_layer_stall,
        total_stall,
        total_wall,
        total_compute,
    }
}

fn check_against_reference(run: &RunResult, cfg: &SimConfig) {
    let r = reference(run);
    for (l, &stall_ref) in run.layers.iter().zip(&r.per_layer_stall) {
        // All three formulations agree per layer.
        assert_eq!(l.stall_cycles(), stall_ref, "layer {}", l.name);
        assert_eq!(
            stall_cycles(l.compute_cycles, l.memory_cycles),
            stall_ref,
            "layer {}",
            l.name
        );
        // Idle energy is priced from the stall exactly once.
        let expected_idle = stall_ref as f64 * cfg.energy.idle_pj_per_cycle;
        assert!(
            (l.energy.idle_pj - expected_idle).abs() <= expected_idle.abs() * 1e-12,
            "layer {}: idle {} vs {}",
            l.name,
            l.energy.idle_pj,
            expected_idle
        );
    }
    // No double counting across tile/layer boundaries: the run's wall
    // clock decomposes exactly into compute plus stall.
    assert_eq!(run.total_cycles(), r.total_wall);
    assert_eq!(run.total_cycles(), r.total_compute + r.total_stall);
    assert_eq!(
        r.total_stall,
        run.layers.iter().map(LayerResult::stall_cycles).sum::<u64>()
    );
}

// One test function: the trace half installs the process-wide recorder,
// so the untraced half must run before it in the same sequential body.
#[test]
fn stall_accounting_matches_naive_reference_model() {
    let net = ss_models::zoo::alexnet().scaled_down(8);

    // Memory-starved: every layer stalls.
    let slow = SimConfig::with_dram(DramConfig::new(100, 1));
    let starved = simulate(&net, &DaDianNao::new(), &Base, &slow, 1);
    assert!(starved.layers.iter().any(|l| l.stall_cycles() > 0));
    check_against_reference(&starved, &slow);

    // Default DRAM: a mix of compute- and memory-bound layers.
    let cfg = SimConfig::default();
    let mixed = simulate(&net, &SStripes::new(), &ShapeShifterScheme::default(), &cfg, 1);
    check_against_reference(&mixed, &cfg);

    // Repricing under a different DRAM uses the same stall definition:
    // the repriced run must satisfy the reference too, and match a fresh
    // simulation exactly.
    let repriced = mixed.with_dram(DramConfig::DDR4_2133, &SimConfig::with_dram(DramConfig::DDR4_2133));
    check_against_reference(&repriced, &SimConfig::with_dram(DramConfig::DDR4_2133));
    let direct = simulate(
        &net,
        &SStripes::new(),
        &ShapeShifterScheme::default(),
        &SimConfig::with_dram(DramConfig::DDR4_2133),
        1,
    );
    assert_eq!(repriced, direct);

    // --- trace counters agree with the per-layer results ---
    assert!(ss_trace::install(TraceRecorder::new()));
    let rec = ss_trace::installed().expect("just installed");
    let stall0 = rec.counter(Counter::SimStallCycles);
    let compute0 = rec.counter(Counter::SimComputeCycles);
    let layers0 = rec.counter(Counter::SimLayers);
    let traced = simulate(&net, &DaDianNao::new(), &Base, &slow, 1);
    let r = reference(&traced);
    assert_eq!(rec.counter(Counter::SimStallCycles) - stall0, r.total_stall);
    assert_eq!(
        rec.counter(Counter::SimComputeCycles) - compute0,
        r.total_compute
    );
    assert_eq!(
        rec.counter(Counter::SimLayers) - layers0,
        traced.layers.len() as u64
    );
    // Layer records carry the same stalls.
    let snap = rec.snapshot();
    let recorded_stall: u64 = snap
        .layers
        .iter()
        .filter(|l| l.accel == traced.accel && l.scheme == traced.scheme)
        .map(|l| l.stall_cycles)
        .sum();
    assert_eq!(recorded_stall, r.total_stall);
}
