//! Property tests on the accelerator throughput laws: the monotonicities
//! every design must respect, over arbitrary layer signal combinations.

use proptest::prelude::*;
use ss_sim::accel::{
    Accelerator, BitFusion, DaDianNao, LayerSignals, Loom, SStripes, Scnn, Stripes, Tartan,
};
use ss_sim::EnergyModel;

fn arb_signals() -> impl Strategy<Value = LayerSignals> {
    (
        1u64..10_000_000,
        1u8..=16,
        1u8..=16,
        0.1f64..16.0,
        0.1f64..16.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        1u64..100_000,
    )
        .prop_map(
            |(macs, act_p, wgt_p, act_e, wgt_e, act_nz, wgt_nz, reuse)| LayerSignals {
                macs,
                act_container: 16,
                wgt_container: 16,
                act_profiled: act_p,
                wgt_profiled: wgt_p,
                // Effective widths never exceed the profiled width.
                act_eff_sync: act_e.min(f64::from(act_p)),
                wgt_eff_sync: wgt_e.min(f64::from(wgt_p)),
                act_nonzero: act_nz,
                wgt_nonzero: wgt_nz,
                weight_reuse: reuse,
            },
        )
}

fn all_accels() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(DaDianNao::new()),
        Box::new(Stripes::new()),
        Box::new(SStripes::new()),
        Box::new(SStripes::without_composer()),
        Box::new(BitFusion::new()),
        Box::new(Scnn::new()),
        Box::new(Loom::new()),
        Box::new(Loom::with_shapeshifter()),
        Box::new(Tartan::new()),
        Box::new(Tartan::with_shapeshifter()),
    ]
}

proptest! {
    #[test]
    fn cycles_are_monotone_in_macs(sig in arb_signals()) {
        let mut bigger = sig;
        bigger.macs = sig.macs.saturating_mul(2);
        for accel in all_accels() {
            prop_assert!(
                accel.compute_cycles(&bigger) >= accel.compute_cycles(&sig),
                "{}",
                accel.name()
            );
        }
    }

    #[test]
    fn cycles_and_energy_are_positive(sig in arb_signals()) {
        let em = EnergyModel::default();
        for accel in all_accels() {
            prop_assert!(accel.compute_cycles(&sig) >= 1, "{}", accel.name());
            prop_assert!(accel.compute_energy_pj(&sig, &em) > 0.0, "{}", accel.name());
        }
    }

    #[test]
    fn serial_designs_are_monotone_in_their_width(sig in arb_signals()) {
        let mut wider = sig;
        wider.act_profiled = (sig.act_profiled + 1).min(16);
        wider.act_eff_sync = (sig.act_eff_sync + 1.0).min(f64::from(wider.act_profiled));
        prop_assert!(
            Stripes::new().compute_cycles(&wider) >= Stripes::new().compute_cycles(&sig)
        );
        prop_assert!(
            SStripes::new().compute_cycles(&wider) >= SStripes::new().compute_cycles(&sig)
        );
    }

    #[test]
    fn dynamic_never_loses_to_profiled_widths(sig in arb_signals()) {
        // eff <= profiled is enforced by construction above; every dynamic
        // design must therefore be at least as fast as its profiled twin
        // at equal lane counts.
        prop_assert!(
            Loom::with_shapeshifter().compute_cycles(&sig)
                <= Loom::new().compute_cycles(&sig)
        );
        prop_assert!(
            Tartan::with_shapeshifter().compute_cycles(&sig)
                <= Tartan::new().compute_cycles(&sig)
        );
        prop_assert!(
            SStripes::without_composer().compute_cycles(&sig)
                <= Stripes::new().compute_cycles(&sig)
        );
    }

    #[test]
    fn scnn_is_monotone_in_density(sig in arb_signals()) {
        let mut denser = sig;
        denser.act_nonzero = (sig.act_nonzero + 0.1).min(1.0);
        prop_assert!(
            Scnn::new().compute_cycles(&denser) >= Scnn::new().compute_cycles(&sig)
        );
    }

    #[test]
    fn bitfusion_is_monotone_in_pow2_precision(sig in arb_signals()) {
        let mut wider = sig;
        wider.act_profiled = 16;
        wider.wgt_profiled = 16;
        let accel = BitFusion::new();
        prop_assert!(accel.compute_cycles(&wider) >= accel.compute_cycles(&sig));
    }
}
