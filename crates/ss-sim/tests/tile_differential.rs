//! Differential test for the tiled broadcast schedule: a brute-force
//! per-group width walk — written independently, with flat indexing, an
//! explicit filter-block loop and leading-zeros width math — must agree
//! cycle-for-cycle with `tile::tile_cycles` under both SStripes (dynamic
//! EOG widths) and Stripes (fixed profile), across randomized geometries
//! that stress every raggedness: odd `in_ch` not divisible by 16, `out_w`
//! not divisible by TILE_ROWS, 1×1 and 7×7 kernels, partial filter blocks.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_models::ValueGen;
use ss_sim::tile::{sstripes_step, stripes_step, tile_cycles, ConvGeometry, SIP_CHANNELS, TILE_ROWS};
use ss_tensor::{FixedType, Tensor};

/// Per-step width paid by the brute-force walk: `None` = SStripes (worst
/// detected width among the concurrent row groups), `Some(p)` = Stripes.
fn brute_force_cycles(geom: &ConvGeometry, acts: &Tensor, profiled: Option<u8>) -> u64 {
    let vals = acts.values();
    let out_h = geom.in_h - geom.kh + 1;
    let out_w = geom.in_w - geom.kw + 1;
    let mut total = 0u64;
    // Filter blocks as an explicit outer loop (the implementation under
    // test multiplies instead).
    let mut filters_done = 0;
    while filters_done < geom.out_ch {
        filters_done += geom.concurrent_filters;
        for y in 0..out_h {
            for x0 in (0..out_w).step_by(TILE_ROWS) {
                let rows = (out_w - x0).min(TILE_ROWS);
                for dy in 0..geom.kh {
                    for dx in 0..geom.kw {
                        for c0 in (0..geom.in_ch).step_by(SIP_CHANNELS) {
                            let c1 = (c0 + SIP_CHANNELS).min(geom.in_ch);
                            // Worst width over the union of the rows'
                            // channel groups == max over per-row maxima.
                            let mut worst = 0u32;
                            for r in 0..rows {
                                let (ay, ax) = (y + dy, x0 + r + dx);
                                for c in c0..c1 {
                                    let v = vals[(ay * geom.in_w + ax) * geom.in_ch + c];
                                    worst = worst.max(32 - (v as u32).leading_zeros());
                                }
                            }
                            total += match profiled {
                                Some(p) => u64::from(p.max(1)),
                                None => u64::from(worst.max(1)),
                            };
                        }
                    }
                }
            }
        }
    }
    total
}

fn check(geom: &ConvGeometry, seed: u64) {
    let acts = ValueGen::from_width_target(4.5, 0.5, FixedType::U16)
        .tensor_flat(geom.in_ch * geom.in_h * geom.in_w, seed);
    let ss = tile_cycles(geom, &acts, sstripes_step()).unwrap();
    assert_eq!(
        ss,
        brute_force_cycles(geom, &acts, None),
        "SStripes diverges for {geom:?}"
    );
    let profiled = acts.profiled_width();
    let st = tile_cycles(geom, &acts, stripes_step(profiled)).unwrap();
    assert_eq!(
        st,
        brute_force_cycles(geom, &acts, Some(profiled)),
        "Stripes diverges for {geom:?}"
    );
    // Sanity: dynamic widths never exceed the profile-driven schedule.
    assert!(ss <= st, "{geom:?}");
}

#[test]
fn fixed_ragged_corner_cases() {
    for geom in [
        // Odd in_ch, 1x1 kernel, out_w not divisible by TILE_ROWS.
        ConvGeometry {
            in_ch: 17,
            in_h: 5,
            in_w: 21,
            kh: 1,
            kw: 1,
            out_ch: 20,
            concurrent_filters: 16,
        },
        // 7x7 kernel, single channel.
        ConvGeometry {
            in_ch: 1,
            in_h: 9,
            in_w: 23,
            kh: 7,
            kw: 7,
            out_ch: 3,
            concurrent_filters: 16,
        },
        // Single output column, partial filter block.
        ConvGeometry {
            in_ch: 33,
            in_h: 3,
            in_w: 3,
            kh: 3,
            kw: 3,
            out_ch: 17,
            concurrent_filters: 16,
        },
        // Exactly-full blocks as the control.
        ConvGeometry {
            in_ch: 32,
            in_h: 6,
            in_w: 18,
            kh: 3,
            kw: 3,
            out_ch: 32,
            concurrent_filters: 16,
        },
    ] {
        check(&geom, 11);
    }
}

#[test]
fn randomized_geometries() {
    let mut rng = StdRng::seed_from_u64(0x715e5);
    for trial in 0..12 {
        // Odd channel counts can never divide 16.
        let in_ch = 1 + 2 * rng.random_below(24) as usize;
        let (kh, kw) = match rng.random_below(4) {
            0 => (1, 1),
            1 => (3, 3),
            2 => (5, 5),
            _ => (7, 7),
        };
        let in_h = kh + rng.random_below(6) as usize;
        let mut in_w = kw + rng.random_below(28) as usize;
        // Force a ragged final row block: out_w ≡ 0 (mod 16) is the one
        // non-ragged case, so nudge away from it.
        if (in_w - kw + 1) % TILE_ROWS == 0 {
            in_w += 1;
        }
        let out_ch = 1 + rng.random_below(40) as usize;
        let geom = ConvGeometry {
            in_ch,
            in_h,
            in_w,
            kh,
            kw,
            out_ch,
            concurrent_filters: 16,
        };
        check(&geom, 1000 + trial);
    }
}
