//! Typed errors for the shard store.
//!
//! Every failure a hostile or damaged shard can provoke — bad magic,
//! checksum mismatches, truncation, framing inconsistencies — surfaces as
//! a [`StoreError`] variant, never a panic: `ModelStore::get` sits on the
//! serving path and is covered by the workspace `panic-freedom` lint.

use std::error::Error;
use std::fmt;

use shapeshifter::container::ContainerError;
use ss_core::CodecError;

/// Errors for shard writing, store opening and record access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A storage-backend I/O operation failed.
    Io {
        /// What the store was doing (`"create"`, `"read"`, …).
        op: &'static str,
        /// The object or path involved.
        name: String,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
    /// The named object does not exist in the storage backend.
    ObjectNotFound {
        /// The missing object.
        name: String,
    },
    /// An object name is not usable by the backend (empty, path
    /// separators, `..`).
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// A shard does not start with the `SSRD` magic.
    BadMagic {
        /// The shard in question.
        shard: String,
    },
    /// A shard declares an unsupported format version.
    UnsupportedVersion {
        /// The shard in question.
        shard: String,
        /// The declared version.
        version: u8,
    },
    /// A shard's framing is inconsistent: truncated, oversized fields,
    /// index/record disagreement, or a whole-shard checksum mismatch.
    CorruptShard {
        /// The shard in question.
        shard: String,
        /// What was inconsistent.
        reason: String,
    },
    /// A record block's CRC-32 does not match its index entry.
    RecordChecksum {
        /// The shard holding the record.
        shard: String,
        /// The record's name.
        name: String,
    },
    /// A record's metadata is unusable (name too long, empty, duplicate
    /// of an already-appended record).
    InvalidRecord {
        /// What was wrong.
        reason: String,
    },
    /// The same record name appears more than once across the model's
    /// shards.
    DuplicateRecord {
        /// The duplicated name.
        name: String,
    },
    /// No record with this name exists in the store.
    RecordNotFound {
        /// The requested name.
        name: String,
    },
    /// The model has no shards in the storage backend.
    NoShards {
        /// The model prefix that matched nothing.
        model: String,
    },
    /// A declared length is valid framing but does not fit this target's
    /// `usize`.
    LengthOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The declared value.
        value: u64,
    },
    /// The record payload (an SSPK container) failed to parse or decode.
    Container(ContainerError),
    /// A codec-level failure outside container framing.
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, name, kind } => {
                write!(f, "storage {op} on {name:?} failed: {kind}")
            }
            StoreError::ObjectNotFound { name } => write!(f, "object {name:?} not found"),
            StoreError::InvalidName { name } => {
                write!(f, "object name {name:?} is not usable by the backend")
            }
            StoreError::BadMagic { shard } => {
                write!(f, "{shard}: not an SSRD shard (bad magic)")
            }
            StoreError::UnsupportedVersion { shard, version } => {
                write!(f, "{shard}: unsupported shard version {version}")
            }
            StoreError::CorruptShard { shard, reason } => {
                write!(f, "{shard}: corrupt shard: {reason}")
            }
            StoreError::RecordChecksum { shard, name } => {
                write!(f, "{shard}: record {name:?} failed its CRC-32 check")
            }
            StoreError::InvalidRecord { reason } => write!(f, "invalid record: {reason}"),
            StoreError::DuplicateRecord { name } => {
                write!(f, "record {name:?} appears in more than one place")
            }
            StoreError::RecordNotFound { name } => write!(f, "record {name:?} not found"),
            StoreError::NoShards { model } => {
                write!(f, "model {model:?} has no shards in the storage backend")
            }
            StoreError::LengthOverflow { field, value } => {
                write!(f, "{field} declares {value}, which overflows this target's usize")
            }
            StoreError::Container(e) => write!(f, "record payload: {e}"),
            StoreError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Container(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ContainerError> for StoreError {
    fn from(e: ContainerError) -> Self {
        StoreError::Container(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl StoreError {
    /// Wraps an I/O error with the operation and object it hit.
    #[must_use]
    pub fn io(op: &'static str, name: &str, e: &std::io::Error) -> Self {
        StoreError::Io {
            op,
            name: name.to_string(),
            kind: e.kind(),
        }
    }
}
