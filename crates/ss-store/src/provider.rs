// ss-lint: allow-file(concurrency-containment) -- MemoryProvider's object
// map needs interior mutability behind the &self provider trait; one Mutex
// around a BTreeMap, held only for whole-object insert/copy, no nesting.

//! Storage backends for shard files.
//!
//! [`StorageProvider`] abstracts where shards live: [`LocalFsProvider`]
//! maps object names to files under a root directory, [`MemoryProvider`]
//! keeps them in a map (tests, benches, and the determinism gates, which
//! must not touch the filesystem). Writers stream through a
//! [`ShardSink`]; readers use ranged reads, which is what makes
//! `ModelStore::get` touch only the requested record's bytes plus the
//! index — never the whole shard.
//!
//! Object names are flat: no path separators, no `..`, no empty names.
//! Providers reject anything else with [`StoreError::InvalidName`] so a
//! hostile record name can never escape the root directory.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::StoreError;

/// A streaming byte sink for one shard being written.
///
/// Bytes arrive in write order; `finish` makes the object visible to
/// subsequent reads and lists. An unfinished sink that is dropped leaves
/// backend-defined garbage (a partial file, nothing in memory) — the
/// shard footer's tail magic is what readers use to reject such remains.
pub trait ShardSink {
    /// Appends bytes to the shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend write failure.
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Flushes and publishes the shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend flush failure.
    fn finish(self: Box<Self>) -> Result<(), StoreError>;
}

/// A storage backend holding named shard objects.
pub trait StorageProvider {
    /// Creates (or truncates) an object and returns a streaming sink.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`] or [`StoreError::Io`].
    fn create(&self, name: &str) -> Result<Box<dyn ShardSink>, StoreError>;

    /// The object's size in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`] or [`StoreError::Io`].
    fn size(&self, name: &str) -> Result<u64, StoreError>;

    /// Reads exactly `len` bytes starting at `offset` into `out`
    /// (cleared first).
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`], [`StoreError::Io`], or
    /// [`StoreError::CorruptShard`] if the range runs past the object.
    fn read_range(
        &self,
        name: &str,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError>;

    /// All object names, sorted, for deterministic shard discovery.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend enumeration failure.
    fn list(&self) -> Result<Vec<String>, StoreError>;
}

/// Rejects names that could address outside the provider's namespace.
fn check_name(name: &str) -> Result<(), StoreError> {
    let bad = name.is_empty()
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
        || name == "."
        || name == ".."
        || name.starts_with("..");
    if bad {
        return Err(StoreError::InvalidName {
            name: name.to_string(),
        });
    }
    Ok(())
}

/// Shards as files under one root directory.
#[derive(Debug, Clone)]
pub struct LocalFsProvider {
    root: PathBuf,
}

impl LocalFsProvider {
    /// A provider rooted at `root` (created if absent on first write).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LocalFsProvider { root: root.into() }
    }

    fn path(&self, name: &str) -> Result<PathBuf, StoreError> {
        check_name(name)?;
        Ok(self.root.join(name))
    }
}

struct FileSink {
    file: std::io::BufWriter<fs::File>,
    name: String,
}

impl ShardSink for FileSink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(bytes)
            .map_err(|e| StoreError::io("write", &self.name, &e))
    }

    fn finish(mut self: Box<Self>) -> Result<(), StoreError> {
        self.file
            .flush()
            .map_err(|e| StoreError::io("flush", &self.name, &e))
    }
}

impl StorageProvider for LocalFsProvider {
    fn create(&self, name: &str) -> Result<Box<dyn ShardSink>, StoreError> {
        let path = self.path(name)?;
        fs::create_dir_all(&self.root).map_err(|e| StoreError::io("create root", name, &e))?;
        let file = fs::File::create(path).map_err(|e| StoreError::io("create", name, &e))?;
        Ok(Box::new(FileSink {
            file: std::io::BufWriter::new(file),
            name: name.to_string(),
        }))
    }

    fn size(&self, name: &str) -> Result<u64, StoreError> {
        let path = self.path(name)?;
        match fs::metadata(path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::ObjectNotFound {
                name: name.to_string(),
            }),
            Err(e) => Err(StoreError::io("stat", name, &e)),
        }
    }

    fn read_range(
        &self,
        name: &str,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let path = self.path(name)?;
        let mut file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::ObjectNotFound {
                    name: name.to_string(),
                })
            }
            Err(e) => return Err(StoreError::io("open", name, &e)),
        };
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io("seek", name, &e))?;
        out.clear();
        out.resize(len, 0);
        file.read_exact(out).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::CorruptShard {
                    shard: name.to_string(),
                    reason: format!("range {offset}+{len} runs past the end of the file"),
                }
            } else {
                StoreError::io("read", name, &e)
            }
        })
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            // A root that was never written to holds no shards.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io("list", "<root>", &e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("list", "<root>", &e))?;
            if entry.file_type().map_err(|e| StoreError::io("stat", "<root>", &e))?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        // read_dir order is platform- and filesystem-dependent; sorting
        // is what makes shard discovery deterministic.
        names.sort_unstable();
        Ok(names)
    }
}

/// Shards in memory: tests, benches and determinism gates.
///
/// Cloning the provider clones a handle to the *same* object map, so a
/// writer and a reader can share one backing store.
#[derive(Debug, Clone, Default)]
pub struct MemoryProvider {
    objects: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemoryProvider {
    /// An empty in-memory provider.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all stored objects (test/bench bookkeeping).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        match self.objects.lock() {
            Ok(map) => map.values().map(|v| v.len() as u64).sum(),
            Err(_) => 0,
        }
    }

    /// Replaces an object's bytes wholesale — the corruption tests' way
    /// of flipping bits in a finished shard.
    pub fn overwrite(&self, name: &str, bytes: Vec<u8>) {
        if let Ok(mut map) = self.objects.lock() {
            map.insert(name.to_string(), bytes);
        }
    }

    /// A copy of an object's bytes, if present.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> Option<Vec<u8>> {
        self.objects.lock().ok().and_then(|map| map.get(name).cloned())
    }

    fn poisoned(name: &str) -> StoreError {
        // A poisoned lock means a panic elsewhere; surface it as an I/O
        // failure rather than propagating the panic.
        StoreError::Io {
            op: "lock",
            name: name.to_string(),
            kind: std::io::ErrorKind::Other,
        }
    }
}

struct MemorySink {
    objects: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    name: String,
    buf: Vec<u8>,
}

impl ShardSink for MemorySink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<(), StoreError> {
        let mut map = self
            .objects
            .lock()
            .map_err(|_| MemoryProvider::poisoned(&self.name))?;
        map.insert(self.name, self.buf);
        Ok(())
    }
}

impl StorageProvider for MemoryProvider {
    fn create(&self, name: &str) -> Result<Box<dyn ShardSink>, StoreError> {
        check_name(name)?;
        Ok(Box::new(MemorySink {
            objects: Arc::clone(&self.objects),
            name: name.to_string(),
            buf: Vec::new(),
        }))
    }

    fn size(&self, name: &str) -> Result<u64, StoreError> {
        check_name(name)?;
        let map = self.objects.lock().map_err(|_| Self::poisoned(name))?;
        map.get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StoreError::ObjectNotFound {
                name: name.to_string(),
            })
    }

    fn read_range(
        &self,
        name: &str,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        check_name(name)?;
        let map = self.objects.lock().map_err(|_| Self::poisoned(name))?;
        let obj = map.get(name).ok_or_else(|| StoreError::ObjectNotFound {
            name: name.to_string(),
        })?;
        let start = usize::try_from(offset).map_err(|_| StoreError::LengthOverflow {
            field: "read offset",
            value: offset,
        })?;
        let end = start.checked_add(len).filter(|&e| e <= obj.len()).ok_or_else(|| {
            StoreError::CorruptShard {
                shard: name.to_string(),
                reason: format!("range {offset}+{len} runs past the end of the object"),
            }
        })?;
        out.clear();
        out.extend_from_slice(&obj[start..end]);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let map = self.objects.lock().map_err(|_| Self::poisoned("<root>"))?;
        // BTreeMap iterates sorted, matching the filesystem provider.
        Ok(map.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &dyn StorageProvider) {
        let mut sink = p.create("m.00000.ssrd").unwrap();
        sink.write_all(b"hello ").unwrap();
        sink.write_all(b"shards").unwrap();
        sink.finish().unwrap();
        assert_eq!(p.size("m.00000.ssrd").unwrap(), 12);
        let mut out = Vec::new();
        p.read_range("m.00000.ssrd", 6, 6, &mut out).unwrap();
        assert_eq!(&out, b"shards");
        assert!(p.read_range("m.00000.ssrd", 6, 7, &mut out).is_err());
        assert!(matches!(
            p.size("absent"),
            Err(StoreError::ObjectNotFound { .. })
        ));
        assert_eq!(p.list().unwrap(), vec!["m.00000.ssrd".to_string()]);
    }

    #[test]
    fn memory_provider_roundtrips() {
        roundtrip(&MemoryProvider::new());
    }

    #[test]
    fn local_fs_provider_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ss-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        roundtrip(&LocalFsProvider::new(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_names_are_rejected() {
        let p = MemoryProvider::new();
        for bad in ["", "a/b", "a\\b", "..", "../x", ".", "..evil"] {
            assert!(
                matches!(p.create(bad), Err(StoreError::InvalidName { .. })),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn empty_fs_root_lists_nothing() {
        let p = LocalFsProvider::new("/nonexistent/ss-store-nowhere");
        assert_eq!(p.list().unwrap(), Vec::<String>::new());
    }
}
