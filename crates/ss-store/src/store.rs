//! Random-access reading of a sharded model.
//!
//! [`ModelStore::open`] reads only each shard's footer and end-of-file
//! index — a few KiB per shard regardless of shard size — and builds a
//! name → (shard, entry) map. [`get`](ModelStore::get) then issues one
//! ranged read for exactly the requested record's block, checks its
//! CRC-32 against both the block trailer and the index, and decodes the
//! SSPK payload through a reusable [`ss_core::CodecSession`] — O(1)
//! lookups, lazy decode, no full-shard scans. The
//! `store_payload_bytes_read` trace counter is the partial-read receipt:
//! after any number of `get`s it equals the sum of the fetched blocks'
//! lengths, never the shard sizes.

use std::collections::HashMap;

use shapeshifter::container;
use ss_core::{CodecConfig, CodecSession};
use ss_tensor::{FixedType, Shape, Tensor};
use ss_trace::Counter;

use crate::error::StoreError;
use crate::format::{self, RecordEntry, FOOTER_LEN, HEADER_LEN};
use crate::provider::StorageProvider;

struct ShardState {
    /// Object name in the provider.
    name: String,
    /// Total object size in bytes.
    size: u64,
    /// Whole-shard CRC-32 declared by the footer.
    shard_crc: u32,
    /// Parsed end-of-file index, in block order.
    entries: Vec<RecordEntry>,
}

/// What [`ModelStore::verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Shards whose whole-file CRC-32 was recomputed and matched.
    pub shards: usize,
    /// Records whose block CRC-32 was recomputed and matched.
    pub records: usize,
    /// Total bytes read and checksummed.
    pub bytes: u64,
}

/// A read-only view of one model's shards with O(1) access by record
/// name.
pub struct ModelStore<'a> {
    provider: &'a dyn StorageProvider,
    model: String,
    shards: Vec<ShardState>,
    /// name → (shard index, entry index); the O(1) lookup table.
    lookup: HashMap<String, (usize, usize)>,
    session: CodecSession,
    block_buf: Vec<u8>,
}

impl<'a> ModelStore<'a> {
    /// Opens `model` in `provider`: discovers its shards, parses every
    /// end-of-file index (footer + index reads only — record payloads
    /// stay untouched) and builds the lookup table.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoShards`] if no shard of `model` exists;
    /// [`StoreError::CorruptShard`] / [`StoreError::BadMagic`] /
    /// [`StoreError::UnsupportedVersion`] for damaged shards;
    /// [`StoreError::DuplicateRecord`] if two shards claim one name.
    pub fn open(provider: &'a dyn StorageProvider, model: &str) -> Result<Self, StoreError> {
        let mut shard_names: Vec<(u16, String)> = provider
            .list()?
            .into_iter()
            .filter_map(|object| {
                format::parse_shard_name(&object)
                    .filter(|(m, _)| *m == model)
                    .map(|(_, no)| (no, object.clone()))
            })
            .collect();
        shard_names.sort_unstable();
        if shard_names.is_empty() {
            return Err(StoreError::NoShards {
                model: model.to_string(),
            });
        }
        let mut shards = Vec::with_capacity(shard_names.len());
        // ss-lint: allow(determinism) -- lookup is keyed access only; serialized orderings come from names() (sorted) and list() (shard/block order), never from map iteration
        let mut lookup = HashMap::new();
        let mut buf = Vec::new();
        for (expected_no, name) in &shard_names {
            let size = provider.size(name)?;
            let min = (HEADER_LEN + FOOTER_LEN) as u64;
            if size < min {
                return Err(StoreError::CorruptShard {
                    shard: name.clone(),
                    reason: format!("shard is {size} bytes, the framing alone needs {min}"),
                });
            }
            provider.read_range(name, 0, HEADER_LEN, &mut buf)?;
            let declared_no = format::parse_header(&buf, name)?;
            if declared_no != *expected_no {
                return Err(StoreError::CorruptShard {
                    shard: name.clone(),
                    reason: format!(
                        "file name says shard {expected_no} but the header says {declared_no}"
                    ),
                });
            }
            provider.read_range(name, size - FOOTER_LEN as u64, FOOTER_LEN, &mut buf)?;
            let (index_len, shard_crc) = format::parse_footer(&buf, name)?;
            let body = size - min;
            if index_len > body {
                return Err(StoreError::CorruptShard {
                    shard: name.clone(),
                    reason: format!(
                        "index claims {index_len} bytes but the shard carries {body} \
                         between header and footer"
                    ),
                });
            }
            let index_bytes = usize::try_from(index_len).map_err(|_| StoreError::LengthOverflow {
                field: "index length",
                value: index_len,
            })?;
            let index_off = size - FOOTER_LEN as u64 - index_len;
            provider.read_range(name, index_off, index_bytes, &mut buf)?;
            let entries = format::index_from_bytes(&buf, name)?;
            let shard_idx = shards.len();
            for (entry_idx, e) in entries.iter().enumerate() {
                // Placement must stay inside the record region — a
                // forged offset must not alias the index or footer.
                let end = e.block_offset.checked_add(e.block_len);
                if e.block_offset < HEADER_LEN as u64 || end.is_none_or(|end| end > index_off) {
                    return Err(StoreError::CorruptShard {
                        shard: name.clone(),
                        reason: format!(
                            "record {:?} claims bytes {}+{} outside the record region",
                            e.meta.name, e.block_offset, e.block_len
                        ),
                    });
                }
                if lookup
                    .insert(e.meta.name.clone(), (shard_idx, entry_idx))
                    .is_some()
                {
                    return Err(StoreError::DuplicateRecord {
                        name: e.meta.name.clone(),
                    });
                }
            }
            shards.push(ShardState {
                name: name.clone(),
                size,
                shard_crc,
                entries,
            });
            let rec = ss_trace::global();
            if rec.enabled() {
                rec.add(Counter::StoreShardsOpened, 1);
            }
        }
        Ok(ModelStore {
            provider,
            model: model.to_string(),
            shards,
            lookup,
            session: CodecSession::new(CodecConfig::new())?,
            block_buf: Vec::new(),
        })
    }

    /// The model name this store serves.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Number of records across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lookup.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lookup.is_empty()
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Every record's index entry, in shard then block order.
    #[must_use]
    pub fn list(&self) -> Vec<&RecordEntry> {
        self.shards.iter().flat_map(|s| s.entries.iter()).collect()
    }

    /// All record names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.lookup.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The index entry for `name`, if present (O(1)).
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&RecordEntry> {
        let &(s, e) = self.lookup.get(name)?;
        self.shards.get(s).and_then(|shard| shard.entries.get(e))
    }

    /// Reads and CRC-checks exactly one record's block, leaving it in
    /// `self.block_buf`; returns the shard index and entry index.
    fn fetch_block(&mut self, name: &str) -> Result<(usize, usize), StoreError> {
        let &(s, e) = self.lookup.get(name).ok_or_else(|| StoreError::RecordNotFound {
            name: name.to_string(),
        })?;
        let shard = &self.shards[s];
        let entry = &shard.entries[e];
        let len = usize::try_from(entry.block_len).map_err(|_| StoreError::LengthOverflow {
            field: "record block length",
            value: entry.block_len,
        })?;
        self.provider
            .read_range(&shard.name, entry.block_offset, len, &mut self.block_buf)?;
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::StorePayloadBytesRead, entry.block_len);
        }
        // The block's own CRC trailer must also match the index's copy:
        // otherwise index and block were written for different data.
        if self.block_buf.len() >= 4 {
            let stored = u32::from_le_bytes(
                self.block_buf[self.block_buf.len() - 4..]
                    .try_into()
                    .unwrap_or([0; 4]),
            );
            if stored != entry.record_crc {
                return Err(StoreError::RecordChecksum {
                    shard: shard.name.clone(),
                    name: name.to_string(),
                });
            }
        }
        Ok((s, e))
    }

    /// Decodes record `name` into a fresh tensor.
    ///
    /// One ranged read of the record's block; nothing else of the shard
    /// is touched or decoded.
    ///
    /// # Errors
    ///
    /// [`StoreError::RecordNotFound`], checksum and corruption variants,
    /// or a decode failure from the payload codec.
    pub fn get(&mut self, name: &str) -> Result<Tensor, StoreError> {
        let (s, e) = self.fetch_block(name)?;
        let shard = &self.shards[s];
        let entry = &shard.entries[e];
        let (meta, payload) =
            format::parse_record_block(&self.block_buf, &shard.name, name)?;
        if meta != entry.meta {
            return Err(StoreError::CorruptShard {
                shard: shard.name.clone(),
                reason: format!("record {name:?}: block metadata disagrees with the index"),
            });
        }
        let mut out = Tensor::zeros(Shape::flat(0), FixedType::I16);
        container::unpack_with(payload, &mut self.session, &mut out)?;
        if out.len() as u64 != meta.values {
            return Err(StoreError::CorruptShard {
                shard: shard.name.clone(),
                reason: format!(
                    "record {name:?} decoded to {} values, metadata says {}",
                    out.len(),
                    meta.values
                ),
            });
        }
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::StoreRecordsDecoded, 1);
        }
        Ok(out)
    }

    /// Returns record `name`'s raw SSPK container bytes without
    /// decoding them (still CRC-checked).
    ///
    /// # Errors
    ///
    /// As [`get`](Self::get), minus decode failures.
    pub fn get_raw(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let (s, _) = self.fetch_block(name)?;
        let shard = &self.shards[s];
        let (_, payload) = format::parse_record_block(&self.block_buf, &shard.name, name)?;
        Ok(payload.to_vec())
    }

    /// Recomputes every checksum in every shard: each whole-shard
    /// CRC-32 against its footer, each record block's CRC-32 against
    /// both its trailer and the index, each block's metadata against the
    /// index copy, and that all records share one codec fingerprint.
    ///
    /// # Errors
    ///
    /// The first mismatch found, as a typed error.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport {
            shards: 0,
            records: 0,
            bytes: 0,
        };
        let mut fingerprint: Option<u64> = None;
        for s in 0..self.shards.len() {
            let (name, size, declared_crc) = {
                let shard = &self.shards[s];
                (shard.name.clone(), shard.size, shard.shard_crc)
            };
            let covered = usize::try_from(size - FOOTER_LEN as u64).map_err(|_| {
                StoreError::LengthOverflow {
                    field: "shard size",
                    value: size,
                }
            })?;
            self.provider.read_range(&name, 0, covered, &mut self.block_buf)?;
            if format::crc32(&self.block_buf) != declared_crc {
                return Err(StoreError::CorruptShard {
                    shard: name,
                    reason: "whole-shard CRC-32 mismatch".to_string(),
                });
            }
            report.bytes += size;
            for e in 0..self.shards[s].entries.len() {
                let entry = &self.shards[s].entries[e];
                let start = usize::try_from(entry.block_offset).map_err(|_| {
                    StoreError::LengthOverflow {
                        field: "record offset",
                        value: entry.block_offset,
                    }
                })?;
                let len = usize::try_from(entry.block_len).map_err(|_| {
                    StoreError::LengthOverflow {
                        field: "record block length",
                        value: entry.block_len,
                    }
                })?;
                // Placement was bounds-checked at open; slice within the
                // covered region.
                let Some(block) = self.block_buf.get(start..start + len) else {
                    return Err(StoreError::CorruptShard {
                        shard: name.clone(),
                        reason: format!(
                            "record {:?} claims bytes outside the shard",
                            entry.meta.name
                        ),
                    });
                };
                let (meta, _) =
                    format::parse_record_block(block, &name, &entry.meta.name)?;
                if meta != entry.meta {
                    return Err(StoreError::CorruptShard {
                        shard: name.clone(),
                        reason: format!(
                            "record {:?}: block metadata disagrees with the index",
                            entry.meta.name
                        ),
                    });
                }
                if block[block.len() - 4..] != entry.record_crc.to_le_bytes() {
                    return Err(StoreError::RecordChecksum {
                        shard: name.clone(),
                        name: meta.name,
                    });
                }
                match fingerprint {
                    None => fingerprint = Some(meta.fingerprint),
                    Some(fp) if fp != meta.fingerprint => {
                        return Err(StoreError::InvalidRecord {
                            reason: format!(
                                "record {:?} was packed under a different codec \
                                 configuration than the rest of the model",
                                meta.name
                            ),
                        });
                    }
                    Some(_) => {}
                }
                report.records += 1;
            }
            report.shards += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::MemoryProvider;
    use crate::writer::ModelWriter;
    use ss_tensor::{FixedType, Shape};

    fn tensor(seed: i32, len: usize) -> Tensor {
        let vals = (0..len as i32).map(|i| (i * seed) % 900 - 450).collect();
        Tensor::from_vec(Shape::flat(len), FixedType::I16, vals).unwrap()
    }

    fn small_model(p: &MemoryProvider) -> Vec<(String, Tensor)> {
        let mut w = ModelWriter::new(p, "m").with_shard_bytes(3_000);
        let tensors: Vec<(String, Tensor)> = (0..5)
            .map(|i| (format!("layer{i}.weight"), tensor(i + 7, 1500)))
            .collect();
        for (i, (name, t)) in tensors.iter().enumerate() {
            w.append_tensor(name, i as u32, t).unwrap();
        }
        assert!(w.finish().unwrap().shards.len() > 1);
        tensors
    }

    #[test]
    fn open_get_list_verify() {
        let p = MemoryProvider::new();
        let tensors = small_model(&p);
        let mut store = ModelStore::open(&p, "m").unwrap();
        assert_eq!(store.len(), 5);
        assert!(!store.is_empty());
        assert!(store.shard_count() > 1);
        assert_eq!(store.list().len(), 5);
        assert_eq!(
            store.names(),
            tensors.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
        );
        // Out-of-order random access, twice each.
        for (name, t) in tensors.iter().rev().chain(tensors.iter()) {
            assert_eq!(&store.get(name).unwrap(), t);
        }
        assert!(matches!(
            store.get("absent"),
            Err(StoreError::RecordNotFound { .. })
        ));
        let report = store.verify().unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(report.shards, store.shard_count());
        // Raw bytes are a valid SSPK container for the same tensor.
        let raw = store.get_raw("layer2.weight").unwrap();
        assert_eq!(&container::unpack(&raw).unwrap(), &tensors[2].1);
    }

    #[test]
    fn missing_model_is_no_shards() {
        let p = MemoryProvider::new();
        assert!(matches!(
            ModelStore::open(&p, "nothing"),
            Err(StoreError::NoShards { .. })
        ));
    }

    #[test]
    fn models_are_namespaced_by_prefix() {
        let p = MemoryProvider::new();
        small_model(&p);
        let mut other = ModelWriter::new(&p, "m2");
        other.append_tensor("only", 0, &tensor(3, 64)).unwrap();
        other.finish().unwrap();
        let store = ModelStore::open(&p, "m2").unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(ModelStore::open(&p, "m").unwrap().len(), 5);
    }
}
