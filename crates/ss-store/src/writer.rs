//! Streaming shard writers.
//!
//! [`ShardWriter`] owns one shard file: records stream straight to the
//! [`ShardSink`] as they are appended (the whole-shard CRC folds in as
//! bytes pass), and only the index is buffered, serialized and appended
//! at [`finish`](ShardWriter::finish). [`ModelWriter`] sits above it:
//! it packs tensors into SSPK containers, rotates to a new numbered
//! shard when the current one crosses its byte budget, and enforces
//! model-wide record-name uniqueness.

use std::collections::BTreeSet;

use shapeshifter::container::{self, ContainerCodec};
use shapeshifter::SchemeId;
use ss_core::IndexPolicy;
use ss_tensor::Tensor;
use ss_trace::Counter;

use crate::error::StoreError;
use crate::format::{
    self, codec_fingerprint, Crc32, RecordEntry, RecordMeta, FOOTER_LEN, HEADER_LEN,
};
use crate::provider::{ShardSink, StorageProvider};

/// Default shard rotation budget: a new shard starts once the current
/// one holds at least this many bytes of record blocks. Small enough
/// that a zoo model spans several shards (exercising multi-shard
/// lookup), large enough that per-shard overhead stays negligible.
pub const DEFAULT_SHARD_BYTES: u64 = 4 << 20;

/// What one finished shard held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// The shard's object name in the provider.
    pub name: String,
    /// The shard number.
    pub shard_no: u16,
    /// Records written.
    pub records: usize,
    /// Total file size in bytes, footer included.
    pub bytes: u64,
}

/// Writes one shard: header up front, records streamed through, index
/// and footer appended at close.
pub struct ShardWriter {
    sink: Box<dyn ShardSink>,
    name: String,
    shard_no: u16,
    entries: Vec<RecordEntry>,
    names: BTreeSet<String>,
    offset: u64,
    crc: Crc32,
}

impl ShardWriter {
    /// Opens shard `shard_no` of `model` for writing in `provider`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::InvalidName`] from the
    /// provider.
    pub fn new(
        provider: &dyn StorageProvider,
        model: &str,
        shard_no: u16,
    ) -> Result<Self, StoreError> {
        let name = format::shard_file_name(model, shard_no);
        let mut sink = provider.create(&name)?;
        let header = format::header(shard_no);
        sink.write_all(&header)?;
        let mut crc = Crc32::new();
        crc.update(&header);
        Ok(ShardWriter {
            sink,
            name,
            shard_no,
            entries: Vec::new(),
            names: BTreeSet::new(),
            offset: HEADER_LEN as u64,
            crc,
        })
    }

    /// Appends one record: an SSPK container blob plus its metadata.
    ///
    /// The payload streams to the sink immediately; nothing of it is
    /// buffered beyond the index entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidRecord`] for bad metadata,
    /// [`StoreError::DuplicateRecord`] for a name this shard already
    /// holds, [`StoreError::Io`] from the sink.
    pub fn append(&mut self, meta: RecordMeta, payload: &[u8]) -> Result<(), StoreError> {
        if self.names.contains(&meta.name) {
            return Err(StoreError::DuplicateRecord { name: meta.name });
        }
        let (prefix, record_crc) = format::encode_record_parts(&meta, payload)?;
        self.sink.write_all(&prefix)?;
        self.sink.write_all(payload)?;
        let crc_le = record_crc.to_le_bytes();
        self.sink.write_all(&crc_le)?;
        self.crc.update(&prefix);
        self.crc.update(payload);
        self.crc.update(&crc_le);
        let block_len = (prefix.len() + payload.len() + 4) as u64;
        self.names.insert(meta.name.clone());
        self.entries.push(RecordEntry {
            meta,
            block_offset: self.offset,
            block_len,
            record_crc,
        });
        self.offset += block_len;
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::StoreRecordsAppended, 1);
        }
        Ok(())
    }

    /// Record-block bytes written so far (header excluded) — what the
    /// rotation budget is measured against.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.offset - HEADER_LEN as u64
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the index, writes the footer and publishes the shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] from the sink.
    pub fn finish(mut self) -> Result<ShardSummary, StoreError> {
        let index = format::index_to_bytes(&self.entries)?;
        self.sink.write_all(&index)?;
        self.crc.update(&index);
        let footer = format::footer(index.len() as u64, self.crc.finish());
        self.sink.write_all(&footer)?;
        self.sink.finish()?;
        let rec = ss_trace::global();
        if rec.enabled() {
            rec.add(Counter::StoreShardsFinished, 1);
        }
        Ok(ShardSummary {
            name: self.name,
            shard_no: self.shard_no,
            records: self.entries.len(),
            bytes: self.offset + index.len() as u64 + FOOTER_LEN as u64,
        })
    }
}

/// What a finished multi-shard model came to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Per-shard summaries, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Total records across all shards.
    pub records: usize,
    /// Total bytes across all shard files.
    pub bytes: u64,
}

/// Packs a model's tensors into numbered shards.
///
/// Tensors are SSPK-packed with one codec configuration (so every
/// record carries the same [`codec_fingerprint`]); shards rotate when
/// the current one crosses the byte budget.
pub struct ModelWriter<'a> {
    provider: &'a dyn StorageProvider,
    model: String,
    scheme: SchemeId,
    group_size: u16,
    shard_bytes: u64,
    shard: Option<ShardWriter>,
    next_shard: u16,
    names: BTreeSet<String>,
    finished: Vec<ShardSummary>,
}

impl<'a> ModelWriter<'a> {
    /// A writer for `model` in `provider`, packing with the
    /// ShapeShifter codec at the paper's default group size of 16.
    pub fn new(provider: &'a dyn StorageProvider, model: &str) -> Self {
        ModelWriter {
            provider,
            model: model.to_string(),
            scheme: SchemeId::SHAPESHIFTER,
            group_size: 16,
            shard_bytes: DEFAULT_SHARD_BYTES,
            shard: None,
            next_shard: 0,
            names: BTreeSet::new(),
            finished: Vec::new(),
        }
    }

    /// Overrides the container scheme records are packed with. Accepts
    /// any [`SchemeId`] (or the legacy `ContainerCodec` via `Into`);
    /// unregistered ids surface as a typed error at append time.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is 0 or exceeds 256 (as the codec does).
    #[must_use]
    pub fn with_scheme(mut self, scheme: impl Into<SchemeId>, group_size: u16) -> Self {
        assert!(
            group_size > 0 && group_size <= 256,
            "group size {group_size} outside 1..=256"
        );
        self.scheme = scheme.into();
        self.group_size = group_size;
        self
    }

    /// Overrides the codec configuration records are packed with.
    ///
    /// # Panics
    ///
    /// As [`ModelWriter::with_scheme`].
    #[deprecated(
        since = "0.3.0",
        note = "use `with_scheme` — schemes are addressed by `SchemeId` through the registry"
    )]
    #[must_use]
    pub fn with_codec(self, codec: ContainerCodec, group_size: u16) -> Self {
        self.with_scheme(codec, group_size)
    }

    /// Overrides the shard rotation budget (minimum one record per
    /// shard regardless of size).
    #[must_use]
    pub fn with_shard_bytes(mut self, bytes: u64) -> Self {
        self.shard_bytes = bytes.max(1);
        self
    }

    /// Packs `tensor` as an SSPK container and appends it as record
    /// `name` of layer `layer`, rotating shards as needed.
    ///
    /// # Errors
    ///
    /// [`StoreError::DuplicateRecord`] if `name` was already appended to
    /// this model; packing and I/O errors otherwise.
    pub fn append_tensor(
        &mut self,
        name: &str,
        layer: u32,
        tensor: &Tensor,
    ) -> Result<(), StoreError> {
        if self.names.contains(name) {
            return Err(StoreError::DuplicateRecord {
                name: name.to_string(),
            });
        }
        let payload = container::pack_with_policy(
            tensor,
            usize::from(self.group_size),
            self.scheme,
            IndexPolicy::Auto,
        )?;
        let meta = RecordMeta {
            name: name.to_string(),
            layer,
            dtype: tensor.dtype(),
            scheme: self.scheme,
            group_size: self.group_size,
            fingerprint: codec_fingerprint(self.scheme, self.group_size, tensor.dtype()),
            values: tensor.len() as u64,
        };
        // Rotate before the append so a shard never exceeds its budget
        // by more than one record, and never rotates while empty.
        if let Some(w) = &self.shard {
            if w.records() > 0 && w.bytes_written() >= self.shard_bytes {
                self.rotate()?;
            }
        }
        if self.shard.is_none() {
            self.shard = Some(ShardWriter::new(self.provider, &self.model, self.next_shard)?);
            self.next_shard += 1;
        }
        let Some(w) = self.shard.as_mut() else {
            // Unreachable: the branch above just installed a writer.
            return Err(StoreError::InvalidRecord {
                reason: "no open shard".to_string(),
            });
        };
        w.append(meta, &payload)?;
        self.names.insert(name.to_string());
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        if let Some(w) = self.shard.take() {
            self.finished.push(w.finish()?);
        }
        Ok(())
    }

    /// Closes the open shard and returns what was written.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoShards`] if nothing was ever appended;
    /// [`StoreError::Io`] from closing the last shard.
    pub fn finish(mut self) -> Result<ModelSummary, StoreError> {
        self.rotate()?;
        if self.finished.is_empty() {
            return Err(StoreError::NoShards {
                model: self.model,
            });
        }
        Ok(ModelSummary {
            records: self.finished.iter().map(|s| s.records).sum(),
            bytes: self.finished.iter().map(|s| s.bytes).sum(),
            shards: self.finished,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::MemoryProvider;
    use ss_tensor::{FixedType, Shape};

    fn tensor(seed: i32, len: usize) -> Tensor {
        let vals = (0..len as i32).map(|i| (i * seed) % 1000 - 500).collect();
        Tensor::from_vec(Shape::flat(len), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn writer_rotates_on_budget() {
        let p = MemoryProvider::new();
        let mut w = ModelWriter::new(&p, "m").with_shard_bytes(2_000);
        for i in 0..6 {
            w.append_tensor(&format!("t{i}"), i, &tensor(i as i32 + 3, 2000)).unwrap();
        }
        let summary = w.finish().unwrap();
        assert_eq!(summary.records, 6);
        assert!(summary.shards.len() > 1, "budget should force rotation");
        assert_eq!(
            summary.shards.iter().map(|s| s.shard_no).collect::<Vec<_>>(),
            (0..summary.shards.len() as u16).collect::<Vec<_>>()
        );
        assert_eq!(p.list().unwrap().len(), summary.shards.len());
    }

    #[test]
    fn duplicate_names_are_rejected_across_shards() {
        let p = MemoryProvider::new();
        let mut w = ModelWriter::new(&p, "m").with_shard_bytes(1);
        w.append_tensor("same", 0, &tensor(1, 64)).unwrap();
        // The budget of 1 byte forces a rotation between the appends, so
        // the duplicate lands in a *different* shard — still rejected.
        assert!(matches!(
            w.append_tensor("same", 1, &tensor(2, 64)),
            Err(StoreError::DuplicateRecord { .. })
        ));
    }

    #[test]
    fn empty_model_is_an_error() {
        let p = MemoryProvider::new();
        assert!(matches!(
            ModelWriter::new(&p, "m").finish(),
            Err(StoreError::NoShards { .. })
        ));
    }
}
