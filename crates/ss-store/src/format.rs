//! The `SSRD` shard file format: framing, checksums and the end-of-file
//! record index.
//!
//! A shard packs many named SSPK containers into one append-only file:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SSRD"
//! 4       1     format version (1)
//! 5       1     reserved (0)
//! 6       2     shard number, little-endian
//! 8       -     record blocks, back to back
//! ...     -     the record index (see below)
//! EOF-16  8     index length in bytes, little-endian
//! EOF-8   4     whole-shard CRC-32 (header + records + index), LE
//! EOF-4   4     tail magic "DRSS"
//! ```
//!
//! Each **record block** frames one SSPK container blob with its
//! metadata and a CRC-32 over every preceding byte of the block:
//!
//! ```text
//! 0       4     metadata length in bytes, little-endian
//! 4       m     serialized RecordMeta
//! 4+m     8     payload length in bytes, little-endian
//! 12+m    p     the SSPK container blob, byte-for-byte
//! 12+m+p  4     record CRC-32 (all preceding block bytes), LE
//! ```
//!
//! The **index** is a `BitWriter`-serialized table of every record's
//! metadata plus its block offset, length and CRC — the same
//! byte-aligned-fields-then-CRC-32-trailer idiom as
//! `ss_core::ChunkIndex`, so index corruption is detected independently
//! of the records it describes. The index sits at the *end* of the file
//! (located via the fixed-size footer) so a shard is written in pure
//! streaming fashion: records go straight to the sink, only the index is
//! buffered and appended at close.
//!
//! Three checksums, three failure domains: a record CRC localizes damage
//! to one tensor (the rest of the shard stays readable), the index CRC
//! protects the lookup table, and the whole-shard CRC gives `verify()` a
//! single end-to-end answer.

use shapeshifter::SchemeId;
use ss_bitio::{BitReader, BitWriter};
use ss_tensor::FixedType;

use crate::error::StoreError;

/// Shard file magic.
pub const MAGIC: [u8; 4] = *b"SSRD";
/// Tail magic closing every shard (the header magic reversed).
pub const TAIL_MAGIC: [u8; 4] = *b"DRSS";
/// The shard format version this crate reads and writes.
pub const VERSION: u8 = 1;
/// Shard header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Shard footer length in bytes (index length + shard CRC + tail magic).
pub const FOOTER_LEN: usize = 16;
/// Longest record name the format accepts. The wire field is a `u16`,
/// but no real layer name approaches even this; the cap keeps a hostile
/// index from declaring kilobytes of name per entry.
pub const MAX_NAME_LEN: usize = 1024;

/// Fixed per-record byte overhead: the two length prefixes and the
/// record CRC (metadata itself is variable-length on top).
pub const RECORD_FIXED_OVERHEAD: usize = 4 + 8 + 4;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
// checksum as `ss_core::ChunkIndex`, verified against the same reference
// vector. Record payloads run to megabytes, so unlike the index's
// few-dozen-byte bitwise loop this one uses a 16-entry nibble table:
// still effectively free of cache pressure, ~4× fewer steps per byte.
const CRC_TABLE: [u32; 16] = build_crc_table();

const fn build_crc_table() -> [u32; 16] {
    let mut table = [0u32; 16];
    let mut n = 0;
    while n < 16 {
        let mut crc = n as u32;
        let mut bit = 0;
        while bit < 4 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

/// Incremental CRC-32 for streaming shard writes: the whole-shard
/// checksum is folded in as bytes hit the sink, never buffering them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    #[must_use]
    pub const fn new() -> Self {
        Crc32 {
            state: 0xFFFF_FFFF,
        }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            crc = (crc >> 4) ^ CRC_TABLE[(crc & 0xF) as usize];
            crc = (crc >> 4) ^ CRC_TABLE[(crc & 0xF) as usize];
        }
        self.state = crc;
    }

    /// The finalized CRC-32 (the running state is not consumed; more
    /// updates continue from where they were).
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Per-record metadata: everything a reader needs to decode the record's
/// SSPK payload and to sanity-check it against the codec configuration
/// that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMeta {
    /// The record's unique name within the model (e.g. `"conv3.weight"`).
    pub name: String,
    /// The layer index this tensor belongs to.
    pub layer: u32,
    /// The tensor's fixed-point container type.
    pub dtype: FixedType,
    /// The container scheme the payload was packed with. Parsed
    /// permissively — an id with no registered scheme still lists; only
    /// decoding it fails (typed, through the registry).
    pub scheme: SchemeId,
    /// The codec's group size.
    pub group_size: u16,
    /// FNV-1a fingerprint of the codec configuration — see
    /// [`codec_fingerprint`]. Lets a reader refuse to mix records packed
    /// under different configurations without parsing payloads.
    pub fingerprint: u64,
    /// The tensor's element count.
    pub values: u64,
}

impl RecordMeta {
    /// Validates the fields a writer is about to serialize.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidRecord`] for an empty or over-long name.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.name.is_empty() {
            return Err(StoreError::InvalidRecord {
                reason: "record name is empty".to_string(),
            });
        }
        if self.name.len() > MAX_NAME_LEN {
            return Err(StoreError::InvalidRecord {
                reason: format!(
                    "record name is {} bytes; the format caps names at {MAX_NAME_LEN}",
                    self.name.len()
                ),
            });
        }
        Ok(())
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        2 + self.name.len() + 4 + 1 + 1 + 1 + 2 + 8 + 8
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        // ss-lint: allow(truncating-cast) -- validate() bounds name.len() at MAX_NAME_LEN (1024) before any serialization
        out.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.layer.to_le_bytes());
        out.push(self.dtype.bits());
        out.push(u8::from(self.dtype.signedness().is_signed()));
        out.push(self.scheme.as_byte());
        out.extend_from_slice(&self.group_size.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.values.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8], shard: &str) -> Result<Self, StoreError> {
        let corrupt = |reason: String| StoreError::CorruptShard {
            shard: shard.to_string(),
            reason,
        };
        if bytes.len() < 2 {
            return Err(corrupt("record metadata shorter than its name length".into()));
        }
        let name_len = usize::from(u16::from_le_bytes([bytes[0], bytes[1]]));
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(corrupt(format!(
                "record name length {name_len} outside 1..={MAX_NAME_LEN}"
            )));
        }
        let fixed = 4 + 1 + 1 + 1 + 2 + 8 + 8;
        if bytes.len() != 2 + name_len + fixed {
            return Err(corrupt(format!(
                "record metadata is {} bytes, framing says {}",
                bytes.len(),
                2 + name_len + fixed
            )));
        }
        let name = std::str::from_utf8(&bytes[2..2 + name_len])
            .map_err(|_| corrupt("record name is not UTF-8".into()))?
            .to_string();
        let mut at = 2 + name_len;
        let layer = u32::from_le_bytes(
            bytes[at..at + 4].try_into().map_err(|_| corrupt("short layer field".into()))?,
        );
        at += 4;
        let bits = bytes[at];
        let signed = bytes[at + 1];
        let dtype = match signed {
            0 => FixedType::unsigned(bits),
            1 => FixedType::signed(bits),
            s => {
                return Err(corrupt(format!("record signedness byte {s} is neither 0 nor 1")));
            }
        }
        .map_err(|e| corrupt(format!("record container type: {e}")))?;
        // ss-lint: allow(panic-freedom) -- the record-length check above guarantees at + 2 in bounds
        let scheme = SchemeId::new(bytes[at + 2]);
        at += 3;
        let group_size = u16::from_le_bytes([bytes[at], bytes[at + 1]]);
        if group_size == 0 || group_size > 256 {
            return Err(corrupt(format!(
                "record group size {group_size} outside 1..=256"
            )));
        }
        at += 2;
        let fingerprint = u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .map_err(|_| corrupt("short fingerprint field".into()))?,
        );
        at += 8;
        let values = u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .map_err(|_| corrupt("short value-count field".into()))?,
        );
        Ok(RecordMeta {
            name,
            layer,
            dtype,
            scheme,
            group_size,
            fingerprint,
            values,
        })
    }
}

/// FNV-1a fingerprint of a codec configuration (scheme wire id, group
/// size, container type). Two records with equal fingerprints were packed
/// compatibly; the store's `verify()` flags mixtures.
///
/// Delegates to the registry's canonical recipe
/// ([`ss_core::registry::fingerprint_bytes`] via each scheme's
/// `fingerprint` hook when registered), so shard fingerprints written
/// before the registry existed hash byte-identically.
#[must_use]
pub fn codec_fingerprint(scheme: impl Into<SchemeId>, group_size: u16, dtype: FixedType) -> u64 {
    let id = scheme.into();
    match shapeshifter::SchemeRegistry::global().lookup(id) {
        Some(s) => s.fingerprint(group_size, dtype),
        None => ss_core::registry::fingerprint_bytes(id, group_size, dtype),
    }
}

/// One index entry: a record's metadata plus where its block sits in the
/// shard and the CRC its block must carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEntry {
    /// The record's metadata, byte-identical to the copy inside its
    /// block.
    pub meta: RecordMeta,
    /// Byte offset of the record block from the start of the shard.
    pub block_offset: u64,
    /// Total record-block length in bytes (prefixes + metadata + payload
    /// + CRC).
    pub block_len: u64,
    /// The record block's CRC-32 (duplicated here so a reader can detect
    /// a damaged block without trusting the block's own trailer).
    pub record_crc: u32,
}

/// The 8-byte shard header.
#[must_use]
pub fn header(shard_no: u16) -> [u8; HEADER_LEN] {
    let n = shard_no.to_le_bytes();
    [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION, 0, n[0], n[1]]
}

/// Parses and validates a shard header, returning the shard number.
///
/// # Errors
///
/// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`] or
/// [`StoreError::CorruptShard`] for a short header.
pub fn parse_header(bytes: &[u8], shard: &str) -> Result<u16, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::CorruptShard {
            shard: shard.to_string(),
            reason: format!("file is {} bytes, header needs {HEADER_LEN}", bytes.len()),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic {
            shard: shard.to_string(),
        });
    }
    if bytes[4] != VERSION {
        return Err(StoreError::UnsupportedVersion {
            shard: shard.to_string(),
            version: bytes[4],
        });
    }
    Ok(u16::from_le_bytes([bytes[6], bytes[7]]))
}

/// The 16-byte shard footer.
#[must_use]
pub fn footer(index_len: u64, shard_crc: u32) -> [u8; FOOTER_LEN] {
    let mut out = [0u8; FOOTER_LEN];
    out[0..8].copy_from_slice(&index_len.to_le_bytes());
    out[8..12].copy_from_slice(&shard_crc.to_le_bytes());
    out[12..16].copy_from_slice(&TAIL_MAGIC);
    out
}

/// Parses a shard footer, returning `(index_len, shard_crc)`.
///
/// # Errors
///
/// [`StoreError::CorruptShard`] for a short footer or a missing tail
/// magic.
pub fn parse_footer(tail: &[u8], shard: &str) -> Result<(u64, u32), StoreError> {
    let corrupt = |reason: String| StoreError::CorruptShard {
        shard: shard.to_string(),
        reason,
    };
    if tail.len() != FOOTER_LEN {
        return Err(corrupt(format!(
            "footer is {} bytes, the format needs {FOOTER_LEN}",
            tail.len()
        )));
    }
    if tail[12..16] != TAIL_MAGIC {
        return Err(corrupt("tail magic missing — shard truncated or overwritten".into()));
    }
    let index_len = u64::from_le_bytes(
        tail[0..8].try_into().map_err(|_| corrupt("short index-length field".into()))?,
    );
    let shard_crc = u32::from_le_bytes(
        tail[8..12].try_into().map_err(|_| corrupt("short shard-CRC field".into()))?,
    );
    Ok((index_len, shard_crc))
}

/// Serializes a record block's prefix (metadata length, metadata,
/// payload length) and the CRC-32 the full block must end with.
///
/// The payload itself is not copied: a streaming writer emits the
/// returned prefix, then the payload bytes, then the returned CRC as
/// four little-endian bytes. The block's total length is
/// `prefix.len() + payload.len() + 4`.
///
/// # Errors
///
/// [`StoreError::InvalidRecord`] if the metadata fails validation.
pub fn encode_record_parts(
    meta: &RecordMeta,
    payload: &[u8],
) -> Result<(Vec<u8>, u32), StoreError> {
    meta.validate()?;
    let meta_bytes = meta.to_bytes();
    let mut prefix = Vec::with_capacity(4 + meta_bytes.len() + 8);
    prefix.extend_from_slice(&(meta_bytes.len() as u32).to_le_bytes());
    prefix.extend_from_slice(&meta_bytes);
    prefix.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&prefix);
    crc.update(payload);
    Ok((prefix, crc.finish()))
}

/// Parses one record block, returning its metadata and a borrowed view
/// of its payload.
///
/// The block's trailing CRC-32 is checked *first*, over every byte it
/// covers, so any single-bit flip inside the block — metadata, payload
/// or length prefixes — surfaces as [`StoreError::RecordChecksum`]
/// before the damaged bytes are interpreted. `name` is the caller's name
/// for the record (from the index) and is used only in errors.
///
/// # Errors
///
/// [`StoreError::RecordChecksum`] on CRC mismatch,
/// [`StoreError::CorruptShard`] on framing inconsistencies.
pub fn parse_record_block<'a>(
    block: &'a [u8],
    shard: &str,
    name: &str,
) -> Result<(RecordMeta, &'a [u8]), StoreError> {
    let corrupt = |reason: String| StoreError::CorruptShard {
        shard: shard.to_string(),
        reason,
    };
    if block.len() < RECORD_FIXED_OVERHEAD {
        return Err(corrupt(format!(
            "record block is {} bytes, the framing alone needs {RECORD_FIXED_OVERHEAD}",
            block.len()
        )));
    }
    let body = &block[..block.len() - 4];
    let stored = u32::from_le_bytes(
        block[block.len() - 4..]
            .try_into()
            .map_err(|_| corrupt("short record CRC field".into()))?,
    );
    if crc32(body) != stored {
        return Err(StoreError::RecordChecksum {
            shard: shard.to_string(),
            name: name.to_string(),
        });
    }
    let meta_len = usize::try_from(u32::from_le_bytes(
        block[0..4].try_into().map_err(|_| corrupt("short metadata length".into()))?,
    ))
    .map_err(|_| StoreError::LengthOverflow {
        field: "record metadata length",
        value: u64::from(u32::from_le_bytes([block[0], block[1], block[2], block[3]])),
    })?;
    // Checked end-to-end: `meta_len` is at most u32::MAX, which plus the
    // framing overflows a 32-bit usize in the worst case.
    let Some(after_meta) = meta_len
        .checked_add(4 + 8)
        .and_then(|hdr| body.len().checked_sub(hdr))
    else {
        return Err(corrupt(format!(
            "record metadata claims {meta_len} bytes but the block carries {}",
            body.len()
        )));
    };
    let meta = RecordMeta::from_bytes(&body[4..4 + meta_len], shard)?;
    let declared = u64::from_le_bytes(
        body[4 + meta_len..4 + meta_len + 8]
            .try_into()
            .map_err(|_| corrupt("short payload length".into()))?,
    );
    let payload_len = usize::try_from(declared).map_err(|_| StoreError::LengthOverflow {
        field: "record payload length",
        value: declared,
    })?;
    if payload_len != after_meta {
        return Err(corrupt(format!(
            "record payload claims {payload_len} bytes but the block carries {after_meta}"
        )));
    }
    Ok((meta, &body[4 + meta_len + 8..]))
}

// The index serializes with the same shape as `ss_core::ChunkIndex`:
// BitWriter fields (all byte-aligned here — every width is a multiple of
// 8), then a CRC-32 trailer over the body. Field widths:
const COUNT_BITS: u32 = 32;
const OFFSET_BITS: u32 = 64;
const CRC_BITS: u32 = 32;
const NAME_LEN_BITS: u32 = 16;
const BYTE_BITS: u32 = 8;

/// Smallest possible serialized entry (1-byte name), used to bound a
/// hostile entry count before allocating.
const MIN_ENTRY_BYTES: u64 = (OFFSET_BITS as u64 * 2 + CRC_BITS as u64 + NAME_LEN_BITS as u64) / 8
    + 2 + 1 + 4 + 1 + 1 + 1 + 2 + 8 + 8; // placement fields + metadata with a 1-byte name

/// Serializes the end-of-file record index.
///
/// # Errors
///
/// [`StoreError::InvalidRecord`] if any entry's metadata fails
/// validation; bit-I/O failures are unreachable for validated entries
/// but surface as [`StoreError::CorruptShard`] rather than panicking.
pub fn index_to_bytes(entries: &[RecordEntry]) -> Result<Vec<u8>, StoreError> {
    let encode_failed = |_| StoreError::CorruptShard {
        shard: "<unwritten>".to_string(),
        reason: "index serialization overflowed the bit writer".to_string(),
    };
    let mut w = BitWriter::new();
    w.write_bits(entries.len() as u64, COUNT_BITS).map_err(encode_failed)?;
    for e in entries {
        e.meta.validate()?;
        w.write_bits(e.block_offset, OFFSET_BITS).map_err(encode_failed)?;
        w.write_bits(e.block_len, OFFSET_BITS).map_err(encode_failed)?;
        w.write_bits(u64::from(e.record_crc), CRC_BITS).map_err(encode_failed)?;
        let meta = e.meta.to_bytes();
        w.write_bits(meta.len() as u64, NAME_LEN_BITS).map_err(encode_failed)?;
        for &b in &meta {
            w.write_bits(u64::from(b), BYTE_BITS).map_err(encode_failed)?;
        }
    }
    // Every field above is a whole number of bytes, so the writer is
    // already aligned; the CRC-32 trailer goes on as raw bytes, exactly
    // like the ChunkIndex serialization.
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    Ok(bytes)
}

/// Deserializes the end-of-file record index, verifying its CRC-32
/// trailer first.
///
/// # Errors
///
/// [`StoreError::CorruptShard`] for a bad CRC, hostile entry counts or
/// any framing inconsistency.
pub fn index_from_bytes(bytes: &[u8], shard: &str) -> Result<Vec<RecordEntry>, StoreError> {
    let corrupt = |reason: String| StoreError::CorruptShard {
        shard: shard.to_string(),
        reason,
    };
    if bytes.len() < 4 + 4 {
        return Err(corrupt(format!(
            "index is {} bytes, too short for its count and CRC",
            bytes.len()
        )));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(
        crc_bytes.try_into().map_err(|_| corrupt("short index CRC field".into()))?,
    );
    if crc32(body) != stored {
        return Err(corrupt("index CRC-32 mismatch".into()));
    }
    let mut r = BitReader::new(body);
    let read_failed = |_| StoreError::CorruptShard {
        shard: shard.to_string(),
        reason: "index ends mid-entry".to_string(),
    };
    let count = r.read_bits(COUNT_BITS).map_err(read_failed)?;
    // Bound the count by what the body could physically hold before
    // allocating anything: a CRC-valid-but-hostile count cannot occur,
    // but the check costs nothing and keeps this path panic- and
    // OOM-free even if the trailer were forged to match.
    let max_entries = (body.len() as u64).saturating_sub(4) / MIN_ENTRY_BYTES;
    if count > max_entries {
        return Err(corrupt(format!(
            "index claims {count} entries but its body could hold at most {max_entries}"
        )));
    }
    let count = usize::try_from(count).map_err(|_| StoreError::LengthOverflow {
        field: "index entry count",
        value: count,
    })?;
    let mut entries = Vec::with_capacity(count);
    let mut meta_buf = Vec::new();
    for _ in 0..count {
        let block_offset = r.read_bits(OFFSET_BITS).map_err(read_failed)?;
        let block_len = r.read_bits(OFFSET_BITS).map_err(read_failed)?;
        let record_crc = r.read_bits(CRC_BITS).map_err(read_failed)? as u32;
        let meta_len = r.read_bits(NAME_LEN_BITS).map_err(read_failed)? as usize;
        if meta_len as u64 * 8 > r.remaining_bits() {
            return Err(corrupt(format!(
                "index entry claims {meta_len} metadata bytes past the end of the index"
            )));
        }
        meta_buf.clear();
        for _ in 0..meta_len {
            // ss-lint: allow(truncating-cast) -- read_bits(BYTE_BITS=8) yields a value < 2^8
            meta_buf.push(r.read_bits(BYTE_BITS).map_err(read_failed)? as u8);
        }
        let meta = RecordMeta::from_bytes(&meta_buf, shard)?;
        entries.push(RecordEntry {
            meta,
            block_offset,
            block_len,
            record_crc,
        });
    }
    Ok(entries)
}

/// The canonical file name of shard `shard_no` of `model`:
/// `{model}.{shard_no:05}.ssrd`.
#[must_use]
pub fn shard_file_name(model: &str, shard_no: u16) -> String {
    format!("{model}.{shard_no:05}.ssrd")
}

/// Inverse of [`shard_file_name`]: `Some((model, shard_no))` when `name`
/// is a well-formed shard file name, else `None`.
#[must_use]
pub fn parse_shard_name(name: &str) -> Option<(&str, u16)> {
    let stem = name.strip_suffix(".ssrd")?;
    let (model, no) = stem.rsplit_once('.')?;
    if model.is_empty() || no.len() != 5 || !no.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((model, no.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> RecordMeta {
        let dtype = FixedType::I16;
        RecordMeta {
            name: name.to_string(),
            layer: 3,
            dtype,
            scheme: SchemeId::SHAPESHIFTER,
            group_size: 16,
            fingerprint: codec_fingerprint(SchemeId::SHAPESHIFTER, 16, dtype),
            values: 1000,
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // Same IEEE check value as the ChunkIndex implementation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental equals one-shot across arbitrary split points.
        let data: Vec<u8> = (0u16..700).map(|i| (i * 31 % 251) as u8).collect();
        for split in [0, 1, 350, 699, 700] {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(&data));
        }
    }

    #[test]
    fn meta_roundtrips() {
        let m = meta("conv3.weight");
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_len());
        assert_eq!(RecordMeta::from_bytes(&bytes, "s").unwrap(), m);
    }

    #[test]
    fn meta_rejects_bad_names() {
        assert!(matches!(
            meta("").validate(),
            Err(StoreError::InvalidRecord { .. })
        ));
        assert!(matches!(
            meta(&"x".repeat(MAX_NAME_LEN + 1)).validate(),
            Err(StoreError::InvalidRecord { .. })
        ));
        assert!(meta(&"x".repeat(MAX_NAME_LEN)).validate().is_ok());
    }

    #[test]
    fn record_block_roundtrips_and_detects_flips() {
        let m = meta("fc6.weight");
        let payload = b"not a real container, irrelevant here";
        let (prefix, crc) = encode_record_parts(&m, payload).unwrap();
        let mut block = prefix;
        block.extend_from_slice(payload);
        block.extend_from_slice(&crc.to_le_bytes());
        let (back, body) = parse_record_block(&block, "s", "fc6.weight").unwrap();
        assert_eq!(back, m);
        assert_eq!(body, payload);
        // Every single-bit flip anywhere in the block trips a typed
        // error — the CRC covers prefixes, metadata and payload alike.
        for i in 0..block.len() {
            let mut corrupt = block.clone();
            corrupt[i] ^= 1;
            assert!(
                parse_record_block(&corrupt, "s", "fc6.weight").is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn index_roundtrips_and_detects_flips() {
        let entries = vec![
            RecordEntry {
                meta: meta("conv1.weight"),
                block_offset: 8,
                block_len: 400,
                record_crc: 0xDEAD_BEEF,
            },
            RecordEntry {
                meta: meta("conv2.weight"),
                block_offset: 408,
                block_len: 1000,
                record_crc: 1,
            },
        ];
        let bytes = index_to_bytes(&entries).unwrap();
        assert_eq!(index_from_bytes(&bytes, "s").unwrap(), entries);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                matches!(
                    index_from_bytes(&corrupt, "s"),
                    Err(StoreError::CorruptShard { .. })
                ),
                "flip at byte {i} went undetected"
            );
        }
        assert!(index_from_bytes(&bytes[..bytes.len() - 1], "s").is_err());
        assert!(index_from_bytes(&[], "s").is_err());
    }

    #[test]
    fn header_and_footer_roundtrip() {
        let h = header(7);
        assert_eq!(parse_header(&h, "s").unwrap(), 7);
        assert!(matches!(
            parse_header(b"XXRD\x01\x00\x00\x00", "s"),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            parse_header(b"SSRD\x09\x00\x00\x00", "s"),
            Err(StoreError::UnsupportedVersion { version: 9, .. })
        ));
        let f = footer(12345, 0xABCD_EF01);
        assert_eq!(parse_footer(&f, "s").unwrap(), (12345, 0xABCD_EF01));
        let mut bad = f;
        bad[15] ^= 1;
        assert!(parse_footer(&bad, "s").is_err());
    }

    #[test]
    fn shard_names_roundtrip() {
        assert_eq!(shard_file_name("alexnet", 3), "alexnet.00003.ssrd");
        assert_eq!(parse_shard_name("alexnet.00003.ssrd"), Some(("alexnet", 3)));
        assert_eq!(parse_shard_name("a.b.00021.ssrd"), Some(("a.b", 21)));
        for bad in ["alexnet.ssrd", "alexnet.3.ssrd", ".00003.ssrd", "alexnet.00003", "x.0000a.ssrd"] {
            assert_eq!(parse_shard_name(bad), None, "{bad} should not parse");
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = codec_fingerprint(SchemeId::SHAPESHIFTER, 16, FixedType::I16);
        assert_eq!(a, codec_fingerprint(SchemeId::SHAPESHIFTER, 16, FixedType::I16));
        assert_ne!(a, codec_fingerprint(SchemeId::DELTA, 16, FixedType::I16));
        assert_ne!(a, codec_fingerprint(SchemeId::SHAPESHIFTER, 32, FixedType::I16));
        assert_ne!(a, codec_fingerprint(SchemeId::SHAPESHIFTER, 16, FixedType::U16));
        // New registry schemes fingerprint through the same recipe.
        assert_ne!(
            codec_fingerprint(SchemeId::DPRED, 16, FixedType::I16),
            codec_fingerprint(SchemeId::ADABITS, 16, FixedType::I16)
        );
        // Unregistered ids still fingerprint (a reader can refuse mixtures
        // even for schemes it cannot decode).
        let _ = codec_fingerprint(SchemeId::new(200), 16, FixedType::I16);
    }

    #[test]
    fn fingerprint_recipe_is_frozen() {
        // The exact pre-registry FNV-1a value: shards written before the
        // registry existed must keep verifying.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in [0u8, 16, 0, 16, 1] {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h, codec_fingerprint(SchemeId::SHAPESHIFTER, 16, FixedType::I16));
    }
}
