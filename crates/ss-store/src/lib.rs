#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! Sharded multi-tensor model store for ShapeShifter-compressed models.
//!
//! A compressed model is hundreds of tensors; shipping each as its own
//! `SSPK` file loses atomicity and wastes per-file overhead, while one
//! giant file forces readers to scan everything to find one tensor. This
//! crate packs many named SSPK containers into numbered **`SSRD`
//! shards** — written in pure streaming fashion, closed with an
//! end-of-file index — and reads them back with O(1) random access:
//!
//! * [`format`] — the shard byte layout: header, CRC-32-framed record
//!   blocks, a `BitWriter`-serialized index with a CRC-32 trailer (the
//!   `ss_core::ChunkIndex` idiom), and a fixed-size locating footer.
//! * [`StorageProvider`] — where shards live: [`LocalFsProvider`]
//!   (files under a root) or [`MemoryProvider`] (tests and determinism
//!   gates). Ranged reads are the contract that keeps record access
//!   partial.
//! * [`ShardWriter`] / [`ModelWriter`] — streaming append;
//!   [`ModelWriter::append_tensor`] packs tensors and rotates shards on
//!   a byte budget.
//! * [`ModelStore`] — open (footer + index reads only), [`get`]
//!   (one ranged read, CRC check, lazy decode through a reusable
//!   `CodecSession`), `list`, and `verify` (every checksum in every
//!   shard, recomputed).
//!
//! [`get`]: ModelStore::get
//!
//! # Quick start
//!
//! ```
//! use ss_store::{MemoryProvider, ModelStore, ModelWriter};
//! use ss_tensor::{FixedType, Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let provider = MemoryProvider::new();
//! let mut writer = ModelWriter::new(&provider, "lenet");
//! let t = Tensor::from_vec(Shape::flat(4), FixedType::I16, vec![1, -2, 0, 300])?;
//! writer.append_tensor("conv1.weight", 0, &t)?;
//! writer.finish()?;
//!
//! let mut store = ModelStore::open(&provider, "lenet")?;
//! assert_eq!(store.get("conv1.weight")?, t);
//! store.verify()?;
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod format;
pub mod provider;
pub mod store;
pub mod writer;

pub use error::StoreError;
pub use format::{codec_fingerprint, RecordEntry, RecordMeta};
pub use provider::{LocalFsProvider, MemoryProvider, ShardSink, StorageProvider};
pub use store::{ModelStore, VerifyReport};
pub use writer::{ModelSummary, ModelWriter, ShardSummary, ShardWriter};
