//! End-to-end: a synthetic-zoo model's weight tensors round-trip through
//! `ModelWriter` / `ModelStore` bit-identically, across both storage
//! backends, with shard rotation in play.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use shapeshifter::SchemeId;
use ss_store::{
    codec_fingerprint, LocalFsProvider, MemoryProvider, ModelStore, ModelWriter, StorageProvider,
};
use ss_tensor::Tensor;

const MODEL_SEED: u64 = 0xA11E7;

fn zoo_weights() -> (String, Vec<(String, Tensor)>) {
    let net = ss_models::zoo::alexnet().scaled_down(8);
    let tensors = net
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.weight_count() > 0)
        .map(|(i, l)| (format!("{}.weight", l.name()), net.weight_tensor(i, MODEL_SEED)))
        .collect();
    // The zoo name ("AlexNet@1/8") contains a path separator, which
    // providers rightly reject as an object name; store under a slug.
    ("alexnet-s8".to_string(), tensors)
}

fn roundtrip_on(provider: &dyn StorageProvider) {
    let (model, tensors) = zoo_weights();
    let mut w = ModelWriter::new(provider, &model).with_shard_bytes(64 << 10);
    for (layer, (name, t)) in tensors.iter().enumerate() {
        w.append_tensor(name, layer as u32, t).unwrap();
    }
    let summary = w.finish().unwrap();
    assert_eq!(summary.records, tensors.len());
    assert!(
        summary.shards.len() > 1,
        "a zoo model under a 64 KiB budget must span shards, got {}",
        summary.shards.len()
    );

    let mut store = ModelStore::open(provider, &model).unwrap();
    assert_eq!(store.len(), tensors.len());
    assert_eq!(store.shard_count(), summary.shards.len());
    // Bit-identical round-trip, accessed out of order.
    for (name, t) in tensors.iter().rev() {
        assert_eq!(&store.get(name).unwrap(), t, "{name:?} did not round-trip");
    }
    // Index metadata matches what was written.
    for (layer, (name, t)) in tensors.iter().enumerate() {
        let e = store.entry(name).unwrap();
        assert_eq!(e.meta.layer, layer as u32);
        assert_eq!(e.meta.values, t.len() as u64);
        assert_eq!(e.meta.dtype, t.dtype());
        assert_eq!(
            e.meta.fingerprint,
            codec_fingerprint(SchemeId::SHAPESHIFTER, 16, t.dtype())
        );
    }
    let report = store.verify().unwrap();
    assert_eq!(report.records, tensors.len());
    assert_eq!(report.shards, store.shard_count());
    assert!(report.bytes > 0);
}

#[test]
fn zoo_model_roundtrips_in_memory() {
    roundtrip_on(&MemoryProvider::new());
}

#[test]
fn zoo_model_roundtrips_on_disk() {
    let dir = std::env::temp_dir().join(format!("ss-store-zoo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    roundtrip_on(&LocalFsProvider::new(&dir));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plugin_schemes_roundtrip_through_the_store() {
    // DPRed and AdaBits records flow through ModelWriter/ModelStore just
    // like the built-ins: same shard format, scheme resolved from the
    // registry at read time, bit-identical values back.
    let (model_base, tensors) = zoo_weights();
    for scheme in [SchemeId::DPRED, SchemeId::ADABITS] {
        let provider = MemoryProvider::new();
        let model = format!("{model_base}-{}", scheme.as_byte());
        let mut w = ModelWriter::new(&provider, &model)
            .with_scheme(scheme, 16)
            .with_shard_bytes(64 << 10);
        for (layer, (name, t)) in tensors.iter().enumerate() {
            w.append_tensor(name, layer as u32, t).unwrap();
        }
        w.finish().unwrap();
        let mut store = ModelStore::open(&provider, &model).unwrap();
        for (name, t) in &tensors {
            let e = store.entry(name).unwrap();
            assert_eq!(e.meta.scheme, scheme);
            assert_eq!(
                e.meta.fingerprint,
                codec_fingerprint(scheme, 16, t.dtype())
            );
            assert_eq!(&store.get(name).unwrap(), t, "{name:?} under {scheme}");
        }
        store.verify().unwrap();
    }
}

#[test]
fn shard_bytes_are_identical_across_backends() {
    // The format has no timestamps or platform-dependent fields: the
    // same model must serialize to byte-identical shards everywhere.
    let (model, tensors) = zoo_weights();
    let mem_a = MemoryProvider::new();
    let mem_b = MemoryProvider::new();
    for p in [&mem_a, &mem_b] {
        let mut w = ModelWriter::new(p, &model).with_shard_bytes(64 << 10);
        for (layer, (name, t)) in tensors.iter().enumerate() {
            w.append_tensor(name, layer as u32, t).unwrap();
        }
        w.finish().unwrap();
    }
    let names = mem_a.list().unwrap();
    assert_eq!(names, mem_b.list().unwrap());
    for name in &names {
        assert_eq!(
            mem_a.snapshot(name).unwrap(),
            mem_b.snapshot(name).unwrap(),
            "{name} differs between two identical write runs"
        );
    }
}
