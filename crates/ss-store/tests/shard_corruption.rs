//! Corruption suite for `SSRD` shards, mirroring the container fuzz
//! tests: damage anywhere in a shard must surface as a typed
//! [`StoreError`] from open, get or verify — never a panic, a wrap, or a
//! silently wrong tensor.
//!
//! The shards live in a [`MemoryProvider`], so each case rewrites the
//! damaged bytes in place and runs the full read pipeline against them.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ss_store::{MemoryProvider, ModelStore, ModelWriter, StorageProvider, StoreError};
use ss_tensor::{FixedType, Shape, Tensor};

fn tensor(seed: i32, len: usize) -> Tensor {
    let vals = (0..len as i32).map(|i| (i * seed) % 800 - 400).collect();
    Tensor::from_vec(Shape::flat(len), FixedType::I16, vals).unwrap()
}

/// A two-shard model plus the expected tensors, keyed by record name.
fn build_model(p: &MemoryProvider) -> Vec<(String, Tensor)> {
    let mut w = ModelWriter::new(p, "m").with_shard_bytes(1_200);
    let tensors: Vec<(String, Tensor)> = (0..4)
        .map(|i| (format!("layer{i}.weight"), tensor(i + 5, 400)))
        .collect();
    for (i, (name, t)) in tensors.iter().enumerate() {
        w.append_tensor(name, i as u32, t).unwrap();
    }
    let summary = w.finish().unwrap();
    assert!(summary.shards.len() >= 2, "model must span multiple shards");
    tensors
}

/// Runs the whole read pipeline and reports whether any stage surfaced
/// an error (all of which are typed `StoreError`s by construction). A
/// successful pipeline must reproduce every tensor exactly — a corrupted
/// shard that decodes to *different* values would be a silent failure,
/// which this helper turns into a test failure.
fn pipeline_detects(p: &MemoryProvider, expected: &[(String, Tensor)]) -> bool {
    let mut store = match ModelStore::open(p, "m") {
        Ok(s) => s,
        Err(_) => return true,
    };
    let mut failed = false;
    for (name, t) in expected {
        match store.get(name) {
            Ok(back) => assert_eq!(&back, t, "corruption silently changed {name:?}"),
            Err(_) => failed = true,
        }
    }
    if store.verify().is_err() {
        failed = true;
    }
    failed
}

#[test]
fn every_single_bit_flip_is_detected() {
    let p = MemoryProvider::new();
    let tensors = build_model(&p);
    let shard_names: Vec<String> = p.list().unwrap();
    for shard in &shard_names {
        let clean = p.snapshot(shard).unwrap();
        // One flip per byte, walking the bit position with the offset so
        // all eight bit lanes are exercised across the file. Covers the
        // header, every record body, both length prefixes, the record
        // CRCs, the EOF index, its CRC trailer, and the footer.
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 1 << (i % 8);
            p.overwrite(shard, bytes);
            assert!(
                pipeline_detects(&p, &tensors),
                "{shard}: flip at byte {i} went undetected"
            );
        }
        p.overwrite(shard, clean.clone());
        // The clean shard must be clean again (guards the harness).
        assert!(!pipeline_detects(&p, &tensors));
    }
}

#[test]
fn all_bits_of_both_crc_fields_are_load_bearing() {
    let p = MemoryProvider::new();
    let tensors = build_model(&p);
    let shard = p.list().unwrap()[0].clone();
    let clean = p.snapshot(&shard).unwrap();
    let n = clean.len();
    // The whole-shard CRC sits at EOF-8..EOF-4; the index CRC trailer is
    // the 4 bytes just before the index's end at EOF-16. Every one of
    // their 32 bits must individually trip detection.
    let shard_crc = n - 8..n - 4;
    let index_crc = n - 16 - 4..n - 16;
    for range in [shard_crc, index_crc] {
        for byte in range {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                p.overwrite(&shard, bytes);
                assert!(
                    pipeline_detects(&p, &tensors),
                    "{shard}: CRC bit {bit} of byte {byte} went undetected"
                );
            }
        }
    }
}

#[test]
fn truncated_shards_fail_cleanly() {
    let p = MemoryProvider::new();
    let tensors = build_model(&p);
    let shard = p.list().unwrap()[0].clone();
    let clean = p.snapshot(&shard).unwrap();
    for cut in 0..clean.len() {
        p.overwrite(&shard, clean[..cut].to_vec());
        assert!(
            pipeline_detects(&p, &tensors),
            "{shard}: truncation to {cut} bytes went undetected"
        );
    }
    // Growing the file also breaks the footer's position.
    let mut grown = clean.clone();
    grown.extend_from_slice(&[0; 7]);
    p.overwrite(&shard, grown);
    assert!(pipeline_detects(&p, &tensors));
}

#[test]
fn errors_are_the_expected_variants() {
    let p = MemoryProvider::new();
    build_model(&p);
    let shard = p.list().unwrap()[0].clone();
    let clean = p.snapshot(&shard).unwrap();

    // Bad magic.
    let mut bytes = clean.clone();
    bytes[0] = b'X';
    p.overwrite(&shard, bytes);
    assert!(matches!(
        ModelStore::open(&p, "m"),
        Err(StoreError::BadMagic { .. })
    ));

    // Unsupported version.
    let mut bytes = clean.clone();
    bytes[4] = 9;
    p.overwrite(&shard, bytes);
    assert!(matches!(
        ModelStore::open(&p, "m"),
        Err(StoreError::UnsupportedVersion { version: 9, .. })
    ));

    // Shard number disagreeing with the file name.
    let mut bytes = clean.clone();
    bytes[6] ^= 0xFF;
    p.overwrite(&shard, bytes);
    assert!(matches!(
        ModelStore::open(&p, "m"),
        Err(StoreError::CorruptShard { .. })
    ));

    // A flipped payload byte: open succeeds (the index is intact), the
    // damaged record's get fails its CRC, the others still decode.
    let mut bytes = clean.clone();
    bytes[60] ^= 0x20; // inside the first record block's payload
    p.overwrite(&shard, bytes);
    let mut store = ModelStore::open(&p, "m").unwrap();
    assert!(matches!(
        store.get("layer0.weight"),
        Err(StoreError::RecordChecksum { .. }) | Err(StoreError::CorruptShard { .. })
    ));
    assert!(matches!(store.verify(), Err(_)));

    // Hostile index length in the footer.
    let mut bytes = clean.clone();
    let n = bytes.len();
    bytes[n - 16..n - 8].copy_from_slice(&u64::MAX.to_le_bytes());
    p.overwrite(&shard, bytes);
    assert!(matches!(
        ModelStore::open(&p, "m"),
        Err(StoreError::CorruptShard { .. })
    ));

    p.overwrite(&shard, clean);
    assert!(ModelStore::open(&p, "m").is_ok());
}
