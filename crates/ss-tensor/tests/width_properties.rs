//! Property tests for the width arithmetic — the foundation every bit
//! count in the evaluation rests on.

use proptest::prelude::*;
use ss_tensor::width::{
    effective_width, from_sign_magnitude, group_width, to_sign_magnitude, value_width,
};
use ss_tensor::Signedness;

proptest! {
    #[test]
    fn value_width_is_tight_unsigned(v in 0i32..=65_535) {
        let w = value_width(v, Signedness::Unsigned);
        if v == 0 {
            prop_assert_eq!(w, 0);
        } else {
            // v fits in w bits but not in w-1.
            prop_assert!(v < (1 << w));
            prop_assert!(v >= (1 << (w - 1)));
        }
    }

    #[test]
    fn value_width_is_tight_signed(v in -32_767i32..=32_767) {
        let w = value_width(v, Signedness::Signed);
        if v == 0 {
            prop_assert_eq!(w, 0);
        } else {
            // The sign-magnitude encoding fits exactly in w bits.
            let enc = to_sign_magnitude(v);
            prop_assert!(u64::from(enc) < (1u64 << w));
            prop_assert!(u64::from(enc) >= (1u64 << (w - 1)));
        }
    }

    #[test]
    fn sign_magnitude_roundtrips(v in -(1i32 << 30)..=(1i32 << 30)) {
        prop_assert_eq!(from_sign_magnitude(to_sign_magnitude(v)), v);
    }

    #[test]
    fn group_width_is_the_member_maximum(
        vals in prop::collection::vec(-32_767i32..=32_767, 0..100)
    ) {
        let g = group_width(&vals, Signedness::Signed);
        let max = vals
            .iter()
            .map(|&v| value_width(v, Signedness::Signed))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(g, max);
    }

    #[test]
    fn effective_width_is_bracketed(
        vals in prop::collection::vec(0i32..=65_535, 1..400),
        group in 1usize..=64,
    ) {
        let eff = effective_width(&vals, Signedness::Unsigned, group);
        let profiled = f64::from(group_width(&vals, Signedness::Unsigned));
        let mean_value: f64 = vals
            .iter()
            .map(|&v| f64::from(value_width(v, Signedness::Unsigned)))
            .sum::<f64>()
            / vals.len() as f64;
        // Per-value <= per-group effective <= per-layer profiled.
        prop_assert!(eff <= profiled + 1e-9);
        prop_assert!(eff + 1e-9 >= mean_value);
    }

    #[test]
    fn effective_width_shrinks_with_finer_groups(
        vals in prop::collection::vec(0i32..=65_535, 1..400)
    ) {
        let fine = effective_width(&vals, Signedness::Unsigned, 8);
        let coarse = effective_width(&vals, Signedness::Unsigned, 64);
        prop_assert!(fine <= coarse + 1e-9);
    }
}
