use crate::TensorError;

/// Iterator over fixed-size value groups along a tensor's innermost
/// dimension.
///
/// ShapeShifter adapts data width per *group* — "a set of values that are
/// either calculated upon or transferred from/to memory together" (paper
/// §1), typically 16–256 values adjacent along the channel dimension. The
/// final group of a tensor may be shorter when the element count is not a
/// multiple of the group size; the codec handles that by encoding the
/// remainder as a short group.
///
/// Produced by [`crate::Tensor::groups`].
#[derive(Debug, Clone)]
pub struct GroupIter<'a> {
    chunks: std::slice::Chunks<'a, i32>,
}

impl<'a> GroupIter<'a> {
    pub(crate) fn new(data: &'a [i32], group_size: usize) -> Result<Self, TensorError> {
        if group_size == 0 {
            return Err(TensorError::InvalidGroupSize);
        }
        Ok(Self {
            chunks: data.chunks(group_size),
        })
    }
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = &'a [i32];

    fn next(&mut self) -> Option<Self::Item> {
        self.chunks.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.chunks.size_hint()
    }
}

impl ExactSizeIterator for GroupIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_evenly() {
        let data = [1, 2, 3, 4, 5, 6];
        let groups: Vec<_> = GroupIter::new(&data, 2).unwrap().collect();
        assert_eq!(groups, vec![&[1, 2][..], &[3, 4], &[5, 6]]);
    }

    #[test]
    fn last_group_may_be_partial() {
        let data = [1, 2, 3, 4, 5];
        let groups: Vec<_> = GroupIter::new(&data, 4).unwrap().collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1], &[5]);
    }

    #[test]
    fn exact_size() {
        let data = [0; 33];
        let it = GroupIter::new(&data, 16).unwrap();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn zero_group_size_is_error() {
        assert!(GroupIter::new(&[1], 0).is_err());
    }
}
