//! Width-needed arithmetic: the software model of the paper's Figure 5c
//! width-detection hardware.
//!
//! The hardware ORs each bit position across every value in a group and runs
//! a leading-1 detector over the result; negative values are first converted
//! to sign-magnitude "placing the sign at the rightmost (least significant)
//! place" (paper §3). These functions reproduce that arithmetic exactly:
//!
//! * [`value_width`] — bits a single value needs.
//! * [`group_width`] — bits the worst value of a group needs (the group's
//!   encoded width `P`).
//! * [`profiled_width`] — bits the worst value of a whole slice needs (the
//!   per-layer "Profile" baseline of Judd et al.'s Proteus).
//! * [`to_sign_magnitude`] / [`from_sign_magnitude`] — the stored encoding.

use crate::Signedness;

/// Minimum bits needed to hold `value` in a container of the given
/// signedness.
///
/// * Unsigned: position of the leading 1, so `0 → 0`, `1 → 1`, `5 → 3`.
/// * Signed (sign-magnitude, sign at LSB): magnitude bits + 1, so
///   `0 → 0` (zeros are elided by the codec, they never occupy payload),
///   `1 → 2`, `-1 → 2`, `-5 → 4`.
///
/// # Panics
///
/// Panics in debug builds if an unsigned container receives a negative
/// value; release builds treat it as its magnitude.
///
/// # Examples
///
/// ```
/// use ss_tensor::{width::value_width, Signedness};
///
/// assert_eq!(value_width(0, Signedness::Unsigned), 0);
/// assert_eq!(value_width(9, Signedness::Unsigned), 4);
/// assert_eq!(value_width(-9, Signedness::Signed), 5);
/// ```
#[must_use]
pub fn value_width(value: i32, signedness: Signedness) -> u8 {
    let mag = magnitude_bits(value, signedness);
    match signedness {
        Signedness::Unsigned => mag,
        Signedness::Signed => {
            if value == 0 {
                0
            } else {
                mag + 1
            }
        }
    }
}

fn magnitude_bits(value: i32, signedness: Signedness) -> u8 {
    debug_assert!(
        signedness.is_signed() || value >= 0,
        "negative value {value} in unsigned width computation"
    );
    let mag = value.unsigned_abs();
    (32 - mag.leading_zeros()) as u8
}

/// Width the whole group needs: the maximum [`value_width`] over its
/// members. Zeros contribute nothing (the codec stores them in the `Z`
/// bit-vector, not the payload), so an all-zero group needs width 0.
///
/// This is the group's `P` field in the memory container (Figure 6b) and the
/// cycle count a ShapeShifter-Stripes SIP spends on the group (§4).
///
/// Implemented the way the hardware computes it (Figure 5c): OR every
/// value's stored encoding, then run one leading-1 detector over the
/// result — see [`group_or`]. The per-value arithmetic definition is kept
/// as [`group_width_scalar`], the differential-test oracle.
///
/// # Examples
///
/// ```
/// use ss_tensor::{width::group_width, Signedness};
///
/// assert_eq!(group_width(&[0, 0, 0], Signedness::Unsigned), 0);
/// assert_eq!(group_width(&[1, 2, 3], Signedness::Unsigned), 2);
/// assert_eq!(group_width(&[0, 6, -1], Signedness::Signed), 4);
/// ```
#[must_use]
pub fn group_width(values: &[i32], signedness: Signedness) -> u8 {
    (32 - group_or(values, signedness).leading_zeros()) as u8
}

/// The per-value arithmetic definition of [`group_width`]: the maximum
/// [`value_width`] over the group. Retained as the scalar reference the
/// word-parallel path is differential-tested against (`kernel_differential`
/// in ss-core); production code wants [`group_width`].
#[must_use]
pub fn group_width_scalar(values: &[i32], signedness: Signedness) -> u8 {
    values
        .iter()
        .map(|&v| value_width(v, signedness))
        .max()
        .unwrap_or(0)
}

/// OR of every value's stored encoding — the software model of the
/// paper's Figure 5c OR-tree. Bit `i` of the result is 1 iff any group
/// member has bit `i` set in its encoding (magnitude for unsigned
/// containers, sign-magnitude with the sign at the LSB for signed; zeros
/// encode to 0 and assert nothing, including the sign wire).
///
/// Word-parallel: consecutive encodings pack into the two 32-bit lanes of
/// a `u64`, the group ORs u64-at-a-time, and a single lane fold plus one
/// `leading_zeros` (in [`group_width`]) replaces the per-value
/// compare-and-max loop.
#[must_use]
pub fn group_or(values: &[i32], signedness: Signedness) -> u32 {
    match signedness {
        Signedness::Unsigned => or_lanes(values, |v| {
            debug_assert!(v >= 0, "negative value {v} in unsigned width computation");
            v.unsigned_abs()
        }),
        Signedness::Signed => or_lanes(values, to_sign_magnitude),
    }
}

/// The u64-lane OR fold behind [`group_or`].
#[inline]
fn or_lanes(values: &[i32], enc: impl Fn(i32) -> u32 + Copy) -> u32 {
    let mut lanes = 0u64;
    let mut pairs = values.chunks_exact(2);
    for pair in pairs.by_ref() {
        if let [a, b] = *pair {
            lanes |= u64::from(enc(a)) | (u64::from(enc(b)) << 32);
        }
    }
    let mut or = (lanes | (lanes >> 32)) as u32;
    for &v in pairs.remainder() {
        or |= enc(v);
    }
    or
}

/// Width a whole tensor/layer needs: the per-layer profiled width. This is
/// what the "Profile" compression baseline and the original Stripes use
/// (one width for every group in the layer).
#[must_use]
pub fn profiled_width(values: &[i32], signedness: Signedness) -> u8 {
    group_width(values, signedness)
}

/// Converts a value to its stored sign-magnitude form with the sign at the
/// least-significant bit: `(|v| << 1) | sign`.
///
/// The LSB-sign layout matches the paper and keeps bit-serial hardware
/// simple: the sign arrives first, magnitudes stream afterwards.
///
/// # Examples
///
/// ```
/// use ss_tensor::width::to_sign_magnitude;
///
/// assert_eq!(to_sign_magnitude(0), 0);
/// assert_eq!(to_sign_magnitude(5), 0b1010);
/// assert_eq!(to_sign_magnitude(-5), 0b1011);
/// ```
#[must_use]
pub fn to_sign_magnitude(value: i32) -> u32 {
    let sign = u32::from(value < 0);
    (value.unsigned_abs() << 1) | sign
}

/// Inverse of [`to_sign_magnitude`].
///
/// `0b...1` decodes negative; note that "negative zero" (`0b1`) decodes to
/// `0`, so encoding is not injective at zero — the codec never emits it
/// because zeros are elided.
///
/// # Examples
///
/// ```
/// use ss_tensor::width::from_sign_magnitude;
///
/// assert_eq!(from_sign_magnitude(0b1010), 5);
/// assert_eq!(from_sign_magnitude(0b1011), -5);
/// ```
#[must_use]
pub fn from_sign_magnitude(encoded: u32) -> i32 {
    let mag = (encoded >> 1) as i32;
    if encoded & 1 == 1 {
        -mag
    } else {
        mag
    }
}

/// Average effective width over `values` when grouped in `group_size`
/// chunks: each group costs `group_width` bits per value. This is the
/// "effective width" metric of the paper's Table 1.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `group_size == 0`.
#[must_use]
pub fn effective_width(values: &[i32], signedness: Signedness, group_size: usize) -> f64 {
    assert!(group_size > 0, "group size must be non-zero");
    if values.is_empty() {
        return 0.0;
    }
    let mut weighted: u64 = 0;
    for chunk in values.chunks(group_size) {
        weighted += u64::from(group_width(chunk, signedness)) * chunk.len() as u64;
    }
    weighted as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_value_widths() {
        let cases = [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)];
        for (v, w) in cases {
            assert_eq!(value_width(v, Signedness::Unsigned), w, "value {v}");
        }
    }

    #[test]
    fn signed_value_widths_include_sign_bit() {
        let cases = [
            (0, 0),
            (1, 2),
            (-1, 2),
            (3, 3),
            (-3, 3),
            (4, 4),
            (127, 8),
            (-127, 8),
            (-128, 9),
        ];
        for (v, w) in cases {
            assert_eq!(value_width(v, Signedness::Signed), w, "value {v}");
        }
    }

    #[test]
    fn group_width_is_worst_member() {
        assert_eq!(group_width(&[], Signedness::Unsigned), 0);
        assert_eq!(group_width(&[0; 16], Signedness::Signed), 0);
        assert_eq!(group_width(&[1, 0, 0x3], Signedness::Unsigned), 2);
        assert_eq!(group_width(&[1, 0, 0xF], Signedness::Unsigned), 4);
        // The paper's intro example: max magnitude 0x3 -> 2 bits,
        // max magnitude 0xf -> 4 bits.
        assert_eq!(group_width(&[3, 1, 2], Signedness::Unsigned), 2);
        assert_eq!(group_width(&[15, 1, 2], Signedness::Unsigned), 4);
    }

    #[test]
    fn group_width_matches_scalar_reference() {
        // Odd and even lengths exercise the lane remainder; extremes cover
        // the full 16-bit container domain in both signedness modes.
        let unsigned: [&[i32]; 6] = [
            &[],
            &[0],
            &[1, 2, 3],
            &[65_535, 0, 9],
            &[5; 17],
            &[0xFFFF, 1, 0, 0x8000],
        ];
        for g in unsigned {
            assert_eq!(
                group_width(g, Signedness::Unsigned),
                group_width_scalar(g, Signedness::Unsigned),
                "unsigned {g:?}"
            );
        }
        let signed: [&[i32]; 5] = [
            &[0],
            &[0, 6, -1, 7],
            &[-32767, 32767, 0, 1, -1],
            &[-1; 9],
            &[-32768, 5],
        ];
        for g in signed {
            assert_eq!(
                group_width(g, Signedness::Signed),
                group_width_scalar(g, Signedness::Signed),
                "signed {g:?}"
            );
        }
    }

    #[test]
    fn group_or_accumulates_encodings() {
        assert_eq!(group_or(&[0b0001, 0b0100], Signedness::Unsigned), 0b0101);
        assert_eq!(group_or(&[], Signedness::Unsigned), 0);
        // -2 encodes as (2 << 1) | 1 = 0b101; zeros assert nothing.
        assert_eq!(group_or(&[-2, 0, 0], Signedness::Signed), 0b101);
    }

    #[test]
    fn paper_figure5c_example() {
        // Figure 5c: four 16b activations whose highest set bit is
        // position 11 -> all representable in 12 bits.
        let acts = [0x0801, 0x0102, 0x0403, 0x0204];
        assert_eq!(group_width(&acts, Signedness::Unsigned), 12);
    }

    #[test]
    fn sign_magnitude_roundtrip() {
        for v in [-32767, -128, -1, 0, 1, 7, 127, 32767] {
            assert_eq!(from_sign_magnitude(to_sign_magnitude(v)), v, "value {v}");
        }
    }

    #[test]
    fn sign_is_the_lsb() {
        assert_eq!(to_sign_magnitude(-1) & 1, 1);
        assert_eq!(to_sign_magnitude(1) & 1, 0);
    }

    #[test]
    fn effective_width_weights_by_group_population() {
        // Two groups of 2: widths 2 and 4 -> average 3.
        let vals = [3, 1, 8, 2];
        assert!((effective_width(&vals, Signedness::Unsigned, 2) - 3.0).abs() < 1e-12);
        // One group: width 4 everywhere.
        assert!((effective_width(&vals, Signedness::Unsigned, 4) - 4.0).abs() < 1e-12);
        // Empty.
        assert_eq!(effective_width(&[], Signedness::Unsigned, 16), 0.0);
    }

    #[test]
    fn effective_width_partial_last_group() {
        // 3 values, group size 2: group widths 4 (2 values) and 1 (1 value).
        let vals = [8, 1, 1];
        let expect = (4.0 * 2.0 + 1.0) / 3.0;
        assert!((effective_width(&vals, Signedness::Unsigned, 2) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn effective_width_zero_group_panics() {
        let _ = effective_width(&[1], Signedness::Unsigned, 0);
    }
}
