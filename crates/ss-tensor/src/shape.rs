use std::fmt;

/// A tensor shape: an ordered list of dimension extents, outermost first.
///
/// Conventionally `[N, C, H, W]` for activations and `[K, C, R, S]` for
/// convolution weights, but any rank is accepted. The innermost dimension is
/// the channel/depth dimension along which ShapeShifter groups values
/// ("group size of 16 values along the channel dimension", paper Table 1
/// caption), so tensors store that dimension contiguously.
///
/// # Examples
///
/// ```
/// use ss_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.innermost(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    ///
    /// A rank-0 (scalar) shape has one element. Zero extents are allowed and
    /// yield an empty tensor.
    #[must_use]
    pub fn new(dims: Vec<usize>) -> Self {
        Self { dims }
    }

    /// Convenience constructor for a flat 1-D shape.
    #[must_use]
    pub fn flat(len: usize) -> Self {
        Self { dims: vec![len] }
    }

    /// The dimension extents, outermost first.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count (product of extents; 1 for a scalar shape).
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of the innermost (channel) dimension; 1 for a scalar shape.
    #[must_use]
    pub fn innermost(&self) -> usize {
        self.dims.last().copied().unwrap_or(1)
    }

    /// Reshapes in place to a flat 1-D shape of `len` elements, reusing
    /// the dimension buffer (allocation-free once the shape has rank ≥ 1).
    ///
    /// This is the reuse hook behind `Tensor::replace_flat` and, through
    /// it, `ss-core`'s buffer-recycling `CodecSession::decode_into`.
    pub fn make_flat(&mut self, len: usize) {
        self.dims.clear();
        self.dims.push(len);
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                f.write_str("x")?;
            }
            write!(f, "{d}")?;
        }
        f.write_str("]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        assert_eq!(Shape::new(vec![]).num_elements(), 1);
        assert_eq!(Shape::new(vec![0, 5]).num_elements(), 0);
        assert_eq!(Shape::new(vec![2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::flat(7).num_elements(), 7);
    }

    #[test]
    fn innermost_dimension() {
        assert_eq!(Shape::new(vec![]).innermost(), 1);
        assert_eq!(Shape::new(vec![8, 16]).innermost(), 16);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(vec![1, 64, 56, 56]).to_string(), "[1x64x56x56]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn make_flat_reuses_the_dims_buffer() {
        let mut s = Shape::new(vec![2, 3, 4]);
        s.make_flat(24);
        assert_eq!(s, Shape::flat(24));
        // Scalar shapes grow to rank 1.
        let mut scalar = Shape::new(vec![]);
        scalar.make_flat(1);
        assert_eq!(scalar, Shape::flat(1));
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![3, 4].into();
        assert_eq!(s.rank(), 2);
        let s2: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s, s2);
    }
}
