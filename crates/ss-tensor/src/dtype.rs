use std::fmt;

use crate::TensorError;

/// Whether a fixed-point container carries a sign.
///
/// In the evaluated networks, post-ReLU activations are unsigned while
/// weights (and pre-attenuation activations, paper §3) are signed and stored
/// in sign-magnitude form with the sign at the least-significant position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signedness {
    /// Non-negative values only; width = magnitude bits.
    Unsigned,
    /// Sign-magnitude values; width = magnitude bits + 1 sign bit.
    Signed,
}

impl Signedness {
    /// `true` for [`Signedness::Signed`].
    #[must_use]
    pub fn is_signed(self) -> bool {
        matches!(self, Signedness::Signed)
    }
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signedness::Unsigned => f.write_str("u"),
            Signedness::Signed => f.write_str("i"),
        }
    }
}

/// A fixed-point container type: a width of 1–16 bits plus signedness.
///
/// This is the *container*, not the value: ShapeShifter's whole point is that
/// most values need far fewer bits than their container provides. The paper
/// evaluates int16 and int8 models ([`FixedType::I16`], [`FixedType::I8`],
/// and unsigned activation variants).
///
/// # Examples
///
/// ```
/// use ss_tensor::FixedType;
///
/// let t = FixedType::I16;
/// assert_eq!(t.bits(), 16);
/// assert!(t.contains(-32767));
/// assert!(!t.contains(-32768)); // sign-magnitude: -2^15 unrepresentable
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedType {
    bits: u8,
    signedness: Signedness,
}

impl FixedType {
    /// The paper's 16-bit signed container (weights of int16 models).
    pub const I16: FixedType = FixedType {
        bits: 16,
        signedness: Signedness::Signed,
    };
    /// The paper's 8-bit signed container (weights of int8 models).
    pub const I8: FixedType = FixedType {
        bits: 8,
        signedness: Signedness::Signed,
    };
    /// 16-bit unsigned container (post-ReLU activations of int16 models).
    pub const U16: FixedType = FixedType {
        bits: 16,
        signedness: Signedness::Unsigned,
    };
    /// 8-bit unsigned container (post-ReLU activations of int8 models).
    pub const U8: FixedType = FixedType {
        bits: 8,
        signedness: Signedness::Unsigned,
    };

    /// Creates a signed container of `bits` total bits (1 sign + `bits - 1`
    /// magnitude).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidWidth`] unless `1 <= bits <= 16`.
    pub fn signed(bits: u8) -> Result<Self, TensorError> {
        Self::checked(bits, Signedness::Signed)
    }

    /// Creates an unsigned container of `bits` bits.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidWidth`] unless `1 <= bits <= 16`.
    pub fn unsigned(bits: u8) -> Result<Self, TensorError> {
        Self::checked(bits, Signedness::Unsigned)
    }

    fn checked(bits: u8, signedness: Signedness) -> Result<Self, TensorError> {
        if bits == 0 || bits > 16 {
            return Err(TensorError::InvalidWidth { bits });
        }
        Ok(Self { bits, signedness })
    }

    /// Total container width in bits (including the sign bit if signed).
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Container signedness.
    #[must_use]
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// Magnitude bits available (total width minus the sign bit if signed).
    #[must_use]
    pub fn magnitude_bits(&self) -> u8 {
        match self.signedness {
            Signedness::Unsigned => self.bits,
            Signedness::Signed => self.bits - 1,
        }
    }

    /// Largest representable magnitude.
    #[must_use]
    pub fn max_magnitude(&self) -> i32 {
        (1i32 << self.magnitude_bits()) - 1
    }

    /// `true` if `value` is representable in this container (sign-magnitude
    /// semantics: the range is symmetric, `-(2^(b-1)-1) ..= 2^(b-1)-1` when
    /// signed).
    #[must_use]
    pub fn contains(&self, value: i32) -> bool {
        match self.signedness {
            Signedness::Unsigned => (0..=self.max_magnitude()).contains(&value),
            Signedness::Signed => value.abs() <= self.max_magnitude(),
        }
    }
}

impl fmt::Display for FixedType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.signedness, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_width() {
        assert!(FixedType::signed(0).is_err());
        assert!(FixedType::signed(17).is_err());
        assert!(FixedType::signed(1).is_ok());
        assert!(FixedType::unsigned(16).is_ok());
    }

    #[test]
    fn ranges() {
        assert_eq!(FixedType::I16.max_magnitude(), 32767);
        assert_eq!(FixedType::U16.max_magnitude(), 65535);
        assert_eq!(FixedType::I8.max_magnitude(), 127);
        assert_eq!(FixedType::U8.max_magnitude(), 255);
        assert_eq!(FixedType::I16.magnitude_bits(), 15);
        assert_eq!(FixedType::U16.magnitude_bits(), 16);
    }

    #[test]
    fn contains_is_symmetric_for_signed() {
        let t = FixedType::I8;
        assert!(t.contains(127));
        assert!(t.contains(-127));
        assert!(!t.contains(128));
        assert!(!t.contains(-128));
    }

    #[test]
    fn contains_rejects_negatives_for_unsigned() {
        let t = FixedType::U8;
        assert!(t.contains(0));
        assert!(t.contains(255));
        assert!(!t.contains(-1));
        assert!(!t.contains(256));
    }

    #[test]
    fn display() {
        assert_eq!(FixedType::I16.to_string(), "i16");
        assert_eq!(FixedType::U8.to_string(), "u8");
        assert_eq!(FixedType::signed(5).unwrap().to_string(), "i5");
    }
}
