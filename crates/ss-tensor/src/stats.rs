//! Precomputed per-tensor statistics: everything the traffic schemes, the
//! bit-serial cycle models, and the width figures need, from **one scan**
//! of the values.
//!
//! The experiment harness prices the same multi-million-value layer under
//! several compression schemes and several accelerator models, per figure.
//! Each of those consumers traditionally re-walked the raw values; this
//! module folds their scans into a single pass producing [`TensorStats`] —
//! a value-width histogram, zero counts and run lengths, and per-group-size
//! width aggregates — from which every downstream quantity is exact
//! arithmetic over a few hundred counters:
//!
//! * ShapeShifter container size (`Z`/`P`/payload accounting, §3) for any
//!   precomputed group size;
//! * per-layer Profile width and size;
//! * zero run-length token counts for **any** run-field width;
//! * effective width (Table 1) and group/value width CDFs (Figures 1–4).

use crate::width::{group_width, value_width};
use crate::{FixedType, Tensor};

/// Width histogram bucket count: widths 0..=32 (i32 magnitude + sign).
const WIDTH_BUCKETS: usize = 33;

/// Aggregates for one grouping granularity of a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStats {
    /// The grouping granularity these aggregates describe.
    pub group_size: usize,
    /// Number of groups (`ceil(len / group_size)`).
    pub group_count: u64,
    /// Histogram over group widths: `group_width_hist[w]` groups need
    /// exactly `w` bits (Figures 1–3 are CDFs of this).
    pub group_width_hist: [u64; WIDTH_BUCKETS],
    /// `sum(group_width * group_len)` — the numerator of effective width.
    pub weighted_width_bits: u64,
    /// `sum(group_width * nonzeros_in_group)` — exactly the codec's payload
    /// bits at this group size.
    pub payload_bits: u64,
}

/// One-pass measured statistics of a tensor's values.
///
/// Computed by [`TensorStats::compute`] for a chosen set of group sizes;
/// every accessor is then pure arithmetic (no value re-scans). Equality of
/// two `TensorStats` implies every derived quantity agrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorStats {
    len: usize,
    dtype: FixedType,
    zero_count: u64,
    /// `value_width_hist[w]` values need exactly `w` bits (zeros land in
    /// bucket 0).
    value_width_hist: [u64; WIDTH_BUCKETS],
    /// Interior maximal zero runs (each followed by a non-zero value),
    /// as `(run_length, occurrence_count)`, ascending by length.
    interior_zero_runs: Vec<(u64, u64)>,
    /// Length of the trailing zero run (not followed by a non-zero).
    trailing_zero_run: u64,
    /// Aggregates per requested group size, ascending by `group_size`.
    groups: Vec<GroupStats>,
}

impl TensorStats {
    /// Scans `tensor` once per statistic family: a scalar pass for the
    /// per-value width histogram and zero runs (irreducibly per-value
    /// work), then one streaming pass per grouping granularity in which
    /// each group's width comes from the word-parallel OR-fold
    /// ([`group_width`], the software Figure 5c detector) instead of a
    /// per-value compare-and-max state machine. Duplicate and zero group
    /// sizes are ignored.
    #[must_use]
    pub fn compute(tensor: &Tensor, group_sizes: &[usize]) -> Self {
        let values = tensor.values();
        let signedness = tensor.signedness();

        let mut sizes: Vec<usize> = group_sizes.iter().copied().filter(|&g| g > 0).collect();
        sizes.sort_unstable();
        sizes.dedup();

        let mut value_width_hist = [0u64; WIDTH_BUCKETS];
        let mut zero_count = 0u64;
        let mut runs = std::collections::BTreeMap::<u64, u64>::new();
        let mut run = 0u64;
        for &v in values {
            let w = value_width(v, signedness);
            value_width_hist[w as usize] += 1;
            if v == 0 {
                zero_count += 1;
                run += 1;
            } else if run > 0 {
                *runs.entry(run).or_insert(0) += 1;
                run = 0;
            }
        }

        let groups: Vec<GroupStats> = sizes
            .iter()
            .map(|&group_size| {
                let mut g = GroupStats {
                    group_size,
                    group_count: 0,
                    group_width_hist: [0; WIDTH_BUCKETS],
                    weighted_width_bits: 0,
                    payload_bits: 0,
                };
                for chunk in values.chunks(group_size) {
                    let w = group_width(chunk, signedness);
                    let nonzeros: u64 = chunk.iter().map(|&v| u64::from(v != 0)).sum();
                    g.observe_group(w, chunk.len(), nonzeros);
                }
                g
            })
            .collect();

        Self {
            len: values.len(),
            dtype: tensor.dtype(),
            zero_count,
            value_width_hist,
            interior_zero_runs: runs.into_iter().collect(),
            trailing_zero_run: run,
            groups,
        }
    }

    /// Element count of the measured tensor.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the measured tensor was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Container type of the measured tensor.
    #[must_use]
    pub fn dtype(&self) -> FixedType {
        self.dtype
    }

    /// Number of zero values.
    #[must_use]
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// Number of non-zero values.
    #[must_use]
    pub fn nonzero_count(&self) -> u64 {
        self.len as u64 - self.zero_count
    }

    /// Fraction of non-zero values (1.0 for an empty tensor, matching the
    /// simulator's convention).
    #[must_use]
    pub fn nonzero_fraction(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.nonzero_count() as f64 / self.len as f64
        }
    }

    /// Uncompressed footprint in bits: `len × container`.
    #[must_use]
    pub fn container_bits(&self) -> u64 {
        self.len as u64 * u64::from(self.dtype.bits())
    }

    /// Histogram of per-value widths (bucket `w` = values needing exactly
    /// `w` bits; zeros in bucket 0).
    #[must_use]
    pub fn value_width_hist(&self) -> &[u64; WIDTH_BUCKETS] {
        &self.value_width_hist
    }

    /// Cumulative distribution of per-value widths: entry `w` is the
    /// fraction of values representable in `w` bits or fewer (the Figure 4
    /// per-value series). All-ones for an empty tensor.
    #[must_use]
    pub fn value_width_cdf(&self) -> [f64; WIDTH_BUCKETS] {
        let mut cdf = [1.0; WIDTH_BUCKETS];
        if self.len == 0 {
            return cdf;
        }
        let mut acc = 0u64;
        for (w, &count) in self.value_width_hist.iter().enumerate() {
            acc += count;
            cdf[w] = acc as f64 / self.len as u64 as f64;
        }
        cdf
    }

    /// Measured per-layer profiled width: the widest value seen (what the
    /// Profile scheme must provision when it trusts this tensor as its own
    /// calibration set).
    #[must_use]
    pub fn profiled_width(&self) -> u8 {
        self.value_width_hist
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0) as u8
    }

    /// Aggregates for a grouping granularity, if it was requested at
    /// [`TensorStats::compute`] time.
    #[must_use]
    pub fn group(&self, group_size: usize) -> Option<&GroupStats> {
        self.groups
            .iter()
            .find(|g| g.group_size == group_size)
    }

    /// Effective width at a precomputed group size (Table 1): average bits
    /// per value when each group costs its own width. `None` if the group
    /// size was not precomputed; 0.0 for an empty tensor.
    #[must_use]
    pub fn effective_width(&self, group_size: usize) -> Option<f64> {
        let g = self.group(group_size)?;
        Some(if self.len == 0 {
            0.0
        } else {
            g.weighted_width_bits as f64 / self.len as f64
        })
    }

    /// Exact ShapeShifter stream size at a precomputed group size:
    /// `(metadata_bits, payload_bits, groups)`, bit-identical to
    /// `ShapeShifterCodec::measure`/`encode`. `None` if the group size was
    /// not precomputed.
    ///
    /// Metadata is `len` Z bits plus one `prefix_bits` field per group;
    /// payload charges every non-zero its group's width — the same
    /// accounting, now over counters instead of values.
    #[must_use]
    pub fn shapeshifter_bits(&self, group_size: usize, prefix_bits: u8) -> Option<(u64, u64, u64)> {
        let g = self.group(group_size)?;
        let metadata = self.len as u64 + g.group_count * u64::from(prefix_bits);
        Some((metadata, g.payload_bits, g.group_count))
    }

    /// Exact zero-RLE `(run, value)` token count for **any** run-field
    /// width, from the zero-run histogram: a saturated token swallows
    /// `max_run + 1` zeros, every non-zero closes a token, and a trailing
    /// run needs a terminator.
    #[must_use]
    pub fn zero_rle_tokens(&self, max_run: u64) -> u64 {
        let span = max_run + 1;
        let mut tokens = self.nonzero_count();
        for &(len, count) in &self.interior_zero_runs {
            tokens += (len / span) * count;
        }
        tokens += self.trailing_zero_run / span;
        tokens += u64::from(!self.trailing_zero_run.is_multiple_of(span));
        tokens
    }
}

impl GroupStats {
    /// Folds one finished group into the aggregates.
    fn observe_group(&mut self, w: u8, filled: usize, nonzeros: u64) {
        self.group_count += 1;
        self.group_width_hist[w as usize] += 1;
        self.weighted_width_bits += u64::from(w) * filled as u64;
        self.payload_bits += u64::from(w) * nonzeros;
    }

    /// Cumulative distribution over group widths (the Figure 1–3 curves):
    /// entry `w` is the fraction of groups with width `<= w`. All-ones when
    /// there are no groups.
    #[must_use]
    pub fn width_cdf(&self) -> [f64; WIDTH_BUCKETS] {
        let mut cdf = [1.0; WIDTH_BUCKETS];
        if self.group_count == 0 {
            return cdf;
        }
        let mut acc = 0u64;
        for (w, &count) in self.group_width_hist.iter().enumerate() {
            acc += count;
            cdf[w] = acc as f64 / self.group_count as f64;
        }
        cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn t(dtype: FixedType, vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), dtype, vals).unwrap()
    }

    fn skewed(len: usize) -> Tensor {
        let vals: Vec<i32> = (0..len)
            .map(|i| match i % 7 {
                0..=2 => 0,
                3 | 4 => (i % 13) as i32 - 6,
                5 => 300 - (i % 100) as i32,
                _ => -(i.min(20_000) as i32),
            })
            .collect();
        t(FixedType::I16, vals)
    }

    #[test]
    fn counts_and_widths_match_direct_scans() {
        let tensor = skewed(1000);
        let stats = TensorStats::compute(&tensor, &[16, 256]);
        assert_eq!(stats.len(), tensor.len());
        assert_eq!(stats.zero_count(), tensor.num_zero() as u64);
        assert_eq!(stats.nonzero_count(), tensor.num_nonzero() as u64);
        assert_eq!(stats.profiled_width(), tensor.profiled_width());
        assert_eq!(stats.container_bits(), tensor.container_bits());
        let total: u64 = stats.value_width_hist().iter().sum();
        assert_eq!(total, tensor.len() as u64);
    }

    #[test]
    fn effective_width_matches_tensor_method() {
        let tensor = skewed(777); // deliberately not a multiple of 16 or 256
        let stats = TensorStats::compute(&tensor, &[16, 256]);
        for g in [16usize, 256] {
            let direct = tensor.effective_width(g);
            let from_stats = stats.effective_width(g).unwrap();
            assert!((direct - from_stats).abs() < 1e-12, "group {g}");
        }
        assert_eq!(stats.effective_width(64), None);
    }

    #[test]
    fn cdfs_are_monotone_and_end_at_one() {
        let tensor = skewed(500);
        let stats = TensorStats::compute(&tensor, &[16]);
        for cdf in [stats.value_width_cdf(), stats.group(16).unwrap().width_cdf()] {
            for pair in cdf.windows(2) {
                assert!(pair[0] <= pair[1] + 1e-15);
            }
            assert!((cdf[WIDTH_BUCKETS - 1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_tensor_is_well_defined() {
        let tensor = t(FixedType::U8, vec![]);
        let stats = TensorStats::compute(&tensor, &[16]);
        assert!(stats.is_empty());
        assert_eq!(stats.nonzero_fraction(), 1.0);
        assert_eq!(stats.effective_width(16), Some(0.0));
        assert_eq!(stats.shapeshifter_bits(16, 4), Some((0, 0, 0)));
        assert_eq!(stats.zero_rle_tokens(31), 0);
    }

    #[test]
    fn zero_rle_tokens_match_known_cases() {
        // Mirrors the ZeroRle unit tests in ss-core.
        let cases: &[(&[i32], u64, u64)] = &[
            (&[1, 0, 0], 31, 2),
            (&[0, 0], 31, 1),
            (&[], 31, 0),
            (&[0; 8], 3, 2),
            (&[0; 9], 3, 3),
        ];
        for &(vals, max_run, want) in cases {
            let tensor = t(FixedType::U16, vals.to_vec());
            let stats = TensorStats::compute(&tensor, &[]);
            assert_eq!(stats.zero_rle_tokens(max_run), want, "{vals:?}");
        }
        // 31 zeros + value: one token at max_run 31; add a 32nd zero -> two.
        let mut vals = vec![0i32; 31];
        vals.push(5);
        let stats = TensorStats::compute(&t(FixedType::U16, vals.clone()), &[]);
        assert_eq!(stats.zero_rle_tokens(31), 1);
        vals.insert(0, 0);
        let stats = TensorStats::compute(&t(FixedType::U16, vals), &[]);
        assert_eq!(stats.zero_rle_tokens(31), 2);
    }

    #[test]
    fn group_sizes_are_deduped_and_sorted() {
        let tensor = skewed(100);
        let stats = TensorStats::compute(&tensor, &[256, 16, 16, 0]);
        assert!(stats.group(16).is_some());
        assert!(stats.group(256).is_some());
        assert!(stats.group(0).is_none());
        assert_eq!(stats.group(16).unwrap().group_count, 7);
        assert_eq!(stats.group(256).unwrap().group_count, 1);
    }

    #[test]
    fn signedness_feeds_width_histogram() {
        let tensor = t(FixedType::I8, vec![-1, 1, 0, -3]);
        let stats = TensorStats::compute(&tensor, &[2]);
        // Widths: -1 -> 2, 1 -> 2, 0 -> 0, -3 -> 3 (sign-magnitude).
        assert_eq!(stats.value_width_hist()[2], 2);
        assert_eq!(stats.value_width_hist()[3], 1);
        assert_eq!(stats.value_width_hist()[0], 1);
        assert_eq!(stats.profiled_width(), 3);
        // Groups of 2: widths 2 and 3; payload = 2*2 + 3*1.
        let g = stats.group(2).unwrap();
        assert_eq!(g.payload_bits, 2 * 2 + 3);
    }
}
