use crate::{width, FixedType, GroupIter, Shape, Signedness, TensorError};

/// A shaped buffer of fixed-point values with a declared container type.
///
/// Values are held as `i32` but every element is validated against the
/// container ([`FixedType`]) at construction, so a `Tensor` upholds the
/// invariant *every value fits its container* — the precondition for all
/// width bookkeeping downstream.
///
/// The innermost shape dimension is stored contiguously, so
/// [`Tensor::groups`] chunks along the channel dimension as the paper
/// specifies for its group formation.
///
/// # Examples
///
/// ```
/// use ss_tensor::{FixedType, Shape, Tensor};
///
/// # fn main() -> Result<(), ss_tensor::TensorError> {
/// let t = Tensor::from_vec(
///     Shape::flat(4),
///     FixedType::U8,
///     vec![3, 0, 200, 17],
/// )?;
/// assert_eq!(t.profiled_width(), 8); // 200 needs 8 bits
/// assert_eq!(t.num_zero(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Shape,
    dtype: FixedType,
    data: Vec<i32>,
}

impl Tensor {
    /// Creates a tensor, validating length and per-value range.
    ///
    /// # Errors
    ///
    /// * [`TensorError::ShapeMismatch`] if `data.len()` differs from the
    ///   shape's element count.
    /// * [`TensorError::ValueOutOfRange`] if any value does not fit `dtype`.
    pub fn from_vec(shape: Shape, dtype: FixedType, data: Vec<i32>) -> Result<Self, TensorError> {
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeMismatch {
                shape,
                data_len: data.len(),
            });
        }
        for (index, &value) in data.iter().enumerate() {
            if !dtype.contains(value) {
                return Err(TensorError::ValueOutOfRange {
                    index,
                    value,
                    dtype,
                });
            }
        }
        Ok(Self { shape, dtype, data })
    }

    /// Creates an all-zero tensor of the given shape and container.
    #[must_use]
    pub fn zeros(shape: Shape, dtype: FixedType) -> Self {
        let n = shape.num_elements();
        Self {
            shape,
            dtype,
            data: vec![0; n],
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The declared container type.
    #[must_use]
    pub fn dtype(&self) -> FixedType {
        self.dtype
    }

    /// Container signedness (shorthand for `dtype().signedness()`).
    #[must_use]
    pub fn signedness(&self) -> Signedness {
        self.dtype.signedness()
    }

    /// Flat value slice, innermost dimension contiguous.
    #[must_use]
    pub fn values(&self) -> &[i32] {
        &self.data
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of zero-valued elements.
    #[must_use]
    pub fn num_zero(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0).count()
    }

    /// Number of non-zero elements.
    #[must_use]
    pub fn num_nonzero(&self) -> usize {
        self.len() - self.num_zero()
    }

    /// Fraction of zero elements (0.0 for an empty tensor).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.num_zero() as f64 / self.len() as f64
        }
    }

    /// Uncompressed footprint in bits: `len × container width`.
    #[must_use]
    pub fn container_bits(&self) -> u64 {
        self.len() as u64 * u64::from(self.dtype.bits())
    }

    /// Per-layer profiled width: the width the worst value needs. This is
    /// the "static"/Profile width of the paper's Figures 1–2.
    #[must_use]
    pub fn profiled_width(&self) -> u8 {
        width::profiled_width(&self.data, self.signedness())
    }

    /// Average effective width at the given group size (paper Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    #[must_use]
    pub fn effective_width(&self, group_size: usize) -> f64 {
        width::effective_width(&self.data, self.signedness(), group_size)
    }

    /// Iterates over groups of `group_size` values along the innermost
    /// dimension (the last group of each tensor may be shorter).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidGroupSize`] if `group_size == 0`.
    pub fn groups(&self, group_size: usize) -> Result<GroupIter<'_>, TensorError> {
        GroupIter::new(&self.data, group_size)
    }

    /// Consumes the tensor, returning its flat data.
    #[must_use]
    pub fn into_values(self) -> Vec<i32> {
        self.data
    }

    /// Replaces the tensor's contents in place from a flat value buffer,
    /// returning the previous buffer for reuse.
    ///
    /// The shape becomes `flat(values.len())` (the dimension buffer is
    /// reused, not reallocated) and every incoming value is validated
    /// against `dtype`, so the container invariant holds exactly as it
    /// does for [`Tensor::from_vec`]. A decode loop that swaps buffers
    /// through this method — as `ss-core`'s `CodecSession::decode_into`
    /// does — touches the heap zero times per tensor at steady state.
    ///
    /// # Errors
    ///
    /// [`TensorError::ValueOutOfRange`] if any value does not fit `dtype`;
    /// the tensor is unchanged (the new buffer is dropped).
    pub fn replace_flat(
        &mut self,
        dtype: FixedType,
        values: Vec<i32>,
    ) -> Result<Vec<i32>, TensorError> {
        for (index, &value) in values.iter().enumerate() {
            if !dtype.contains(value) {
                return Err(TensorError::ValueOutOfRange {
                    index,
                    value,
                    dtype,
                });
            }
        }
        self.shape.make_flat(values.len());
        self.dtype = dtype;
        Ok(std::mem::replace(&mut self.data, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<i32>) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), FixedType::I16, vals).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let err = Tensor::from_vec(Shape::new(vec![2, 2]), FixedType::I8, vec![1, 2, 3]);
        assert!(matches!(err, Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn construction_validates_range() {
        let err = Tensor::from_vec(Shape::flat(2), FixedType::I8, vec![1, 130]);
        assert!(matches!(
            err,
            Err(TensorError::ValueOutOfRange {
                index: 1,
                value: 130,
                ..
            })
        ));
        let err = Tensor::from_vec(Shape::flat(1), FixedType::U8, vec![-1]);
        assert!(err.is_err());
    }

    #[test]
    fn zeros_and_sparsity() {
        let z = Tensor::zeros(Shape::new(vec![4, 4]), FixedType::U8);
        assert_eq!(z.len(), 16);
        assert_eq!(z.num_zero(), 16);
        assert_eq!(z.sparsity(), 1.0);
        assert_eq!(z.profiled_width(), 0);

        let t = t(vec![0, 5, 0, -3]);
        assert_eq!(t.num_nonzero(), 2);
        assert!((t.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn container_bits() {
        let t = t(vec![1, 2, 3, 4]);
        assert_eq!(t.container_bits(), 64);
        let t8 = Tensor::from_vec(Shape::flat(4), FixedType::U8, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t8.container_bits(), 32);
    }

    #[test]
    fn profiled_width_uses_signedness() {
        let signed = t(vec![0, 5, -9]);
        assert_eq!(signed.profiled_width(), 5); // |−9| -> 4 bits + sign
        let unsigned = Tensor::from_vec(Shape::flat(3), FixedType::U16, vec![0, 5, 9]).unwrap();
        assert_eq!(unsigned.profiled_width(), 4);
    }

    #[test]
    fn groups_rejects_zero() {
        let t = t(vec![1, 2]);
        assert!(t.groups(0).is_err());
        assert_eq!(t.groups(1).unwrap().count(), 2);
    }

    #[test]
    fn replace_flat_swaps_buffers_and_validates() {
        let mut t = Tensor::from_vec(Shape::new(vec![2, 2]), FixedType::I16, vec![1, 2, 3, 4])
            .unwrap();
        let old = t.replace_flat(FixedType::U8, vec![0, 200, 7]).unwrap();
        assert_eq!(old, vec![1, 2, 3, 4]);
        assert_eq!(t.shape(), &Shape::flat(3));
        assert_eq!(t.dtype(), FixedType::U8);
        assert_eq!(t.values(), &[0, 200, 7]);
        // Equal to the from_vec construction of the same tensor.
        let fresh = Tensor::from_vec(Shape::flat(3), FixedType::U8, vec![0, 200, 7]).unwrap();
        assert_eq!(t, fresh);
        // Out-of-range values are rejected and the tensor is unchanged.
        let err = t.replace_flat(FixedType::U8, vec![300]);
        assert!(matches!(err, Err(TensorError::ValueOutOfRange { .. })));
        assert_eq!(t, fresh);
    }

    #[test]
    fn empty_tensor() {
        let e = Tensor::from_vec(Shape::flat(0), FixedType::I8, vec![]).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.sparsity(), 0.0);
        assert_eq!(e.groups(16).unwrap().count(), 0);
    }
}
