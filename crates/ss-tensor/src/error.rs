use std::error::Error;
use std::fmt;

use crate::{FixedType, Shape};

/// Errors for tensor construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the shape's element count.
    ShapeMismatch {
        /// Declared shape.
        shape: Shape,
        /// Actual data length.
        data_len: usize,
    },
    /// A value does not fit the declared container type.
    ValueOutOfRange {
        /// Flat index of the offending value.
        index: usize,
        /// The offending value.
        value: i32,
        /// The declared container.
        dtype: FixedType,
    },
    /// A container width outside `1..=16` was requested.
    InvalidWidth {
        /// The invalid width.
        bits: u8,
    },
    /// A group size of zero was requested.
    InvalidGroupSize,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { shape, data_len } => write!(
                f,
                "shape {shape} implies {} elements but data has {data_len}",
                shape.num_elements()
            ),
            TensorError::ValueOutOfRange {
                index,
                value,
                dtype,
            } => write!(
                f,
                "value {value} at flat index {index} does not fit container {dtype}"
            ),
            TensorError::InvalidWidth { bits } => {
                write!(f, "container width {bits} is outside the supported 1..=16 range")
            }
            TensorError::InvalidGroupSize => write!(f, "group size must be non-zero"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::InvalidWidth { bits: 33 };
        assert!(e.to_string().contains("33"));
        let e = TensorError::InvalidGroupSize;
        assert!(e.to_string().contains("non-zero"));
    }
}
