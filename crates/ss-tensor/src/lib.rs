#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fixed-point tensors and data-width arithmetic for ShapeShifter.
//!
//! ShapeShifter (MICRO 2019) operates on fixed-point weights and activations
//! whose *container* width (the number of bits allotted per value in memory
//! and in the datapath) is adapted per group of 16–256 values. This crate
//! provides the value model everything else builds on:
//!
//! * [`Tensor`] — a shaped buffer of `i32` fixed-point values with a declared
//!   container type ([`FixedType`]: width 1–16 bits, signed or unsigned).
//! * [`width`] — the width-needed arithmetic of the paper's Figure 5c
//!   hardware detector: sign-magnitude conversion with the sign at the LSB,
//!   per-value width, per-group width (the OR-tree + leading-1 semantics),
//!   and whole-tensor profiled width.
//! * [`GroupIter`] — iteration over fixed-size groups along the innermost
//!   (channel) dimension, the granularity at which ShapeShifter adapts.
//!
//! # Examples
//!
//! ```
//! use ss_tensor::{FixedType, Shape, Tensor};
//!
//! # fn main() -> Result<(), ss_tensor::TensorError> {
//! // A 2x4 signed 8-bit tensor.
//! let t = Tensor::from_vec(
//!     Shape::new(vec![2, 4]),
//!     FixedType::signed(8)?,
//!     vec![1, -3, 0, 7, 0, 0, -120, 5],
//! )?;
//! assert_eq!(t.len(), 8);
//! // Per-value width: -120 needs 7 magnitude bits + 1 sign bit.
//! assert_eq!(ss_tensor::width::value_width(-120, t.dtype().signedness()), 8);
//! # Ok(())
//! # }
//! ```

mod dtype;
mod error;
mod group;
mod shape;
pub mod stats;
mod tensor;
pub mod width;

pub use dtype::{FixedType, Signedness};
pub use error::TensorError;
pub use group::GroupIter;
pub use shape::Shape;
pub use stats::{GroupStats, TensorStats};
pub use tensor::Tensor;
