//! The fixed metric schema: counters and width histograms.
//!
//! The schema is an enum rather than string keys so that the collecting
//! recorder can be a plain array of atomics — no map, no lock, no
//! allocation on the hot path — and so that a counter name typo is a
//! compile error rather than a silently separate time series.

/// Width histogram bucket count: widths 0..=32 (i32 magnitude + sign),
/// matching `ss-tensor`'s `TensorStats` bucketing so histograms from the
/// two layers can be compared entry for entry.
pub const WIDTH_BUCKETS: usize = 33;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration (= export) order.
            pub const ALL: &'static [$name] = &[$($name::$variant),+];

            /// Number of variants (the backing array length).
            pub const COUNT: usize = $name::ALL.len();

            /// Stable snake_case name used in the JSON export.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }

            /// Index into the collecting recorder's backing array.
            #[must_use]
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// A monotonically increasing event/quantity counter.
    Counter {
        /// Codec `encode` invocations.
        EncodeCalls => "encode_calls",
        /// Values passed through `encode`.
        EncodeValues => "encode_values",
        /// Total stream bits produced by `encode`.
        EncodeBits => "encode_bits",
        /// `Z`-vector + `P`-prefix bits produced by `encode`.
        EncodeMetadataBits => "encode_metadata_bits",
        /// Payload bits produced by `encode`.
        EncodePayloadBits => "encode_payload_bits",
        /// Groups produced by `encode`.
        EncodeGroups => "encode_groups",
        /// Zero values elided (no payload emitted) by `encode`.
        EncodeZerosElided => "encode_zeros_elided",
        /// Codec `measure` invocations.
        MeasureCalls => "measure_calls",
        /// Values scanned by `measure`.
        MeasureValues => "measure_values",
        /// Stream bits accounted by `measure` (metadata + payload).
        MeasureBits => "measure_bits",
        /// Codec `decode` invocations.
        DecodeCalls => "decode_calls",
        /// Values reconstructed by `decode`.
        DecodeValues => "decode_values",
        /// Decodes that took the container-v2 indexed (parallel) path.
        DecodeIndexHits => "decode_index_hits",
        /// Indexed chunks fanned out across decode workers.
        DecodeChunksFanned => "decode_chunks_fanned",
        /// Off-chip bits priced under the `Base` scheme.
        SchemeBaseBits => "scheme_base_bits",
        /// Off-chip bits priced under the `Profile` scheme.
        SchemeProfileBits => "scheme_profile_bits",
        /// Off-chip bits priced under the `ShapeShifter` scheme.
        SchemeShapeShifterBits => "scheme_shapeshifter_bits",
        /// Off-chip bits priced under the `ZeroRLE` scheme.
        SchemeZeroRleBits => "scheme_zero_rle_bits",
        /// Off-chip bits priced under any other scheme.
        SchemeOtherBits => "scheme_other_bits",
        /// Layers simulated.
        SimLayers => "sim_layers",
        /// Datapath cycles across simulated layers.
        SimComputeCycles => "sim_compute_cycles",
        /// Off-chip transfer cycles across simulated layers.
        SimMemoryCycles => "sim_memory_cycles",
        /// Cycles the datapath stalled waiting for memory.
        SimStallCycles => "sim_stall_cycles",
        /// Off-chip traffic bits under the active scheme.
        SimTrafficBits => "sim_traffic_bits",
        /// Off-chip traffic bits with no compression.
        SimBaseTrafficBits => "sim_base_traffic_bits",
        /// Layers the Composer ran in paired-SIP (>8b weight) mode.
        SimComposerPairedLayers => "sim_composer_paired_layers",
        /// Synchronized broadcast steps walked by the tile schedule.
        TileSteps => "tile_steps",
        /// Cycles accumulated by the tile schedule walk.
        TileCycles => "tile_cycles",
        /// Shared layer-statistics cache hits.
        StatsCacheHits => "stats_cache_hits",
        /// Shared layer-statistics cache misses.
        StatsCacheMisses => "stats_cache_misses",
        /// Layer records dropped because the trace buffer was full.
        TraceLayersDropped => "trace_layers_dropped",
        /// Span events dropped because the trace buffer was full.
        TraceSpansDropped => "trace_spans_dropped",
        /// Batches processed by the `ss-pipeline` engine.
        PipelineBatches => "pipeline_batches",
        /// Tensors completed by `ss-pipeline` workers.
        PipelineTensors => "pipeline_tensors",
        /// Peak submission-queue depth observed, summed over batches
        /// (divide by `pipeline_batches` for the mean high-water mark).
        PipelineQueueHighWater => "pipeline_queue_high_water",
        /// Nanoseconds `ss-pipeline` workers spent inside encode.
        PipelineEncodeBusyNanos => "pipeline_encode_busy_nanos",
        /// Nanoseconds `ss-pipeline` workers spent inside measure.
        PipelineMeasureBusyNanos => "pipeline_measure_busy_nanos",
        /// Nanoseconds `ss-pipeline` workers spent inside decode.
        PipelineDecodeBusyNanos => "pipeline_decode_busy_nanos",
        /// Records appended to `ss-store` shards.
        StoreRecordsAppended => "store_records_appended",
        /// Shards finished (index + footer written) by `ss-store`.
        StoreShardsFinished => "store_shards_finished",
        /// Shard EOF indexes loaded by `ModelStore::open`.
        StoreShardsOpened => "store_shards_opened",
        /// Records decoded through `ModelStore::get`.
        StoreRecordsDecoded => "store_records_decoded",
        /// Record-block bytes fetched from storage by `ModelStore::get` —
        /// the partial-read guarantee: one `get` reads one record block,
        /// not the shard.
        StorePayloadBytesRead => "store_payload_bytes_read",
        /// Requests admitted into the `ss-serve` submission queue.
        ServeRequests => "serve_requests",
        /// Requests completed with an `Ok` status response.
        ServeResponsesOk => "serve_responses_ok",
        /// Requests completed with a typed error status response.
        ServeResponsesErr => "serve_responses_err",
        /// Submissions rejected with `Overloaded` (queue at capacity).
        ServeOverloaded => "serve_overloaded",
        /// Submissions rejected because the service was draining.
        ServeRejectedDraining => "serve_rejected_draining",
        /// Malformed SSRP frames rejected at the protocol layer.
        ServeProtocolErrors => "serve_protocol_errors",
        /// SSRP request body bytes received.
        ServeBytesIn => "serve_bytes_in",
        /// SSRP response body bytes sent.
        ServeBytesOut => "serve_bytes_out",
        /// TCP connections accepted by the `ss-serve` listener.
        ServeConnections => "serve_connections",
        /// Queued requests flushed to completion during a graceful drain.
        ServeDrainedInFlight => "serve_drained_in_flight",
    }
}

metric_enum! {
    /// A histogram over operation latencies (log2 nanosecond buckets).
    LatencyHist {
        /// End-to-end handling latency of `ss-serve` encode requests.
        ServeEncodeNanos => "serve_encode_nanos",
        /// End-to-end handling latency of `ss-serve` decode requests.
        ServeDecodeNanos => "serve_decode_nanos",
        /// End-to-end handling latency of `ss-serve` store-get requests.
        ServeGetNanos => "serve_get_nanos",
        /// End-to-end handling latency of `ss-serve` stats requests.
        ServeStatsNanos => "serve_stats_nanos",
        /// End-to-end handling latency of `ss-serve` health/drain requests.
        ServeControlNanos => "serve_control_nanos",
    }
}

metric_enum! {
    /// A histogram over detected widths (bucket = exact width in bits).
    WidthHist {
        /// Per-group width of every group the codec encoded or measured.
        CodecGroupWidth => "codec_group_width",
        /// Worst-row EOG width of every synchronized tile broadcast step.
        TileStepWidth => "tile_step_width",
        /// Per-group EOG width at the sync granularity, aggregated over
        /// every simulated layer (per-layer copies live in the layer
        /// records).
        LayerEogWidth => "layer_eog_width",
    }
}

impl Counter {
    /// Maps a compression scheme's display name onto its traffic counter
    /// (anything unrecognized lands in [`Counter::SchemeOtherBits`]).
    #[must_use]
    pub fn for_scheme(name: &str) -> Counter {
        match name {
            "Base" => Counter::SchemeBaseBits,
            "Profile" => Counter::SchemeProfileBits,
            "ShapeShifter" => Counter::SchemeShapeShifterBits,
            // `ZeroRle`'s display name (paper Figure 8 legend).
            "Zero compression" => Counter::SchemeZeroRleBits,
            _ => Counter::SchemeOtherBits,
        }
    }
}

/// A plain (non-atomic) width histogram: the local accumulator hot loops
/// fill before submitting one merged batch to a recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthCounts {
    buckets: [u64; WIDTH_BUCKETS],
}

impl WidthCounts {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; WIDTH_BUCKETS],
        }
    }

    /// Adds `n` observations of `width` bits (widths beyond 32 saturate
    /// into the last bucket, which cannot occur for i32 sign-magnitude).
    pub fn observe(&mut self, width: u8, n: u64) {
        let idx = (width as usize).min(WIDTH_BUCKETS - 1);
        if let Some(bucket) = self.buckets.get_mut(idx) {
            *bucket += n;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &WidthCounts) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The buckets, index = width in bits.
    #[must_use]
    pub fn buckets(&self) -> &[u64; WIDTH_BUCKETS] {
        &self.buckets
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` when nothing was observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl Default for WidthCounts {
    fn default() -> Self {
        Self::new()
    }
}

impl From<[u64; WIDTH_BUCKETS]> for WidthCounts {
    fn from(buckets: [u64; WIDTH_BUCKETS]) -> Self {
        Self { buckets }
    }
}

/// Latency histogram bucket count: bucket `i` holds observations whose
/// nanosecond value has `floor(log2(n)) == i` (0 ns lands in bucket 0),
/// so 64 buckets cover the entire `u64` range with ≤ 2× resolution —
/// enough to read p50/p99/p999 off a service without storing samples.
pub const LATENCY_BUCKETS: usize = 64;

/// A plain (non-atomic) log2-bucketed latency histogram: the local
/// accumulator for percentile accounting, and the snapshot form of the
/// collecting recorder's atomic rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyCounts {
    buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyCounts {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
        }
    }

    /// Bucket index for a nanosecond observation.
    #[must_use]
    pub fn bucket_of(nanos: u64) -> usize {
        // floor(log2(n)) for n >= 1; 0 maps to bucket 0. Max index is
        // 63 for n = u64::MAX, which is LATENCY_BUCKETS - 1.
        (63 - nanos.max(1).leading_zeros()) as usize
    }

    /// Inclusive upper bound (in nanoseconds) of a bucket — the value
    /// percentile queries report.
    #[must_use]
    pub fn bucket_upper(index: usize) -> u64 {
        if index >= LATENCY_BUCKETS - 1 {
            u64::MAX
        } else {
            (2u64 << index) - 1
        }
    }

    /// Adds `n` observations of `nanos`.
    pub fn observe(&mut self, nanos: u64, n: u64) {
        if let Some(bucket) = self.buckets.get_mut(Self::bucket_of(nanos)) {
            *bucket += n;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyCounts) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The buckets, index = `floor(log2(nanos))`.
    #[must_use]
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` when nothing was observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The smallest bucket upper bound covering quantile `q` (0.0–1.0)
    /// of the observations, in nanoseconds; `None` when empty. The
    /// log2 buckets bound the answer within 2× of the true quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 maps to the
        // first observation, q = 1 to the last.
        // ss-lint: allow(determinism) -- quantile rank over a live latency histogram; percentiles feed observability bodies (stats op, timings JSON) that deterministic artifacts exclude
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// p50 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// p99 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// p999 in nanoseconds (`None` when empty).
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

impl Default for LatencyCounts {
    fn default() -> Self {
        Self::new()
    }
}

impl From<[u64; LATENCY_BUCKETS]> for LatencyCounts {
    fn from(buckets: [u64; LATENCY_BUCKETS]) -> Self {
        Self { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_are_dense_and_names_unique() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in WidthHist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn scheme_counter_mapping() {
        assert_eq!(Counter::for_scheme("Base"), Counter::SchemeBaseBits);
        assert_eq!(
            Counter::for_scheme("ShapeShifter"),
            Counter::SchemeShapeShifterBits
        );
        assert_eq!(
            Counter::for_scheme("Zero compression"),
            Counter::SchemeZeroRleBits
        );
        assert_eq!(
            Counter::for_scheme("Delta-ShapeShifter"),
            Counter::SchemeOtherBits
        );
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(LatencyCounts::bucket_of(0), 0);
        assert_eq!(LatencyCounts::bucket_of(1), 0);
        assert_eq!(LatencyCounts::bucket_of(2), 1);
        assert_eq!(LatencyCounts::bucket_of(3), 1);
        assert_eq!(LatencyCounts::bucket_of(1024), 10);
        assert_eq!(LatencyCounts::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyCounts::bucket_upper(0), 1);
        assert_eq!(LatencyCounts::bucket_upper(1), 3);
        assert_eq!(LatencyCounts::bucket_upper(10), 2047);
        assert_eq!(LatencyCounts::bucket_upper(63), u64::MAX);
        // Every value sits within its bucket's range.
        for n in [0u64, 1, 2, 5, 1000, 123_456_789] {
            let b = LatencyCounts::bucket_of(n);
            assert!(n <= LatencyCounts::bucket_upper(b));
            if b > 0 {
                assert!(n > LatencyCounts::bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn latency_quantiles_walk_the_cumulative_counts() {
        let mut h = LatencyCounts::new();
        assert_eq!(h.quantile(0.5), None);
        // 90 fast observations (~1µs), 9 slow (~1ms), 1 very slow (~1s).
        h.observe(1_000, 90);
        h.observe(1_000_000, 9);
        h.observe(1_000_000_000, 1);
        assert_eq!(h.total(), 100);
        let fast = LatencyCounts::bucket_upper(LatencyCounts::bucket_of(1_000));
        let slow = LatencyCounts::bucket_upper(LatencyCounts::bucket_of(1_000_000));
        let worst = LatencyCounts::bucket_upper(LatencyCounts::bucket_of(1_000_000_000));
        assert_eq!(h.p50(), Some(fast));
        assert_eq!(h.p99(), Some(slow));
        assert_eq!(h.p999(), Some(worst));
        assert_eq!(h.quantile(1.0), Some(worst));
        assert_eq!(h.quantile(0.0), Some(fast));
        let mut other = LatencyCounts::new();
        other.observe(1_000, 10);
        h.merge(&other);
        assert_eq!(h.total(), 110);
    }

    #[test]
    fn width_counts_observe_merge_saturate() {
        let mut a = WidthCounts::new();
        assert!(a.is_empty());
        a.observe(4, 10);
        a.observe(200, 1); // saturates into the last bucket
        let mut b = WidthCounts::new();
        b.observe(4, 5);
        a.merge(&b);
        assert_eq!(a.buckets()[4], 15);
        assert_eq!(a.buckets()[WIDTH_BUCKETS - 1], 1);
        assert_eq!(a.total(), 16);
    }
}
