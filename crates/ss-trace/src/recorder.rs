//! The [`Recorder`] trait, the zero-overhead [`NoopRecorder`], and the
//! event payloads hot layers submit.
//!
//! Design rule: a hot loop asks `recorder.enabled()` **once**, accumulates
//! into plain local state ([`crate::WidthCounts`], integers) only when
//! tracing, and submits one merged batch per call — so the disabled path
//! costs a single predictable branch per codec/simulator invocation, not
//! per value. The `Noop` default makes every submission a no-op that the
//! optimizer deletes outright.

use std::time::Instant;

use crate::metric::{Counter, LatencyHist, WidthCounts, WidthHist};

/// Per-layer simulation record: everything the paper's evaluation figures
/// derive from one layer, captured at simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Model display name.
    pub model: String,
    /// Accelerator display name.
    pub accel: String,
    /// Compression scheme display name.
    pub scheme: String,
    /// Layer display name.
    pub layer: String,
    /// Layer index in network order.
    pub index: usize,
    /// Datapath cycles.
    pub compute_cycles: u64,
    /// Off-chip transfer cycles.
    pub memory_cycles: u64,
    /// Cycles the datapath idled waiting for memory.
    pub stall_cycles: u64,
    /// Off-chip traffic under the active scheme, in bits.
    pub traffic_bits: u64,
    /// Off-chip traffic with no compression, in bits.
    pub base_traffic_bits: u64,
    /// Per-layer profiled activation width.
    pub act_profiled: u8,
    /// Effective activation width at the sync group.
    pub act_eff_sync: f64,
    /// Whether the Composer paired SIP columns for this layer's weights.
    pub composer_paired: bool,
    /// Per-group EOG width histogram at the sync granularity.
    pub eog_width_hist: WidthCounts,
}

/// A completed wall-clock span, in microseconds relative to the collecting
/// recorder's epoch (Chrome trace-event `ts`/`dur` semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (experiment slug, model name, phase).
    pub name: String,
    /// Category, used as the Chrome trace `cat` field.
    pub cat: &'static str,
    /// Start offset from the recorder epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Submitting thread's dense id (Chrome trace `tid`).
    pub tid: u64,
}

/// An observability sink. All methods default to no-ops so implementors
/// opt into exactly the streams they collect; all take `&self` so one
/// recorder can be shared across scoped worker threads.
pub trait Recorder: Sync {
    /// `true` when events are actually collected. Hot paths gate **all**
    /// per-value work behind this so the disabled cost is one branch.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `n` to a counter.
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Merges a locally-accumulated width histogram.
    fn record_widths(&self, hist: WidthHist, counts: &WidthCounts) {
        let _ = (hist, counts);
    }

    /// Adds one latency observation (in nanoseconds) to a histogram.
    fn record_latency(&self, hist: LatencyHist, nanos: u64) {
        let _ = (hist, nanos);
    }

    /// Submits one simulated layer's record.
    fn record_layer(&self, record: LayerRecord) {
        let _ = record;
    }

    /// Submits one completed span.
    fn record_span(&self, span: SpanEvent) {
        let _ = span;
    }

    /// Microseconds since this recorder's epoch (0 when disabled).
    fn now_us(&self) -> u64 {
        0
    }
}

/// The default recorder: collects nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A scoped wall-clock timer: records a [`SpanEvent`] on drop.
///
/// When the recorder is disabled the constructor does not even read the
/// clock, so an un-traced span costs one branch and no syscalls.
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    name: String,
    cat: &'static str,
    start_us: u64,
    started: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Opens a span against `rec`.
    #[must_use]
    pub fn enter(rec: &'a dyn Recorder, cat: &'static str, name: impl Into<String>) -> Self {
        let started = rec.enabled().then(Instant::now);
        Self {
            rec,
            name: name.into(),
            cat,
            start_us: if started.is_some() { rec.now_us() } else { 0 },
            started,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            self.rec.record_span(SpanEvent {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                start_us: self.start_us,
                dur_us: t0.elapsed().as_micros() as u64,
                tid: thread_tid(),
            });
        }
    }
}

/// Dense per-thread id for Chrome trace `tid` fields: threads get 0, 1, 2…
/// in first-span order, which keeps the trace viewer's lane list compact.
fn thread_tid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add(Counter::EncodeBits, 5);
        rec.record_widths(WidthHist::CodecGroupWidth, &WidthCounts::new());
        assert_eq!(rec.now_us(), 0);
        // A span against a disabled recorder never reads the clock.
        let span = Span::enter(&rec, "test", "nothing");
        assert!(span.started.is_none());
        drop(span);
    }

    struct CountingRecorder {
        spans: AtomicU64,
    }

    impl Recorder for CountingRecorder {
        fn enabled(&self) -> bool {
            true
        }
        fn record_span(&self, span: SpanEvent) {
            assert_eq!(span.name, "work");
            assert_eq!(span.cat, "unit");
            self.spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn span_records_on_drop_when_enabled() {
        let rec = CountingRecorder {
            spans: AtomicU64::new(0),
        };
        {
            let _span = Span::enter(&rec, "unit", "work");
            assert_eq!(rec.spans.load(Ordering::Relaxed), 0);
        }
        assert_eq!(rec.spans.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn thread_tids_are_distinct() {
        let here = thread_tid();
        let there = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(here, there);
        // Stable within a thread.
        assert_eq!(here, thread_tid());
    }
}
