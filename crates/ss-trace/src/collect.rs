//! The collecting recorder: lock-free, bounded, shareable across the
//! scoped worker threads `ss_core::par` spawns.
//!
//! Counters and histograms are flat arrays of `AtomicU64` (the schema is
//! closed, so no map is needed). Layer records and spans — which carry
//! owned strings — land in pre-sized `OnceLock` slot arrays claimed by an
//! atomic cursor; when a buffer fills, further events increment a
//! `trace_*_dropped` counter instead of blocking or reallocating, so the
//! recorder never takes a lock and never grows under load.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metric::{
    Counter, LatencyCounts, LatencyHist, WidthCounts, WidthHist, LATENCY_BUCKETS, WIDTH_BUCKETS,
};
use crate::recorder::{LayerRecord, Recorder, SpanEvent};

/// Default capacity of the layer-record buffer (25 experiments × ~100
/// layers × a few schemes fits comfortably).
pub const DEFAULT_LAYER_CAPACITY: usize = 16_384;

/// Default capacity of the span buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 4_096;

/// A bounded, lock-free event slot array: an atomic cursor hands out slot
/// indices, each slot is written exactly once through its `OnceLock`.
struct SlotBuffer<T> {
    slots: Box<[OnceLock<T>]>,
    cursor: AtomicUsize,
}

impl<T> SlotBuffer<T> {
    fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        Self {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Stores `value` in the next free slot; returns `false` (dropping the
    /// value) when the buffer is full.
    fn push(&self, value: T) -> bool {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        match self.slots.get(idx) {
            Some(slot) => {
                // The cursor hands each index to exactly one caller, so
                // this `set` cannot collide; ignore the Err arm anyway.
                let _ = slot.set(value);
                true
            }
            None => false,
        }
    }

    /// Snapshot of every filled slot, in claim order.
    fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.slots.iter().filter_map(|s| s.get().cloned()).collect()
    }
}

/// The collecting [`Recorder`]: everything atomic, nothing blocking.
pub struct TraceRecorder {
    epoch: Instant,
    counters: [AtomicU64; Counter::COUNT],
    hists: [[AtomicU64; WIDTH_BUCKETS]; WidthHist::COUNT],
    latencies: [[AtomicU64; LATENCY_BUCKETS]; LatencyHist::COUNT],
    layers: SlotBuffer<LayerRecord>,
    spans: SlotBuffer<SpanEvent>,
}

impl TraceRecorder {
    /// A recorder with the default buffer capacities.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_LAYER_CAPACITY, DEFAULT_SPAN_CAPACITY)
    }

    /// A recorder with explicit layer/span buffer capacities.
    #[must_use]
    pub fn with_capacity(layer_capacity: usize, span_capacity: usize) -> Self {
        Self {
            // ss-lint: allow(determinism) -- the epoch anchors span timestamps, which are trace-only timing data
            epoch: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            latencies: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            layers: SlotBuffer::new(layer_capacity),
            spans: SlotBuffer::new(span_capacity),
        }
    }

    /// Current value of one counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .get(counter.index())
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current contents of one width histogram.
    #[must_use]
    pub fn hist(&self, hist: WidthHist) -> WidthCounts {
        let mut out = WidthCounts::new();
        if let Some(row) = self.hists.get(hist.index()) {
            for (width, bucket) in row.iter().enumerate() {
                // ss-lint: allow(truncating-cast) -- width < WIDTH_BUCKETS = 33
                out.observe(width as u8, bucket.load(Ordering::Relaxed));
            }
        }
        out
    }

    /// Current contents of one latency histogram.
    #[must_use]
    pub fn latency(&self, hist: LatencyHist) -> LatencyCounts {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        if let Some(row) = self.latencies.get(hist.index()) {
            for (out, bucket) in buckets.iter_mut().zip(row.iter()) {
                *out = bucket.load(Ordering::Relaxed);
            }
        }
        LatencyCounts::from(buckets)
    }

    /// Immutable copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            counters: Counter::ALL.iter().map(|&c| (c, self.counter(c))).collect(),
            hists: WidthHist::ALL.iter().map(|&h| (h, self.hist(h))).collect(),
            latencies: LatencyHist::ALL
                .iter()
                .map(|&h| (h, self.latency(h)))
                .collect(),
            layers: self.layers.collect(),
            spans: self.spans.collect(),
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        if let Some(c) = self.counters.get(counter.index()) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn record_widths(&self, hist: WidthHist, counts: &WidthCounts) {
        if let Some(row) = self.hists.get(hist.index()) {
            for (bucket, &n) in row.iter().zip(counts.buckets().iter()) {
                if n != 0 {
                    bucket.fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    fn record_latency(&self, hist: LatencyHist, nanos: u64) {
        if let Some(bucket) = self
            .latencies
            .get(hist.index())
            .and_then(|row| row.get(LatencyCounts::bucket_of(nanos)))
        {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_layer(&self, record: LayerRecord) {
        if !self.layers.push(record) {
            self.add(Counter::TraceLayersDropped, 1);
        }
    }

    fn record_span(&self, span: SpanEvent) {
        if !self.spans.push(span) {
            self.add(Counter::TraceSpansDropped, 1);
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// An immutable copy of a [`TraceRecorder`]'s state, ready for export.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Every counter with its value (export order = declaration order).
    pub counters: Vec<(Counter, u64)>,
    /// Every width histogram with its contents.
    pub hists: Vec<(WidthHist, WidthCounts)>,
    /// Every latency histogram with its contents.
    pub latencies: Vec<(LatencyHist, LatencyCounts)>,
    /// Per-layer simulation records, in submission order.
    pub layers: Vec<LayerRecord>,
    /// Completed spans, in submission order.
    pub spans: Vec<SpanEvent>,
}

impl TraceSnapshot {
    /// Value of one counter in this snapshot.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |&(_, v)| v)
    }

    /// Contents of one latency histogram in this snapshot (empty when
    /// never observed).
    #[must_use]
    pub fn latency(&self, hist: LatencyHist) -> LatencyCounts {
        self.latencies
            .iter()
            .find(|(h, _)| *h == hist)
            .map_or_else(LatencyCounts::new, |(_, counts)| counts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let rec = TraceRecorder::new();
        assert!(rec.enabled());
        rec.add(Counter::EncodeBits, 7);
        rec.add(Counter::EncodeBits, 3);
        let mut w = WidthCounts::new();
        w.observe(5, 2);
        rec.record_widths(WidthHist::CodecGroupWidth, &w);
        rec.record_widths(WidthHist::CodecGroupWidth, &w);
        assert_eq!(rec.counter(Counter::EncodeBits), 10);
        assert_eq!(rec.hist(WidthHist::CodecGroupWidth).buckets()[5], 4);
        assert_eq!(rec.counter(Counter::DecodeCalls), 0);
    }

    fn span(name: &str) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            cat: "test",
            start_us: 1,
            dur_us: 2,
            tid: 0,
        }
    }

    #[test]
    fn span_buffer_bounds_and_drop_counter() {
        let rec = TraceRecorder::with_capacity(4, 2);
        rec.record_span(span("a"));
        rec.record_span(span("b"));
        rec.record_span(span("c")); // buffer full → dropped
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.counter(Counter::TraceSpansDropped), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let rec = TraceRecorder::with_capacity(64, 64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..8 {
                        rec.add(Counter::TileSteps, 1);
                        rec.record_span(span(&format!("t{t}.{i}")));
                        let mut w = WidthCounts::new();
                        w.observe(3, 1);
                        rec.record_widths(WidthHist::TileStepWidth, &w);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::TileSteps), 32);
        assert_eq!(snap.spans.len(), 32);
        assert_eq!(rec.hist(WidthHist::TileStepWidth).total(), 32);
        assert_eq!(snap.counter(Counter::TraceSpansDropped), 0);
    }

    #[test]
    fn latency_histogram_accumulates_concurrently() {
        let rec = TraceRecorder::with_capacity(4, 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..100u64 {
                        rec.record_latency(LatencyHist::ServeEncodeNanos, 1_000 + i);
                    }
                    rec.record_latency(LatencyHist::ServeEncodeNanos, 50_000_000);
                });
            }
        });
        let h = rec.latency(LatencyHist::ServeEncodeNanos);
        assert_eq!(h.total(), 404);
        // 400 of 404 observations are ~1µs; p50 lands in their bucket.
        assert_eq!(
            h.p50(),
            Some(LatencyCounts::bucket_upper(LatencyCounts::bucket_of(1_099)))
        );
        assert_eq!(
            h.p999(),
            Some(LatencyCounts::bucket_upper(LatencyCounts::bucket_of(
                50_000_000
            )))
        );
        let snap = rec.snapshot();
        assert_eq!(snap.latency(LatencyHist::ServeEncodeNanos), h);
        assert!(snap.latency(LatencyHist::ServeGetNanos).is_empty());
    }

    #[test]
    fn now_us_is_monotonic_from_epoch() {
        let rec = TraceRecorder::new();
        let a = rec.now_us();
        let b = rec.now_us();
        assert!(b >= a);
    }
}
