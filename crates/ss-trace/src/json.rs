//! Hand-rolled JSON export — the crate is dependency-free by design, and
//! the emitted shapes are flat enough that string building is simpler and
//! more auditable than a serializer.
//!
//! Two formats:
//! * [`TraceSnapshot::to_json`] — the `ss-trace/1` analysis document
//!   (counters, width histograms, per-layer records, spans).
//! * [`TraceSnapshot::to_chrome_trace`] — Chrome trace-event JSON for
//!   `chrome://tracing` / Perfetto (`ph:"X"` complete events).

use crate::collect::TraceSnapshot;
use crate::metric::{LatencyCounts, WidthCounts};
use crate::recorder::{LayerRecord, SpanEvent};

/// Schema identifier stamped into the analysis document.
pub const SCHEMA: &str = "ss-trace/1";

/// Escapes a string for inclusion inside JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn push_hist(out: &mut String, counts: &WidthCounts) {
    out.push('[');
    for (i, n) in counts.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.to_string());
    }
    out.push(']');
}

/// Emits a latency histogram as its summary percentiles plus the raw
/// log2 buckets (so downstream tooling can recompute any quantile).
fn push_latency(out: &mut String, counts: &LatencyCounts) {
    out.push_str(&format!(
        "{{\"total\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"log2_buckets\":[",
        counts.total(),
        counts.p50().map_or("null".into(), |v| v.to_string()),
        counts.p99().map_or("null".into(), |v| v.to_string()),
        counts.p999().map_or("null".into(), |v| v.to_string()),
    ));
    for (i, n) in counts.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.to_string());
    }
    out.push_str("]}");
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Infinity; clamp to null so the document stays valid.
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push_str("null");
    }
}

fn push_layer(out: &mut String, l: &LayerRecord) {
    out.push_str(&format!(
        "{{\"model\":\"{}\",\"accel\":\"{}\",\"scheme\":\"{}\",\"layer\":\"{}\",\"index\":{},\
         \"compute_cycles\":{},\"memory_cycles\":{},\"stall_cycles\":{},\
         \"traffic_bits\":{},\"base_traffic_bits\":{},\"act_profiled\":{},\"act_eff_sync\":",
        escape(&l.model),
        escape(&l.accel),
        escape(&l.scheme),
        escape(&l.layer),
        l.index,
        l.compute_cycles,
        l.memory_cycles,
        l.stall_cycles,
        l.traffic_bits,
        l.base_traffic_bits,
        l.act_profiled,
    ));
    push_f64(out, l.act_eff_sync);
    out.push_str(&format!(
        ",\"composer_paired\":{},\"eog_width_hist\":",
        l.composer_paired
    ));
    push_hist(out, &l.eog_width_hist);
    out.push('}');
}

fn push_span(out: &mut String, s: &SpanEvent) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"start_us\":{},\"dur_us\":{},\"tid\":{}}}",
        escape(&s.name),
        escape(s.cat),
        s.start_us,
        s.dur_us,
        s.tid,
    ));
}

impl TraceSnapshot {
    /// Serializes the snapshot as the `ss-trace/1` analysis document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"counters\": {{"));
        for (i, (c, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", c.name()));
        }
        out.push_str("\n  },\n  \"width_hists\": {");
        for (i, (h, counts)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": ", h.name()));
            push_hist(&mut out, counts);
        }
        out.push_str("\n  },\n  \"latency_hists\": {");
        for (i, (h, counts)) in self.latencies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": ", h.name()));
            push_latency(&mut out, counts);
        }
        out.push_str("\n  },\n  \"layers\": [");
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_layer(&mut out, l);
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_span(&mut out, s);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes the spans as a Chrome trace-event document (load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Each span becomes
    /// a `ph:"X"` complete event; counters ride along as one final
    /// metadata-style instant event so totals are visible in the viewer.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                escape(&s.name),
                escape(s.cat),
                s.start_us,
                s.dur_us,
                s.tid,
            ));
        }
        // Counter totals as one instant event at t=0 with args.
        if !first {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"ss-trace counters\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{");
        for (i, (c, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.name()));
        }
        out.push_str("}}\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceRecorder;
    use crate::metric::{Counter, WidthHist};
    use crate::recorder::Recorder;

    /// Minimal recursive-descent JSON validator — enough to prove the
    /// exports parse without pulling in a JSON crate.
    fn validate(input: &str) -> Result<(), String> {
        let bytes: Vec<char> = input.chars().collect();
        let mut pos = 0usize;
        skip_ws(&bytes, &mut pos);
        value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[char], pos: &mut usize) {
        while b.get(*pos).is_some_and(|c| c.is_whitespace()) {
            *pos += 1;
        }
    }

    fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at {pos}", pos = *pos))
        }
    }

    fn value(b: &[char], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some('{') => object(b, pos),
            Some('[') => array(b, pos),
            Some('"') => string(b, pos),
            Some('t') => literal(b, pos, "true"),
            Some('f') => literal(b, pos, "false"),
            Some('n') => literal(b, pos, "null"),
            Some(c) if *c == '-' || c.is_ascii_digit() => number(b, pos),
            other => Err(format!("unexpected {other:?} at {pos}", pos = *pos)),
        }
    }

    fn literal(b: &[char], pos: &mut usize, lit: &str) -> Result<(), String> {
        for c in lit.chars() {
            expect(b, pos, c)?;
        }
        Ok(())
    }

    fn number(b: &[char], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&'-') {
            *pos += 1;
        }
        while b
            .get(*pos)
            .is_some_and(|c| c.is_ascii_digit() || *c == '.' || *c == 'e' || *c == 'E' || *c == '+' || *c == '-')
        {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("empty number at {start}"));
        }
        Ok(())
    }

    fn string(b: &[char], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, '"')?;
        loop {
            match b.get(*pos) {
                Some('"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some('\\') => {
                    *pos += 2;
                }
                Some(_) => *pos += 1,
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn object(b: &[char], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, '{')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, ':')?;
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object sep {other:?}")),
            }
        }
    }

    fn array(b: &[char], pos: &mut usize) -> Result<(), String> {
        expect(b, pos, '[')?;
        skip_ws(b, pos);
        if b.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some(']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array sep {other:?}")),
            }
        }
    }

    fn populated_snapshot() -> TraceSnapshot {
        let rec = TraceRecorder::with_capacity(8, 8);
        rec.add(Counter::EncodeBits, 42);
        rec.record_latency(crate::metric::LatencyHist::ServeEncodeNanos, 12_345);
        let mut w = WidthCounts::new();
        w.observe(7, 3);
        rec.record_widths(WidthHist::CodecGroupWidth, &w);
        rec.record_layer(LayerRecord {
            model: "AlexNet".into(),
            accel: "SStripes".into(),
            scheme: "Shape\"Shifter\\".into(), // exercise escaping
            layer: "conv1\n".into(),
            index: 0,
            compute_cycles: 100,
            memory_cycles: 150,
            stall_cycles: 50,
            traffic_bits: 1000,
            base_traffic_bits: 2000,
            act_profiled: 8,
            act_eff_sync: 5.25,
            composer_paired: true,
            eog_width_hist: w.clone(),
        });
        rec.record_span(SpanEvent {
            name: "fig12".into(),
            cat: "experiment",
            start_us: 10,
            dur_us: 500,
            tid: 0,
        });
        rec.snapshot()
    }

    #[test]
    fn analysis_json_is_valid_and_carries_data() {
        let json = populated_snapshot().to_json();
        validate(&json).expect("analysis JSON must parse");
        assert!(json.contains("\"schema\": \"ss-trace/1\""));
        assert!(json.contains("\"encode_bits\": 42"));
        assert!(json.contains("\"codec_group_width\""));
        assert!(json.contains("\"serve_encode_nanos\""));
        assert!(json.contains("\"p999_ns\""));
        assert!(json.contains("\"stall_cycles\":50"));
        assert!(json.contains("\\\"Shifter\\\\"));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let chrome = populated_snapshot().to_chrome_trace();
        validate(&chrome).expect("chrome trace must parse");
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"dur\":500"));
        assert!(chrome.contains("\"encode_bits\":42"));
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        let rec = TraceRecorder::with_capacity(1, 1);
        let snap = rec.snapshot();
        validate(&snap.to_json()).expect("empty analysis JSON");
        validate(&snap.to_chrome_trace()).expect("empty chrome trace");
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nonfinite_floats_export_as_null() {
        let mut snap = populated_snapshot();
        if let Some(l) = snap.layers.first_mut() {
            l.act_eff_sync = f64::NAN;
        }
        let json = snap.to_json();
        validate(&json).expect("NaN clamped to null");
        assert!(json.contains("\"act_eff_sync\":null"));
    }
}
