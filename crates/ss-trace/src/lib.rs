//! # ss-trace — observability for the ShapeShifter workspace
//!
//! A dependency-free, panic-free, lock-free tracing layer: atomic
//! counters, width histograms, per-layer simulation records, and scoped
//! span timers behind one [`Recorder`] trait.
//!
//! ## Zero overhead when disabled
//!
//! The default recorder is [`NoopRecorder`]: `enabled()` returns `false`
//! and every submission is an empty default method. Hot paths follow one
//! discipline — check `enabled()` once per call, accumulate into local
//! state, submit one batch — so an untraced run pays a single predictable
//! branch per codec/simulator invocation. `perf_baseline --overhead-gate`
//! enforces this empirically.
//!
//! ## The global recorder
//!
//! Hot layers live several crates below the binaries that decide whether
//! to trace, so plumbing a `&dyn Recorder` through every signature would
//! contaminate the whole workspace API. Instead there is one process-wide
//! slot: [`global()`] returns the installed [`TraceRecorder`] or, before
//! [`install()`] is called, a static [`NoopRecorder`]. Installation is
//! once-per-process (first caller wins) — the intended user is a binary's
//! `--trace` flag, not library code.
//!
//! ```
//! use ss_trace::{global, Counter};
//!
//! // Library code: free to call anywhere, a no-op unless a binary
//! // installed a collector.
//! let rec = global();
//! if rec.enabled() {
//!     rec.add(Counter::EncodeCalls, 1);
//! }
//! ```
//!
//! Everything is `Sync` and lock-free (atomics + `OnceLock` slot arrays),
//! so the codec's scoped worker threads can submit directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod collect;
mod json;
mod metric;
mod recorder;

pub use collect::{TraceRecorder, TraceSnapshot, DEFAULT_LAYER_CAPACITY, DEFAULT_SPAN_CAPACITY};
pub use json::{escape, SCHEMA};
pub use metric::{
    Counter, LatencyCounts, LatencyHist, WidthCounts, WidthHist, LATENCY_BUCKETS, WIDTH_BUCKETS,
};
pub use recorder::{LayerRecord, NoopRecorder, Recorder, Span, SpanEvent};

use std::sync::OnceLock;

static GLOBAL: OnceLock<TraceRecorder> = OnceLock::new();
static NOOP: NoopRecorder = NoopRecorder;

/// The process-wide recorder: the installed collector, or a no-op before
/// [`install()`] has been called.
#[must_use]
pub fn global() -> &'static dyn Recorder {
    match GLOBAL.get() {
        Some(rec) => rec,
        None => &NOOP,
    }
}

/// Installs `recorder` as the process-wide collector. The first call
/// wins; returns `false` (discarding `recorder`) if one is already
/// installed.
pub fn install(recorder: TraceRecorder) -> bool {
    GLOBAL.set(recorder).is_ok()
}

/// The installed collector, if any — binaries use this at exit to
/// snapshot and export what [`global()`] collected.
#[must_use]
pub fn installed() -> Option<&'static TraceRecorder> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the global slot is process-wide and tests share a process, so
    // everything about install()/global() lives in this one test.
    #[test]
    fn global_starts_noop_then_installs_once() {
        assert!(!global().enabled());
        assert!(installed().is_none());

        assert!(install(TraceRecorder::with_capacity(4, 4)));
        assert!(global().enabled());
        let rec = installed().expect("just installed");
        global().add(Counter::SimLayers, 2);
        assert_eq!(rec.counter(Counter::SimLayers), 2);

        // Second install is rejected, first recorder stays.
        assert!(!install(TraceRecorder::new()));
        assert_eq!(rec.counter(Counter::SimLayers), 2);
    }
}
