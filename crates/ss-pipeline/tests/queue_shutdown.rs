//! Close/drain race coverage for [`BoundedQueue`]: a loom-style seeded
//! interleaving stress suite pinning the shutdown contract that
//! `ss-serve`'s graceful drain is built on:
//!
//! 1. **No silent loss** — every item a producer successfully pushed
//!    (blocking `push` returned `true`, or `try_push` returned `Ok`) is
//!    popped by exactly one consumer before the drained queue goes
//!    terminal, no matter when `close` lands relative to the producers
//!    and consumers.
//! 2. **No invention** — nothing is popped twice and nothing is popped
//!    that was never admitted (checked by summing a per-item tag).
//! 3. **Typed refusal** — a push racing with close is *refused*
//!    (`false` / `TryPushError`), never half-admitted.
//!
//! True loom-style model checking would need a pluggable scheduler; this
//! suite approximates it the way the rest of the workspace does — many
//! seeded schedules (seed → producer/consumer counts, per-item work
//! jitter, close timing) so a failing interleaving replays from its seed
//! printed in the panic message.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use ss_pipeline::{BoundedQueue, TryPushError};

/// Deterministic per-seed parameter pick (splitmix64 step).
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Busy-work jitter: perturbs thread timing without sleeping, so the
/// schedule space explored varies run to run within each seed's shape.
fn jitter(spins: u64) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

/// One seeded schedule: producers race consumers race one closer.
/// Returns (pushed_count, pushed_sum, popped_count, popped_sum,
/// refused_count).
fn run_schedule(seed: u64) -> (u64, u64, u64, u64, u64) {
    let r = mix(seed);
    let producers = 1 + (r % 4) as usize; // 1..=4
    let consumers = 1 + ((r >> 8) % 4) as usize; // 1..=4
    let capacity = 1 + ((r >> 16) % 8) as usize; // 1..=8
    let items_per_producer = 16 + ((r >> 24) % 48) as u64; // 16..=63
    let close_after_polls = (r >> 32) % 64; // when the closer fires

    let queue: BoundedQueue<u64> = BoundedQueue::new(capacity);
    let pushed_count = AtomicU64::new(0);
    let pushed_sum = AtomicU64::new(0);
    let popped_count = AtomicU64::new(0);
    let popped_sum = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    let live_consumers = AtomicUsize::new(consumers);

    std::thread::scope(|s| {
        for p in 0..producers {
            let queue = &queue;
            let pushed_count = &pushed_count;
            let pushed_sum = &pushed_sum;
            let refused = &refused;
            s.spawn(move || {
                for i in 0..items_per_producer {
                    // Tag encodes (producer, index) so sums detect both
                    // duplication and substitution.
                    let tag = ((p as u64) << 32) | i;
                    jitter(mix(seed ^ tag) % 64);
                    // Alternate blocking and non-blocking admission so
                    // both shutdown paths are raced.
                    if i % 2 == 0 {
                        if queue.push(tag) {
                            pushed_count.fetch_add(1, Ordering::SeqCst);
                            pushed_sum.fetch_add(tag, Ordering::SeqCst);
                        } else {
                            refused.fetch_add(1, Ordering::SeqCst);
                            break; // closed: stop submitting
                        }
                    } else {
                        match queue.try_push(tag) {
                            Ok(()) => {
                                pushed_count.fetch_add(1, Ordering::SeqCst);
                                pushed_sum.fetch_add(tag, Ordering::SeqCst);
                            }
                            Err(TryPushError::Full(t)) => {
                                assert_eq!(t, tag, "refused item handed back intact");
                                refused.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(TryPushError::Closed(t)) => {
                                assert_eq!(t, tag, "refused item handed back intact");
                                refused.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                }
            });
        }
        for c in 0..consumers {
            let queue = &queue;
            let popped_count = &popped_count;
            let popped_sum = &popped_sum;
            let live_consumers = &live_consumers;
            s.spawn(move || {
                while let Some(tag) = queue.pop() {
                    jitter(mix(seed ^ tag ^ (c as u64) << 48) % 32);
                    popped_count.fetch_add(1, Ordering::SeqCst);
                    popped_sum.fetch_add(tag, Ordering::SeqCst);
                }
                // pop() returned None: the queue must be closed AND
                // empty — a consumer exiting with items still queued
                // would be exactly the silent drop this suite hunts.
                assert!(queue.is_closed(), "seed {seed}: consumer exited before close");
                live_consumers.fetch_sub(1, Ordering::SeqCst);
            });
        }
        // The closer: lands at a seed-chosen point amid the traffic.
        let queue = &queue;
        s.spawn(move || {
            jitter(close_after_polls * 128);
            queue.close();
        });
    });

    assert!(queue.is_empty(), "seed {seed}: items left behind after drain");
    assert_eq!(live_consumers.load(Ordering::SeqCst), 0);
    (
        pushed_count.load(Ordering::SeqCst),
        pushed_sum.load(Ordering::SeqCst),
        popped_count.load(Ordering::SeqCst),
        popped_sum.load(Ordering::SeqCst),
        refused.load(Ordering::SeqCst),
    )
}

#[test]
fn no_admitted_item_is_lost_or_duplicated_across_seeded_shutdown_schedules() {
    let mut total_pushed = 0u64;
    let mut total_refused = 0u64;
    for seed in 0..200u64 {
        let (pushed, pushed_sum, popped, popped_sum, refused) = run_schedule(seed);
        assert_eq!(
            pushed, popped,
            "seed {seed}: {pushed} admitted items but {popped} delivered"
        );
        assert_eq!(
            pushed_sum, popped_sum,
            "seed {seed}: delivered item set differs from admitted item set"
        );
        total_pushed += pushed;
        total_refused += refused;
    }
    // Sanity: the schedule space actually exercised both outcomes.
    assert!(total_pushed > 0, "no schedule admitted anything");
    assert!(
        total_refused > 0,
        "no schedule ever refused a push — close/full never raced the producers"
    );
}

#[test]
fn drain_after_close_delivers_exactly_the_queued_backlog() {
    // Deterministic single-threaded variant: a known backlog, close,
    // then drain — the service-shutdown fast path.
    let q: BoundedQueue<u64> = BoundedQueue::new(16);
    for i in 0..10 {
        assert!(q.push(i));
    }
    q.close();
    assert!(matches!(q.try_push(99), Err(TryPushError::Closed(99))));
    let drained: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(drained, (0..10).collect::<Vec<_>>());
    assert_eq!(q.pop(), None, "terminal after drain");
}
