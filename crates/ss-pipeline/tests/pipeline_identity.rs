// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The engine's central contracts, end to end:
//!
//! 1. **Bit-identity** — containers out of the pool equal one-shot
//!    `ShapeShifterCodec::encode` for every tensor, at every worker count.
//! 2. **Determinism** — `BatchReport`'s accounting fields and chained
//!    `stream_hash` are identical across runs and worker counts, even
//!    with a queue small enough to exercise real backpressure.
//! 3. **Error routing** — per-tensor failures surface with the right
//!    submission index; the pool winds down instead of hanging.

use ss_core::prelude::*;
use ss_pipeline::{fnv1a_64, BatchReport, Pipeline, PipelineConfig, PipelineError};
use ss_tensor::{FixedType, Shape, Tensor};

/// Deterministic skewed tensor (LCG; no RNG crate).
fn tensor(len: usize, seed: u64, dtype: FixedType) -> Tensor {
    let max = dtype.max_magnitude();
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let vals: Vec<i32> = (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let r = x >> 33;
            let v = match r % 10 {
                0..=3 => 0,
                4..=7 => (r % 15 + 1) as i32,
                _ => (r % 3000 + 1) as i32,
            };
            v.min(max)
        })
        .collect();
    Tensor::from_vec(Shape::flat(len), dtype, vals).unwrap()
}

/// A mixed batch: lengths from empty to multi-group, mixed dtypes.
fn mixed_batch() -> Vec<Tensor> {
    let mut batch = Vec::new();
    for (i, len) in [0usize, 1, 15, 16, 17, 333, 1024, 4096].iter().enumerate() {
        batch.push(tensor(*len, i as u64 + 1, FixedType::I16));
        batch.push(tensor(*len, i as u64 + 100, FixedType::U8));
    }
    batch
}

fn config() -> PipelineConfig {
    PipelineConfig::new().with_codec(
        CodecConfig::new()
            .with_group_size(16)
            .with_index_policy(IndexPolicy::EveryGroups(4)),
    )
}

#[test]
fn encode_batch_is_bit_identical_to_one_shot_at_every_worker_count() {
    let batch = mixed_batch();
    let codec = config().codec.build().unwrap();
    for workers in [1, 2, 4, 8] {
        let pipeline =
            Pipeline::new(config().with_workers(workers).with_queue_depth(2)).unwrap();
        let containers = pipeline.encode_batch(&batch).unwrap();
        assert_eq!(containers.len(), batch.len());
        for (i, (enc, t)) in containers.iter().zip(&batch).enumerate() {
            let one_shot = codec.encode(t).unwrap();
            assert_eq!(enc, &one_shot, "tensor {i} at {workers} workers diverged");
        }
        let decoded = pipeline.decode_batch(&containers).unwrap();
        for (i, (back, t)) in decoded.iter().zip(&batch).enumerate() {
            assert_eq!(back, t, "tensor {i} at {workers} workers round-trip");
        }
    }
}

#[test]
fn scheme_batches_are_bit_identical_at_every_worker_count() {
    // The registry path: DPRed and AdaBits batches through the pool equal
    // a single-session `encode_with_scheme` stream for stream bytes,
    // frame fields and index alike — per worker count — and a mixed-scheme
    // batch decodes back losslessly through `decode_batch_with`.
    let batch = mixed_batch();
    for id in [
        SchemeId::SHAPESHIFTER,
        SchemeId::DELTA,
        SchemeId::DPRED,
        SchemeId::ADABITS,
    ] {
        let scheme = SchemeRegistry::global().get(id).unwrap();
        let mut session = CodecSession::new(config().codec).unwrap();
        let mut reference = Vec::new();
        for t in &batch {
            let mut s = SchemeStream::default();
            session
                .encode_with_scheme(scheme, t, IndexPolicy::Auto, &mut s)
                .unwrap();
            reference.push(s);
        }
        for workers in [1, 2, 4, 8] {
            let pipeline =
                Pipeline::new(config().with_workers(workers).with_queue_depth(2)).unwrap();
            let streams = pipeline.encode_batch_with(id, &batch).unwrap();
            assert_eq!(streams.len(), batch.len());
            for (i, (s, r)) in streams.iter().zip(&reference).enumerate() {
                assert_eq!(s.scheme, id);
                assert_eq!(s.bytes, r.bytes, "{id} tensor {i} at {workers} workers");
                assert_eq!(s.bit_len, r.bit_len, "{id} tensor {i} at {workers} workers");
                assert_eq!(s.index, r.index, "{id} tensor {i} at {workers} workers");
            }
            let decoded = pipeline.decode_batch_with(&streams).unwrap();
            for (i, (back, t)) in decoded.iter().zip(&batch).enumerate() {
                assert_eq!(back, t, "{id} tensor {i} at {workers} workers round-trip");
            }
        }
    }
}

#[test]
fn scheme_batch_rejects_unregistered_ids_typed() {
    let pipeline = Pipeline::new(config()).unwrap();
    match pipeline.encode_batch_with(SchemeId::new(200), &mixed_batch()) {
        Err(PipelineError::InvalidConfig(CodecError::UnknownScheme { id: 200 })) => {}
        other => panic!("expected UnknownScheme, got {other:?}"),
    }
    // A stream claiming an unregistered id fails per item, index-tagged.
    let mut bogus = SchemeStream::default();
    bogus.scheme = SchemeId::new(200);
    match pipeline.decode_batch_with(&[bogus]) {
        Err(PipelineError::Codec {
            index: 0,
            source: CodecError::UnknownScheme { id: 200 },
        }) => {}
        other => panic!("expected indexed UnknownScheme, got {other:?}"),
    }
}

#[test]
fn report_deterministic_fields_agree_across_runs_and_worker_counts() {
    let batch = mixed_batch();
    let reports: Vec<BatchReport> = [1, 2, 4, 8, 2]
        .iter()
        .map(|&workers| {
            Pipeline::new(config().with_workers(workers).with_queue_depth(3))
                .unwrap()
                .process(&batch)
                .unwrap()
        })
        .collect();
    let first = &reports[0];
    assert_eq!(first.tensors, batch.len() as u64);
    assert!(first.stream_bits > 0);
    assert_eq!(first.stream_bits, first.metadata_bits + first.payload_bits);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.tensors, first.tensors, "run {i}");
        assert_eq!(r.values, first.values, "run {i}");
        assert_eq!(r.uncompressed_bits, first.uncompressed_bits, "run {i}");
        assert_eq!(r.stream_bits, first.stream_bits, "run {i}");
        assert_eq!(r.metadata_bits, first.metadata_bits, "run {i}");
        assert_eq!(r.payload_bits, first.payload_bits, "run {i}");
        assert_eq!(r.groups, first.groups, "run {i}");
        assert_eq!(r.stream_hash, first.stream_hash, "run {i}");
        assert!(r.queue_high_water <= r.queue_capacity, "run {i}");
    }
}

#[test]
fn report_hash_matches_hand_chained_one_shot_hashes() {
    // The report's stream_hash must equal FNV-1a chained over one-shot
    // container hashes in submission order — the bench's bit-identity
    // gate relies on exactly this equivalence.
    let batch = mixed_batch();
    let codec = config().codec.build().unwrap();
    let mut expected = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for t in &batch {
        let enc = codec.encode(t).unwrap();
        let h = fnv1a_64(enc.bytes());
        for b in h.to_le_bytes() {
            expected ^= u64::from(b);
            expected = expected.wrapping_mul(0x100_0000_01b3);
        }
    }
    let report = Pipeline::new(config().with_workers(4))
        .unwrap()
        .process(&batch)
        .unwrap();
    assert_eq!(report.stream_hash, expected);
}

#[test]
fn stage_toggles_zero_their_busy_time() {
    let batch = mixed_batch();
    let pipeline = Pipeline::new(config().with_measure(false).with_decode(false)).unwrap();
    let report = pipeline.process(&batch).unwrap();
    assert_eq!(report.measure_busy, std::time::Duration::ZERO);
    assert_eq!(report.decode_busy, std::time::Duration::ZERO);
    assert_eq!(report.measure_occupancy(), 0.0);
}

#[test]
fn empty_batch_yields_an_empty_report() {
    let report = Pipeline::new(config().with_workers(4))
        .unwrap()
        .process(&[])
        .unwrap();
    assert_eq!(report.tensors, 0);
    assert_eq!(report.stream_bits, 0);
    assert_eq!(report.ratio(), 1.0, "empty batch is the identity ratio");
}

#[test]
fn invalid_codec_config_fails_at_construction() {
    let bad = PipelineConfig::new().with_codec(CodecConfig::new().with_group_size(0));
    match Pipeline::new(bad) {
        Err(PipelineError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn batch_ratio_matches_the_container_accounting() {
    // The report's ratio is total stream bits over total uncompressed
    // bits — exactly what summing every container's accounting gives.
    let batch = mixed_batch();
    let codec = config().codec.build().unwrap();
    let (mut stream, mut raw) = (0u64, 0u64);
    for t in &batch {
        let enc = codec.encode(t).unwrap();
        stream += enc.bit_len();
        raw += enc.uncompressed_bits();
    }
    let report = Pipeline::new(config()).unwrap().process(&batch).unwrap();
    assert_eq!(report.stream_bits, stream);
    assert_eq!(report.uncompressed_bits, raw);
    assert!((report.ratio() - stream as f64 / raw as f64).abs() < 1e-12);
    assert!(report.ratio() < 1.0, "skewed batch must compress");
}
