// Tests may unwrap/expect freely: a panic here is a test failure, not a
// product-code defect (the workspace clippy lints exempt test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The engine's observability contract: one `process` call lands the
//! `pipeline_*` counters on the installed recorder. Its own integration
//! binary because `ss_trace::install` is process-wide (first install
//! wins) — sharing a process with other recorder tests would race.

use ss_pipeline::{Pipeline, PipelineConfig};
use ss_tensor::{FixedType, Shape, Tensor};
use ss_trace::{Counter, TraceRecorder};

#[test]
fn process_records_the_pipeline_counters() {
    let batch: Vec<Tensor> = (0..6)
        .map(|i| {
            let vals = (0..500).map(|v| ((v * 11 + i) % 23) - 11).collect();
            Tensor::from_vec(Shape::flat(500), FixedType::I16, vals).unwrap()
        })
        .collect();
    let pipeline = Pipeline::new(PipelineConfig::new().with_workers(2).with_queue_depth(2))
        .unwrap();

    // Nothing is recorded while the default NoopRecorder is in place.
    assert!(ss_trace::installed().is_none(), "test must start untraced");
    pipeline.process(&batch).unwrap();

    assert!(ss_trace::install(TraceRecorder::new()), "first install");
    let rec = ss_trace::installed().unwrap();
    let report = pipeline.process(&batch).unwrap();

    assert_eq!(rec.counter(Counter::PipelineBatches), 1);
    assert_eq!(rec.counter(Counter::PipelineTensors), batch.len() as u64);
    assert_eq!(
        rec.counter(Counter::PipelineQueueHighWater),
        report.queue_high_water as u64
    );
    // Both verification stages ran, so every busy counter is live.
    assert!(rec.counter(Counter::PipelineEncodeBusyNanos) > 0);
    assert!(rec.counter(Counter::PipelineMeasureBusyNanos) > 0);
    assert!(rec.counter(Counter::PipelineDecodeBusyNanos) > 0);

    // A second batch accumulates rather than overwrites.
    pipeline.process(&batch).unwrap();
    assert_eq!(rec.counter(Counter::PipelineBatches), 2);
    assert_eq!(rec.counter(Counter::PipelineTensors), 2 * batch.len() as u64);
}
